//! `evaluate_with(&ctx, ..)` must be bit-identical to `evaluate(..)`:
//! the context split is a pure precomputation, so every report field —
//! including floating-point energies — must match to the bit, and
//! invalid mappings must produce the same rejection, across a grid of
//! architectures, workloads, and mapspace kinds.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ruby_core::prelude::*;

fn grid() -> Vec<(Architecture, ProblemShape)> {
    vec![
        (presets::toy_linear(16, 1024), ProblemShape::rank1("d", 113)),
        (presets::toy_linear(9, 100), ProblemShape::rank1("d", 100)),
        (
            presets::eyeriss_like(14, 12),
            ProblemShape::conv("pw", 1, 256, 64, 28, 28, 1, 1, (1, 1)),
        ),
        (
            presets::eyeriss_like(14, 12),
            ProblemShape::conv("c3", 1, 128, 64, 14, 14, 3, 3, (1, 1)),
        ),
        (
            presets::simba_like(16, 4, 4),
            ProblemShape::gemm("g", 256, 128, 64),
        ),
    ]
}

fn assert_reports_bit_identical(fresh: &CostReport, ctx: &CostReport) {
    assert_eq!(fresh.macs(), ctx.macs());
    assert_eq!(fresh.cycles(), ctx.cycles());
    assert_eq!(fresh.energy().to_bits(), ctx.energy().to_bits());
    assert_eq!(fresh.edp().to_bits(), ctx.edp().to_bits());
    assert_eq!(fresh.utilization().to_bits(), ctx.utilization().to_bits());
    assert_eq!(fresh.level_stats().len(), ctx.level_stats().len());
    for (a, b) in fresh.level_stats().iter().zip(ctx.level_stats()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.energy().to_bits(), b.energy().to_bits());
        for (x, y) in a.per_tensor().iter().zip(b.per_tensor()) {
            assert_eq!(x.reads.to_bits(), y.reads.to_bits());
            assert_eq!(x.fills.to_bits(), y.fills.to_bits());
            assert_eq!(x.updates.to_bits(), y.updates.to_bits());
            assert_eq!(x.network.to_bits(), y.network.to_bits());
        }
    }
}

#[test]
fn context_evaluation_is_bit_identical_across_the_grid() {
    let opts = ModelOptions::default();
    let mut valid = 0u32;
    let mut invalid = 0u32;
    for (arch, shape) in grid() {
        let ctx = EvalContext::new(&arch, &shape, opts);
        for kind in MapspaceKind::ALL {
            let space = Mapspace::new(arch.clone(), shape.clone(), kind);
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..50 {
                let mapping = space.sample(&mut rng);
                let fresh = evaluate(&arch, &shape, &mapping, &opts);
                let via_ctx = evaluate_with(&ctx, &mapping);
                match (fresh, via_ctx) {
                    (Ok(a), Ok(b)) => {
                        valid += 1;
                        assert_reports_bit_identical(&a, &b);
                    }
                    (Err(a), Err(b)) => {
                        invalid += 1;
                        assert_eq!(a, b, "rejections must agree");
                    }
                    (a, b) => panic!("validity disagreement: {a:?} vs {b:?}"),
                }
            }
        }
    }
    // The grid must exercise both paths.
    assert!(valid > 100, "only {valid} valid mappings in the grid");
    assert!(invalid > 100, "only {invalid} invalid mappings in the grid");
}

#[test]
fn context_respects_model_options() {
    let arch = presets::eyeriss_like(14, 12);
    let shape = ProblemShape::conv("c", 1, 128, 64, 28, 28, 3, 3, (1, 1));
    let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
    let mut rng = SmallRng::seed_from_u64(3);
    let mapping = loop {
        let m = space.sample(&mut rng);
        if evaluate(&arch, &shape, &m, &ModelOptions::default()).is_ok() {
            break m;
        }
    };
    for opts in [
        ModelOptions::default(),
        ModelOptions {
            multicast: false,
            spatial_reduction: true,
        },
        ModelOptions {
            multicast: true,
            spatial_reduction: false,
        },
        ModelOptions {
            multicast: false,
            spatial_reduction: false,
        },
    ] {
        let ctx = EvalContext::new(&arch, &shape, opts);
        let fresh = evaluate(&arch, &shape, &mapping, &opts).unwrap();
        let via_ctx = evaluate_with(&ctx, &mapping).unwrap();
        assert_reports_bit_identical(&fresh, &via_ctx);
    }
}

#[test]
fn one_context_serves_many_mappings() {
    let arch = presets::toy_linear(16, 1024);
    let shape = ProblemShape::rank1("d", 113);
    let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
    let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::Ruby);
    let mut rng = SmallRng::seed_from_u64(11);
    let mut sampler = space.sampler();
    let mut mapping = Mapping::builder(arch.num_levels())
        .build_for_bounds(shape.bounds())
        .unwrap();
    for _ in 0..200 {
        sampler.sample_into(&mut mapping, &mut rng);
        let fresh = evaluate(&arch, &shape, &mapping, &ModelOptions::default());
        let via_ctx = evaluate_with(&ctx, &mapping);
        assert_eq!(fresh.is_ok(), via_ctx.is_ok());
        if let (Ok(a), Ok(b)) = (fresh, via_ctx) {
            assert_reports_bit_identical(&a, &b);
        }
    }
}
