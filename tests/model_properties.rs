//! Property-based tests of the analytical cost model: conservation,
//! monotonicity, and consistency invariants that must hold for any
//! mapping the sampler can produce.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;

prop_compose! {
    fn arb_shape()(n in 1u64..3, m in 1u64..65, c in 1u64..65, p in 1u64..30, q in 1u64..30,
                   r in 1u64..6, s in 1u64..6) -> ProblemShape {
        ProblemShape::conv("prop", n, m, c, p, q, r, s, (1, 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid evaluation moves at least one full copy of every tensor
    /// out of DRAM (reads for inputs/weights, updates for outputs) and
    /// serves every MAC from the innermost storing levels.
    #[test]
    fn dram_traffic_lower_bounds(shape in arb_shape(), seed in 0u64..20) {
        let arch = presets::eyeriss_like(14, 12);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        if let Ok(report) = evaluate(&arch, &shape, &mapping, &ModelOptions::default()) {
            let dram = &report.level_stats()[0];
            let w = dram.per_tensor()[Operand::Weight.index()];
            let o = dram.per_tensor()[Operand::Output.index()];
            prop_assert!(w.reads >= shape.tensor_size(Operand::Weight) as f64 - 0.5);
            prop_assert!(o.updates >= shape.tensor_size(Operand::Output) as f64 - 0.5);
            prop_assert!(report.cycles() >= shape.macs().div_ceil(arch.total_mac_units()));
        }
    }

    /// Disabling multicast can only increase energy; disabling spatial
    /// reduction can only increase energy.
    #[test]
    fn network_features_only_save_energy(shape in arb_shape(), seed in 0u64..10) {
        let arch = presets::eyeriss_like(14, 12);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::Ruby);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        let with = ModelOptions::default();
        let without = ModelOptions { multicast: false, spatial_reduction: false };
        if let (Ok(a), Ok(b)) = (
            evaluate(&arch, &shape, &mapping, &with),
            evaluate(&arch, &shape, &mapping, &without),
        ) {
            prop_assert!(b.energy() >= a.energy() - 1e-6);
            prop_assert_eq!(a.cycles(), b.cycles());
        }
    }

    /// EDP equals energy times cycles, and level energies sum (with the
    /// MAC energy) to the total.
    #[test]
    fn report_is_internally_consistent(shape in arb_shape(), seed in 0u64..10) {
        let arch = presets::eyeriss_like(14, 12);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        if let Ok(report) = evaluate(&arch, &shape, &mapping, &ModelOptions::default()) {
            let level_sum: f64 = report.level_stats().iter().map(|l| l.energy()).sum();
            let expected = level_sum + report.macs() as f64 * arch.mac_energy();
            prop_assert!((report.energy() - expected).abs() < 1e-6 * expected.max(1.0));
            prop_assert!((report.edp() - report.energy() * report.cycles() as f64).abs()
                < 1e-6 * report.edp().max(1.0));
        }
    }

    /// Serializing everything onto one PE (all-temporal mapping at DRAM)
    /// is always valid on an architecture with unit-tile buffers and
    /// takes exactly MACs cycles.
    #[test]
    fn fully_serial_mapping_baseline(shape in arb_shape()) {
        let arch = presets::toy_linear(4, 1024);
        let mapping = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .expect("serial chain");
        let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default())
            .expect("unit tiles always fit");
        prop_assert_eq!(report.cycles(), shape.macs());
    }

    /// Padding a dimension never decreases MACs or the evaluated energy
    /// of the equivalent mapping.
    #[test]
    fn padding_never_reduces_work(d in 2u64..500) {
        let shape = ProblemShape::rank1("d", d);
        let arch = presets::toy_linear(16, 1024);
        let padded = padding::pad_to_array(&shape, &arch, &Constraints::unconstrained(2));
        prop_assert!(padded.macs() >= shape.macs());
        prop_assert_eq!(padded.bound(Dim::M) % 16, 0);
    }
}
