//! Serde round-trip tests: every spec type the CLI persists must survive
//! JSON serialization bit-for-bit, and evaluated results must replay
//! identically after a round trip.

use ruby_core::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn problem_shapes_round_trip() {
    for shape in [
        ProblemShape::conv("c", 1, 96, 48, 27, 27, 5, 5, (2, 1)).with_dilation((2, 2)),
        ProblemShape::gemm("g", 1760, 16, 1760),
        ProblemShape::rank1("d", 113),
    ] {
        let back = round_trip(&shape);
        assert_eq!(back, shape);
        assert_eq!(back.macs(), shape.macs());
        assert_eq!(back.input_height(), shape.input_height());
    }
}

#[test]
fn architectures_round_trip() {
    for arch in [
        presets::eyeriss_like(14, 12),
        presets::simba_like(15, 4, 4),
        presets::toy_linear(9, 1024),
        presets::clustered(5, 7),
    ] {
        let back: Architecture = round_trip(&arch);
        assert_eq!(back, arch);
        assert_eq!(back.total_mac_units(), arch.total_mac_units());
        assert_eq!(back.area_mm2(), arch.area_mm2());
    }
}

#[test]
fn mappings_round_trip_and_replay() {
    let arch = presets::eyeriss_like(14, 12);
    let shape = suites::alexnet_layer2();
    let explorer = Explorer::new(arch.clone())
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(SearchConfig {
            max_evaluations: Some(2_000),
            termination: Some(300),
            ..SearchConfig::default()
        });
    let best = explorer
        .explore(&shape, MapspaceKind::RubyS)
        .expect("mapping");
    let back: Mapping = round_trip(&best.mapping);
    assert_eq!(back, best.mapping);
    let replay = evaluate(&arch, &shape, &back, &ModelOptions::default()).expect("valid");
    assert_eq!(replay.cycles(), best.report.cycles());
    assert_eq!(replay.edp(), best.report.edp());
}

#[test]
fn cost_reports_round_trip() {
    let arch = presets::toy_linear(4, 1024);
    let shape = ProblemShape::rank1("d", 100);
    let mapping = Mapping::builder(2)
        .build_for_bounds(shape.bounds())
        .unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let back: CostReport = round_trip(&report);
    assert_eq!(back, report);
    assert_eq!(back.edp(), report.edp());
}

#[test]
fn constraints_round_trip() {
    let c = Constraints::eyeriss_row_stationary(3, 1);
    let back: Constraints = round_trip(&c);
    assert_eq!(back, c);
    assert!(back.exclusive_spatial());
}
