//! Property-based tests of the paper's core mathematical claims:
//! equations (1)–(5), the superset relationship between PFM and Ruby,
//! and the mapspace-ordering observations behind Table I.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;

/// Build the 2-level toy mapspace of the paper's §III studies.
fn toy_space(kind: MapspaceKind, pes: u64, d: u64) -> Mapspace {
    Mapspace::new(
        presets::toy_linear(pes, 1024),
        ProblemShape::rank1("d", d),
        kind,
    )
}

proptest! {
    /// Eq. (1)/(5): every sampled chain partitions the dimension exactly —
    /// tile profiles at every boundary cover all D elements.
    #[test]
    fn chains_partition_dimension(
        d in 1u64..2000,
        pes in 1u64..32,
        kind_idx in 0usize..4,
        seed in 0u64..50,
    ) {
        let kind = MapspaceKind::ALL[kind_idx];
        let space = toy_space(kind, pes, d);
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.sample(&mut rng);
        for profile in m.profiles(Dim::M) {
            prop_assert_eq!(profile.total_elements(), d);
        }
    }

    /// PFM mappings satisfy eq. (1): every slot's factor divides exactly
    /// (no remainders anywhere).
    #[test]
    fn pfm_is_always_perfect(d in 1u64..2000, pes in 1u64..32, seed in 0u64..50) {
        let space = toy_space(MapspaceKind::Pfm, pes, d);
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert!(!space.sample(&mut rng).is_imperfect());
    }

    /// The paper's superset claim: setting R_n = P_n recovers eq. (1), so
    /// every PFM tiling is also a Ruby tiling. Counting must agree:
    /// |Ruby| ≥ |Ruby-T| ≥ |PFM| and |Ruby-S| ≥ |PFM| per dimension.
    #[test]
    fn ruby_counts_dominate_pfm(d in 1u64..500, pes in 1u64..16) {
        let pfm = toy_space(MapspaceKind::Pfm, pes, d).count_tilings();
        let ruby = toy_space(MapspaceKind::Ruby, pes, d).count_tilings();
        let ruby_s = toy_space(MapspaceKind::RubyS, pes, d).count_tilings();
        let ruby_t = toy_space(MapspaceKind::RubyT, pes, d).count_tilings();
        prop_assert!(ruby >= pfm);
        prop_assert!(ruby_s >= pfm);
        prop_assert!(ruby_t >= pfm);
        prop_assert!(ruby >= ruby_t);
        prop_assert!(ruby >= ruby_s);
    }

    /// Fig. 5's cycle arithmetic, generalized: a full-width imperfect
    /// spatial mapping takes ceil(D / PEs) steps, never more than the
    /// best PFM spatial mapping.
    #[test]
    fn full_width_spatial_takes_ceil_cycles(d in 1u64..3000, pes in 1u64..64) {
        let shape = ProblemShape::rank1("d", d);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, pes.min(d));
        let m = b.build_for_bounds(shape.bounds()).expect("valid chain");
        prop_assert_eq!(m.compute_cycles(), d.div_ceil(pes.min(d)));
    }

    /// Utilization never exceeds 1 and MAC counts are conserved for any
    /// sampled mapping that passes validity.
    #[test]
    fn sampled_mappings_conserve_work(
        d in 1u64..1000,
        pes in 1u64..16,
        kind_idx in 0usize..4,
        seed in 0u64..20,
    ) {
        let kind = MapspaceKind::ALL[kind_idx];
        let space = toy_space(kind, pes, d);
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.sample(&mut rng);
        if let Ok(report) =
            evaluate(space.arch(), space.shape(), &m, &ModelOptions::default())
        {
            prop_assert_eq!(report.macs(), d);
            prop_assert!(report.utilization() <= 1.0 + 1e-9);
            prop_assert!(report.cycles() >= d.div_ceil(pes));
        }
    }
}

/// Eq. (5) worked example from the paper: L_0 = (6·16) + 4 − 1 = 99,
/// plus the final iteration = 100 tiles at the PE level.
#[test]
fn eq5_worked_example() {
    let shape = ProblemShape::rank1("d", 100);
    let mut b = Mapping::builder(2);
    b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
    let m = b.build_for_bounds(shape.bounds()).expect("valid chain");
    // 17 temporal iterations at DRAM (P_1 = R_1 = 17 in the paper's
    // walkthrough), 6-wide spatial with a final remainder of 4.
    let dram_t = m.layout().temporal_slot(0);
    assert_eq!(m.loop_count(Dim::M, dram_t), 17);
    let profiles = m.profiles(Dim::M);
    // At the PE boundary: 96 full +4 remainder elements = 100 unit tiles.
    assert_eq!(profiles[0].num_tiles(), 100);
    // Spatial boundary: 16 groups of 6 plus one group of 4.
    let spatial_boundary = 5; // chain boundary feeding the DRAM temporal slot
    assert_eq!(profiles[spatial_boundary].entries(), &[(4, 1), (6, 16)]);
}

/// Table I's qualitative ordering at the paper's own sizes.
#[test]
fn table1_ordering_at_paper_sizes() {
    for d in [3u64, 24, 99, 625, 4096] {
        let pfm = toy_space(MapspaceKind::Pfm, 9, d).count_tilings();
        let ruby = toy_space(MapspaceKind::Ruby, 9, d).count_tilings();
        let ruby_s = toy_space(MapspaceKind::RubyS, 9, d).count_tilings();
        assert!(pfm <= ruby_s, "d={d}");
        assert!(ruby_s <= ruby, "d={d}");
    }
    // The expansion must be dramatic at large sizes.
    let pfm = toy_space(MapspaceKind::Pfm, 9, 4096).count_tilings();
    let ruby = toy_space(MapspaceKind::Ruby, 9, 4096).count_tilings();
    assert!(ruby > pfm.saturating_mul(1000), "ruby {ruby} vs pfm {pfm}");
}
