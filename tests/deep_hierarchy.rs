//! Cross-crate tests on the four-level clustered hierarchy: the slot
//! machinery, cost model, sampler and simulator must all generalize
//! beyond the paper's three-level designs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;
use ruby_simulator::{simulate, SimLimits};

#[test]
fn four_level_mapping_by_hand() {
    // DRAM -> GLB -> 4 clusters -> 8 PEs each; put M across clusters
    // (imperfectly) and C across PEs.
    let arch = presets::clustered(4, 8);
    let shape = ProblemShape::conv("c", 1, 10, 16, 6, 6, 3, 3, (1, 1));
    let mut b = Mapping::builder(4);
    b.set_tile(Dim::M, 1, SlotKind::SpatialX, 4); // GLB -> clusters
    b.set_tile(Dim::C, 2, SlotKind::SpatialX, 8); // cluster -> PEs
    b.set_tile(Dim::R, 3, SlotKind::Temporal, 3);
    b.set_tile(Dim::S, 3, SlotKind::Temporal, 3);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    assert!(
        mapping.is_imperfect(),
        "M=10 over 4 clusters leaves a residual"
    );

    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
    assert_eq!(report.cycles(), sim.cycles);
    assert_eq!(report.macs(), sim.macs);
    // Both fanouts are used: utilization beats the 1/32 serial floor by
    // a wide margin.
    assert!(report.utilization() > 0.2, "got {}", report.utilization());
}

#[test]
fn four_level_sampling_respects_both_fanouts() {
    let arch = presets::clustered(5, 7);
    let shape = ProblemShape::conv("c", 1, 32, 24, 8, 8, 3, 3, (1, 1));
    let mut rng = SmallRng::seed_from_u64(9);
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(arch.clone(), shape.clone(), kind);
        for _ in 0..50 {
            let m = space.sample(&mut rng);
            let (x1, y1) = m.spatial_extent(1);
            let (x2, y2) = m.spatial_extent(2);
            assert!(x1 <= 5 && y1 == 1, "{kind}: GLB fanout {x1}x{y1}");
            assert!(x2 <= 7 && y2 == 1, "{kind}: cluster fanout {x2}x{y2}");
        }
    }
}

#[test]
fn four_level_search_finds_imperfect_winners() {
    let arch = presets::clustered(5, 7);
    // Powers of two everywhere: 5 and 7 divide nothing.
    let shape = ProblemShape::conv("c", 1, 64, 32, 16, 16, 1, 1, (1, 1));
    let explorer = Explorer::new(arch).with_search(SearchConfig {
        seed: 2,
        max_evaluations: Some(6_000),
        termination: Some(600),
        threads: 2,
        ..SearchConfig::default()
    });
    let pfm = explorer.explore(&shape, MapspaceKind::Pfm).expect("pfm");
    let ruby_s = explorer
        .explore(&shape, MapspaceKind::RubyS)
        .expect("ruby-s");
    assert!(
        ruby_s.report.cycles() < pfm.report.cycles(),
        "Ruby-S {} vs PFM {} cycles",
        ruby_s.report.cycles(),
        pfm.report.cycles()
    );
    assert!(ruby_s.mapping.is_imperfect());
}

#[test]
fn four_level_loopnest_renders() {
    let arch = presets::clustered(2, 3);
    let shape = ProblemShape::rank1("d", 30);
    let mut b = Mapping::builder(4);
    b.set_tile(Dim::M, 1, SlotKind::SpatialX, 2);
    b.set_tile(Dim::M, 2, SlotKind::SpatialX, 3);
    let m = b.build_for_bounds(shape.bounds()).unwrap();
    let nest = render_loopnest(&m, &["DRAM", "GLB", "CLUSTER", "PE"]);
    for name in ["DRAM", "GLB", "CLUSTER", "PE"] {
        assert!(nest.contains(name), "{nest}");
    }
    assert_eq!(nest.matches("parFor").count(), 2, "{nest}");
    drop(arch);
}
