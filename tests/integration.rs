//! Cross-crate integration tests: full explore flows on the paper's
//! architectures and workloads, exercising workload → arch → mapspace →
//! model → search end to end.

use ruby_core::prelude::*;

/// Small-budget config on the paper's search methodology (`Sampled`,
/// generative per-slot draws): these tests assert mapspace-quality
/// claims, which are defined under that sampling distribution.
fn quick(seed: u64) -> SearchConfig {
    SearchConfig {
        seed,
        max_evaluations: Some(8_000),
        termination: Some(800),
        threads: 2,
        strategy: SearchStrategy::Sampled,
        ..SearchConfig::default()
    }
}

#[test]
fn eyeriss_pointwise_layer_ruby_s_beats_pfm() {
    // M = 256 does not divide 12 rows: the motivating misalignment.
    let layer = ProblemShape::conv("pw", 1, 256, 64, 28, 28, 1, 1, (1, 1));
    let explorer = Explorer::new(presets::eyeriss_like(14, 12))
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(quick(11));
    let pfm = explorer
        .explore(&layer, MapspaceKind::Pfm)
        .expect("PFM mapping");
    let ruby_s = explorer
        .explore(&layer, MapspaceKind::RubyS)
        .expect("Ruby-S mapping");
    assert!(
        ruby_s.report.edp() <= pfm.report.edp(),
        "Ruby-S {} vs PFM {}",
        ruby_s.report.edp(),
        pfm.report.edp()
    );
    assert!(ruby_s.report.utilization() > pfm.report.utilization());
}

#[test]
fn simba_like_exploration_completes() {
    let layer = ProblemShape::conv("c", 1, 128, 64, 14, 14, 3, 3, (1, 1));
    let explorer = Explorer::new(presets::simba_like(15, 4, 4))
        .with_constraints(Constraints::simba_cm(3, 1, 2))
        .with_search(quick(13));
    for kind in [MapspaceKind::Pfm, MapspaceKind::RubyS] {
        let best = explorer
            .explore(&layer, kind)
            .unwrap_or_else(|| panic!("{kind} empty"));
        assert!(best.report.edp() > 0.0);
        assert!(best.report.utilization() <= 1.0 + 1e-9);
        // C/M-only constraint: no spatial P/Q anywhere.
        for level in 0..3 {
            let m = &best.mapping;
            for slot in [
                m.layout().spatial_x_slot(level),
                m.layout().spatial_y_slot(level),
            ] {
                for d in [Dim::P, Dim::Q, Dim::R, Dim::S, Dim::N] {
                    assert_eq!(m.loop_count(d, slot), 1, "{kind}: {d} spatial at {level}");
                }
            }
        }
    }
}

#[test]
fn explored_mappings_replay_identically() {
    // The mapping returned by search must evaluate to the same report
    // when replayed through the model directly.
    let layer = suites::alexnet_layer2();
    let arch = presets::eyeriss_like(14, 12);
    let explorer = Explorer::new(arch.clone())
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(quick(17));
    let best = explorer
        .explore(&layer, MapspaceKind::RubyS)
        .expect("mapping");
    let replay =
        evaluate(&arch, &layer, &best.mapping, &ModelOptions::default()).expect("still valid");
    assert_eq!(replay.cycles(), best.report.cycles());
    assert!((replay.energy() - best.report.energy()).abs() < 1e-6);
}

#[test]
fn padding_flow_matches_fig8_shape() {
    // D = 127 (prime): PFM serializes, padding to 128 parallelizes fully
    // at ~1% extra work, Ruby-S parallelizes with no extra work.
    let arch = presets::toy_linear(16, 1024);
    let shape = ProblemShape::rank1("d", 127);
    let constraints = Constraints::unconstrained(2);
    let explorer = Explorer::new(arch.clone()).with_search(quick(19));

    let pfm = explorer.explore(&shape, MapspaceKind::Pfm).expect("pfm");
    let ruby_s = explorer
        .explore(&shape, MapspaceKind::RubyS)
        .expect("ruby-s");
    let padded_shape = padding::pad_to_array(&shape, &arch, &constraints);
    assert_eq!(padded_shape.bound(Dim::M), 128);
    let padded = explorer
        .explore(&padded_shape, MapspaceKind::Pfm)
        .expect("padded");

    assert_eq!(pfm.report.cycles(), 127, "prime bound serializes PFM");
    assert_eq!(ruby_s.report.cycles(), 8);
    assert_eq!(padded.report.cycles(), 8);
    // Padding does one ineffectual element of work; Ruby-S does none.
    assert!(padded.report.energy() > ruby_s.report.energy());
}

#[test]
fn whole_resnet_suite_is_mappable() {
    // Every unique ResNet-50 layer must admit at least one valid PFM and
    // Ruby-S mapping on the baseline architecture (small budget).
    let explorer = Explorer::new(presets::eyeriss_like(14, 12))
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(SearchConfig {
            seed: 23,
            max_evaluations: Some(4_000),
            termination: Some(400),
            threads: 2,
            ..SearchConfig::default()
        });
    for layer in suites::resnet50().iter() {
        for kind in [MapspaceKind::Pfm, MapspaceKind::RubyS] {
            assert!(
                explorer.explore(layer, kind).is_some(),
                "{} has no valid {kind} mapping",
                layer.name()
            );
        }
    }
}

#[test]
fn latency_objective_trades_energy_for_cycles() {
    let layer = ProblemShape::conv("c", 1, 96, 32, 27, 27, 3, 3, (1, 1));
    let explorer = Explorer::new(presets::eyeriss_like(14, 12))
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1));
    let edp = explorer
        .clone()
        .with_search(quick(29))
        .explore(&layer, MapspaceKind::RubyS)
        .expect("edp search");
    let delay_cfg = SearchConfig {
        objective: Objective::Delay,
        ..quick(29)
    };
    let delay = explorer
        .with_search(delay_cfg)
        .explore(&layer, MapspaceKind::RubyS)
        .expect("delay search");
    assert!(delay.report.cycles() <= edp.report.cycles());
}
