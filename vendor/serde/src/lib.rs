//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace carries
//! a tiny value-based serialization framework under the `serde` name:
//! types convert to and from a JSON-like [`Value`] tree, and the
//! companion `serde_json` stub prints/parses that tree. There is no
//! proc-macro derive; the defining crates write manual impls, helped by
//! the [`impl_serde_struct!`], [`impl_serde_unit_enum!`] and
//! [`impl_serde_newtype!`] macros. Only same-version round-trips are
//! supported — the wire format is not upstream-serde compatible.

use std::fmt;

/// A JSON-like data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (full `u64` precision).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (exact round-trip via shortest decimal).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The field under `key`, or a "missing field" error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// This value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            _ => Err(Error::custom(format!(
                "expected unsigned integer, got {}",
                self.type_name()
            ))),
        }
    }

    /// This value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) if x <= i64::MAX as u64 => Ok(x as i64),
            _ => Err(Error::custom(format!(
                "expected integer, got {}",
                self.type_name()
            ))),
        }
    }

    /// This value as `f64` (integers coerce, so `1.0` survives being
    /// printed as `1`).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            _ => Err(Error::custom(format!(
                "expected number, got {}",
                self.type_name()
            ))),
        }
    }

    /// This value as `bool`.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!(
                "expected bool, got {}",
                self.type_name()
            ))),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(Error::custom(format!(
                "expected string, got {}",
                self.type_name()
            ))),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(Error::custom(format!(
                "expected array, got {}",
                self.type_name()
            ))),
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization traits, mirroring `serde::de`.
pub mod de {
    pub use super::Error;

    /// Owned deserialization (blanket-implemented; mirrors serde's
    /// `DeserializeOwned` bound used in generic code).
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let x = value.as_u64()?;
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let x = value.as_i64()?;
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_arr()?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_arr()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Implements `Serialize`/`Deserialize` for a struct with named fields,
/// encoding it as an object keyed by field name. Must be invoked in the
/// defining crate (it touches the fields directly).
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($ty {
                    $($field: $crate::Deserialize::from_value(value.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a fieldless enum, encoding
/// each variant as its name string.
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::Value::Str(name.to_owned())
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                match value.as_str()? {
                    $(s if s == stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::Error::custom(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a single-field tuple struct,
/// encoding it transparently as the inner value.
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($ty($crate::Deserialize::from_value(value)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [true, false, true];
        assert_eq!(<[bool; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (7u64, 9u64);
        assert_eq!(<(u64, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn integral_floats_coerce_back() {
        // 1.0 may be printed as `1` and reparsed as an integer; as_f64
        // must accept that.
        assert_eq!(f64::from_value(&Value::U64(1)).unwrap(), 1.0);
    }

    #[test]
    fn missing_fields_are_reported() {
        let obj = Value::Obj(vec![("a".into(), Value::U64(1))]);
        let err = obj.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
