//! Vendored minimal stand-in for `serde_json`: prints and parses the
//! [`serde::Value`] tree of the vendored `serde` stub.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so
//! `f64` values survive a round trip bit-for-bit (integral floats print
//! as integers and coerce back via `Value::as_f64`). Only same-version
//! round-trips are supported.

use std::fmt::Write as _;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// The stub's value tree always prints; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable two-space-indented JSON.
///
/// # Errors
///
/// The stub's value tree always prints; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a value tree `T` rejects.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            // Rust's Display is shortest-round-trip; non-finite values
            // print as bare tokens the parser also accepts.
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.iter(), |out, v, d| {
            write_value(out, v, indent, d);
        }),
        Value::Obj(fields) => {
            write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                fields.iter(),
                |out, (k, v), d| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::F64(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        let mut chars = std::str::from_utf8(&self.bytes[start..])
            .map_err(|_| Error::custom("invalid UTF-8"))?
            .char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos = start + i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => return Err(Error::custom(format!("unknown escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
        Err(Error::custom("unterminated string"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            // `-inf` from a printed non-finite float.
            if self.eat_keyword("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if let Some(neg) = text.strip_prefix('-') {
            // Integers wider than i64 (e.g. a printed 1e300) fall back
            // to f64.
            match neg.parse::<u64>() {
                Ok(x) if x <= i64::MAX as u64 + 1 => Ok(Value::I64((x as i64).wrapping_neg())),
                _ => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(x) => Ok(Value::U64(x)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "17", "-5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1f64,
            1.0 / 3.0,
            2.5e-12,
            1e300,
            -7.25,
            123456789.000000001,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"name":"x","items":[1,2,3],"opt":null,"pair":[1.5,"s"]}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_output_reparses() {
        let json = r#"{"a":[1,{"b":"c"}],"d":2.5}"#;
        let v: Value = from_str(json).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash \t tab \u{7}";
        let json = to_string(&s.to_owned()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
    }
}
