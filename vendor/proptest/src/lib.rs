//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace carries
//! the subset of the proptest API its tests use: the [`proptest!`] /
//! [`prop_compose!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, a
//! [`Strategy`] trait with `prop_map`, integer-range and tuple
//! strategies, and [`ProptestConfig::with_cases`]. Cases are generated
//! from a deterministic per-case RNG; there is no shrinking — a failing
//! case panics with its inputs debug-printed.

use std::fmt::Debug;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case`.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio offset keeps adjacent cases decorrelated.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Defines property tests: each `fn` runs its body once per case with
/// its arguments drawn from the given strategies, and panics (with the
/// inputs) on the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut prop_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                let prop_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!("property failed at case {case}: {message}\n  inputs: {prop_inputs}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Defines a named strategy function: the second argument list is drawn
/// from strategies and fed through the body.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($arg,)+)| $body)
        }
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the enclosing property case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// The usual glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
    pub use crate::{Map, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 1u64..10, b in 1u64..10) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn composed_strategies_feed_through(p in arb_pair()) {
            prop_assert!(p.0 >= 1 && p.0 < 10, "p = {:?}", p);
            prop_assert_eq!(p.0 + p.1, p.1 + p.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u32..100) {
            prop_assert!(v < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(5);
        let mut b = TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        always_fails();
    }
}
