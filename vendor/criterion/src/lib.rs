//! Vendored minimal stand-in for `criterion`.
//!
//! The build environment has no network access, so bench targets link
//! against this tiny harness instead. Benchmark bodies only execute when
//! the process was launched with a `--bench` argument (which `cargo
//! bench` passes); under `cargo test`, harness-less bench binaries run
//! as a fast no-op so the test suite stays quick. Timing is a simple
//! best-of-N wall-clock measurement printed to stdout — adequate for
//! relative comparisons, with none of upstream criterion's statistics.

use std::time::Instant;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stub treats all sizes alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Opaque hint preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn bench_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    nanos_best: Option<u128>,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher {
            samples,
            nanos_best: None,
        }
    }

    /// Times `routine` (best of the configured sample count).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos();
            self.nanos_best = Some(self.nanos_best.map_or(elapsed, |best| best.min(elapsed)));
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup time is not
    /// counted).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed().as_nanos();
            self.nanos_best = Some(self.nanos_best.map_or(elapsed, |best| best.min(elapsed)));
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let samples = self.sample_size;
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Ends the group (stats upload in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let samples = self.sample_size;
        self.run_one(id.as_ref(), samples, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: u32, mut f: F) {
        if !bench_mode_enabled() {
            return; // `cargo test` executes bench binaries: skip the work.
        }
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        match bencher.nanos_best {
            Some(nanos) => println!("bench {id:<50} best {nanos:>12} ns"),
            None => println!("bench {id:<50} (no measurement)"),
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_are_skipped_outside_bench_mode() {
        // The test harness is not invoked with `--bench`, so the closure
        // must never run.
        let mut criterion = Criterion::default();
        let mut ran = false;
        criterion.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("also_skipped", |_| ran = true);
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn bencher_measures_when_driven_directly() {
        let mut bencher = Bencher::new(3);
        bencher.iter(|| std::hint::black_box(17u64.pow(3)));
        assert!(bencher.nanos_best.is_some());
        let mut batched = Bencher::new(2);
        batched.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(batched.samples, 2);
    }
}
