//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: a seedable small PRNG ([`rngs::SmallRng`], xoshiro256++), the
//! [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic for a given
//! seed but are **not** bit-compatible with upstream rand 0.8.

/// A source of uniformly random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the standard seed-expansion / stream-decorrelation mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// A uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as u64).wrapping_sub(start as u64);
                // Debiased multiply-shift (Lemire); span == 0 means the
                // full u64 range, which no caller uses.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                start.wrapping_add((m >> 64) as u64 as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_half_open(start, end + 1, rng)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        f64::sample_half_open(start, end, rng)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
///
/// The blanket impls over [`SampleUniform`] (rather than one impl per
/// concrete range type) matter for inference: they let the compiler
/// unify the literal type of `0..n` with the expected output type, just
/// as upstream rand does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// A draw from the standard distribution of `T`.
    #[inline]
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++ under the hood).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing; feed
        /// them back through [`SmallRng::from_state`] to resume the
        /// stream bit-exactly.
        #[must_use]
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`SmallRng::to_state`] output. The
        /// all-zero state is a fixed point of xoshiro (the stream would
        /// be constant zeros), so it is remapped to a fixed nonzero
        /// word; real `to_state` snapshots never hit this case.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; splitmix64 of any seed
            // never produces four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    /// Alias: the stub backs StdRng with the same generator.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions using randomness.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..4.0f64);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = rng.r#gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.to_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The degenerate all-zero state is remapped, not honored.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn adjacent_seeds_are_decorrelated() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
