#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): build, tests, lints, formatting.
# Run from the repo root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> search_throughput --smoke (validity + zero duplicates + throughput floor)"
cargo run --release -p ruby-bench --bin search_throughput -- --smoke

echo "==> cargo test -q"
cargo test -q

echo "==> interleaving checker (bounded schedule exploration)"
cargo test -q -p ruby-search interleave

echo "==> telemetry feature matrix"
cargo test -q -p ruby-telemetry
cargo test -q -p ruby-telemetry --features telemetry
cargo test -q -p ruby-search --features telemetry
cargo build --release -p ruby-cli --features telemetry

echo "==> resilience smoke (kill/resume parity + supervised worker panic)"
cargo run --release -q -p ruby-bench --bin resilience_smoke --features failpoints
cargo test -q -p ruby-search --features failpoints
cargo test -q -p ruby-store --features failpoints

echo "==> serve smoke (warm hit from the store, >100x faster, clean SIGTERM)"
serve_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir"' EXIT
query_line=$(./target/release/ruby query --arch toy:16,1024 --workload rank1:113 \
    --budget quick --print)
# exec so SERVE_PID is the server itself, not a wrapping subshell.
coproc SERVE { exec ./target/release/ruby serve --store "$serve_dir/store.log"; }
printf '%s\n%s\n' "$query_line" "$query_line" >&"${SERVE[1]}"
IFS= read -r -t 60 cold_resp <&"${SERVE[0]}"
IFS= read -r -t 60 warm_resp <&"${SERVE[0]}"
grep -q '"source":"search"' <<<"$cold_resp"
grep -q '"source":"store"' <<<"$warm_resp"
cold_us=$(sed -n 's/.*"micros":\([0-9]*\).*/\1/p' <<<"$cold_resp")
warm_us=$(sed -n 's/.*"micros":\([0-9]*\).*/\1/p' <<<"$warm_resp")
if [ "$cold_us" -lt $(( warm_us * 100 )) ]; then
    echo "warm hit not >100x faster: cold=${cold_us}us warm=${warm_us}us" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
# The store survives the shutdown: a fresh server answers warm.
reopened=$(printf '%s\n' "$query_line" | ./target/release/ruby serve --store "$serve_dir/store.log")
grep -q '"source":"store"' <<<"$reopened"
grep -q 'store holds 1 mappings' <<<"$reopened"

echo "==> chaos smoke (failpoint storm: overload suite, chaos harness, SIGTERM under faults)"
cargo test -q -p ruby-server --features failpoints
cargo test -q -p ruby-cli --features failpoints
cargo build -q -p ruby-cli --features failpoints
chaos_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir" "$chaos_dir"' EXIT
RUBY_FAILPOINTS="server.worker=p:0.5:delay:30,serve.respond=p:0.2:err" \
    ./target/debug/ruby serve --store "$chaos_dir/store.log" \
    --socket "$chaos_dir/mapper.sock" --workers 2 --queue-depth 2 \
    >"$chaos_dir/summary.txt" &
CHAOS_PID=$!
answered=0
for _ in 1 2 3 4 5 6; do
    if ./target/debug/ruby query --arch toy:16,1024 --workload rank1:113 \
        --budget quick --socket "$chaos_dir/mapper.sock" >>"$chaos_dir/answers.txt"; then
        answered=$(( answered + 1 ))
    fi
done
if [ "$answered" -lt 1 ]; then
    echo "chaos smoke: every query lost under a p:0.2 drop rate" >&2
    exit 1
fi
kill -TERM "$CHAOS_PID"
wait "$CHAOS_PID"
grep -q 'served .* queries' "$chaos_dir/summary.txt"
grep -q 'resilience:' "$chaos_dir/summary.txt"
if [ -e "$chaos_dir/mapper.sock" ]; then
    echo "chaos smoke: socket file leaked past shutdown" >&2
    exit 1
fi
leaks=$(find "$chaos_dir" -name '*.tmp' -o -name '*.quarantine')
if [ -n "$leaks" ]; then
    echo "chaos smoke: tmp/quarantine litter leaked: $leaks" >&2
    exit 1
fi

echo "==> ruby-lint (--json, <5s budget, schema.lock committed + current)"
git ls-files --error-unmatch crates/lint/schema.lock >/dev/null
lint_start=$(date +%s)
cargo run --release -q -p ruby-lint -- --json --out target/ruby-lint.json
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -ge 5 ]; then
    echo "ruby-lint took ${lint_elapsed}s (budget: <5s)" >&2
    exit 1
fi
grep -q '"schema": 1' target/ruby-lint.json

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "tier-1: all green"
