#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): build, tests, lints, formatting.
# Run from the repo root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> search_throughput --smoke (validity + zero duplicates + throughput floor)"
cargo run --release -p ruby-bench --bin search_throughput -- --smoke

echo "==> cargo test -q"
cargo test -q

echo "==> interleaving checker (bounded schedule exploration)"
cargo test -q -p ruby-search interleave

echo "==> telemetry feature matrix"
cargo test -q -p ruby-telemetry
cargo test -q -p ruby-telemetry --features telemetry
cargo test -q -p ruby-search --features telemetry
cargo build --release -p ruby-cli --features telemetry

echo "==> resilience smoke (kill/resume parity + supervised worker panic)"
cargo run --release -q -p ruby-bench --bin resilience_smoke --features failpoints
cargo test -q -p ruby-search --features failpoints

echo "==> ruby-lint (--json, <5s budget, schema.lock committed + current)"
git ls-files --error-unmatch crates/lint/schema.lock >/dev/null
lint_start=$(date +%s)
cargo run --release -q -p ruby-lint -- --json --out target/ruby-lint.json
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -ge 5 ]; then
    echo "ruby-lint took ${lint_elapsed}s (budget: <5s)" >&2
    exit 1
fi
grep -q '"schema": 1' target/ruby-lint.json

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "tier-1: all green"
