#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): build, tests, lints, formatting.
# Run from the repo root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> search_throughput --smoke (validity + zero duplicates + throughput floor)"
cargo run --release -p ruby-bench --bin search_throughput -- --smoke

echo "==> cargo test -q"
cargo test -q

echo "==> interleaving checker (bounded schedule exploration)"
cargo test -q -p ruby-search interleave

echo "==> telemetry feature matrix"
cargo test -q -p ruby-telemetry
cargo test -q -p ruby-telemetry --features telemetry
cargo test -q -p ruby-search --features telemetry
cargo build --release -p ruby-cli --features telemetry

echo "==> resilience smoke (kill/resume parity + supervised worker panic)"
cargo run --release -q -p ruby-bench --bin resilience_smoke --features failpoints
cargo test -q -p ruby-search --features failpoints

echo "==> ruby-lint"
cargo run --release -q -p ruby-lint

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "tier-1: all green"
