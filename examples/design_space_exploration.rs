//! Architectural design-space exploration (the Figs. 13–14 flow in
//! miniature): sweep Eyeriss-like PE-array sizes, search each with PFM
//! and Ruby-S, and print the area/EDP trade-off table.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use ruby_core::prelude::*;

fn main() {
    // A deliberately awkward layer: 27-wide outputs never divide the
    // array extents below.
    let layer = suites::alexnet_layer2();
    println!("workload: {layer}\n");

    let configs: [(u64, u64); 5] = [(2, 7), (7, 7), (10, 8), (14, 12), (16, 16)];
    println!(
        "{:<8} {:>9} {:>14} {:>14} {:>9}",
        "array", "area mm²", "PFM EDP", "Ruby-S EDP", "Ruby-S Δ"
    );
    for (cols, rows) in configs {
        let arch = presets::eyeriss_like(cols, rows);
        let area = arch.area_mm2();
        let explorer = Explorer::new(arch)
            .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
            .with_search(SearchConfig {
                seed: 7,
                max_evaluations: Some(20_000),
                termination: Some(1_500),
                threads: 4,
                ..SearchConfig::default()
            });
        let pfm = explorer.explore(&layer, MapspaceKind::Pfm);
        let ruby_s = explorer.explore(&layer, MapspaceKind::RubyS);
        match (pfm, ruby_s) {
            (Some(p), Some(r)) => {
                let delta = (1.0 - r.report.edp() / p.report.edp()) * 100.0;
                println!(
                    "{:<8} {:>9.1} {:>14.3e} {:>14.3e} {:>8.1}%",
                    format!("{cols}x{rows}"),
                    area,
                    p.report.edp(),
                    r.report.edp(),
                    delta
                );
            }
            _ => println!("{cols}x{rows}: no valid mapping found"),
        }
    }
    println!("\nRuby-S should trace the Pareto frontier: equal or lower EDP at every area.");
}
