//! Quickstart: map one ResNet-50 pointwise layer onto an Eyeriss-like
//! accelerator and compare the perfect-factorization baseline against
//! Ruby-S.
//!
//! Run with: `cargo run --release --example quickstart`

use ruby_core::prelude::*;

fn main() {
    // The paper's baseline: 14×12 PE array, 128 KiB global buffer,
    // weights bypassing the GLB into per-PE scratchpads.
    let arch = presets::eyeriss_like(14, 12);
    println!("{arch}");

    // A pointwise (1×1) ResNet-50 layer: M=256 misaligns with the 12-row
    // array (best perfect factor: 8), which is exactly where imperfect
    // factorization helps.
    let layer = ProblemShape::conv("res2_1x1c", 1, 256, 64, 56, 56, 1, 1, (1, 1));
    println!("workload: {layer}\n");

    let explorer = Explorer::new(arch)
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(SearchConfig {
            seed: 42,
            max_evaluations: Some(30_000),
            termination: Some(2_000),
            threads: 4,
            ..SearchConfig::default()
        });

    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>8}",
        "space", "EDP", "energy", "cycles", "util"
    );
    let mut pfm_edp = None;
    for kind in MapspaceKind::ALL {
        match explorer.explore(&layer, kind) {
            Some(best) => {
                let r = &best.report;
                println!(
                    "{:<8} {:>14.3e} {:>14.3e} {:>10} {:>7.1}%",
                    kind.name(),
                    r.edp(),
                    r.energy(),
                    r.cycles(),
                    r.utilization() * 100.0
                );
                if kind == MapspaceKind::Pfm {
                    pfm_edp = Some(r.edp());
                }
                if kind == MapspaceKind::RubyS {
                    if let Some(base) = pfm_edp {
                        println!(
                            "\nRuby-S EDP vs PFM: {:.1}% ({}×{} array)\n",
                            (1.0 - r.edp() / base) * 100.0,
                            14,
                            12
                        );
                        println!("Best Ruby-S loop nest:");
                        println!("{}", render_loopnest(&best.mapping, &["DRAM", "GLB", "PE"]));
                    }
                }
            }
            None => println!("{:<8} no valid mapping found", kind.name()),
        }
    }
}
