//! Anatomy of an imperfect mapping: rebuild the paper's Fig. 4/5 toy by
//! hand — distributing 100 elements over 6 PEs through a 1 KiB global
//! buffer — and show why the imperfect mapping saves 3 cycles.
//!
//! Run with: `cargo run --release --example mapping_anatomy`

use ruby_core::prelude::*;

fn main() {
    // Fig. 4's toy: DRAM → 1 KiB GLB → 3×2 grid of storage-less PEs.
    let arch = presets::toy_glb(1024, 3, 2);
    let shape = ProblemShape::rank1("hundred", 100);
    println!("{arch}");
    println!("workload: {shape}\n");

    // The perfect-factorization pick of Fig. 4: 20 GLB iterations of 5
    // elements over 5 of 6 PEs (100 = 20 × 5).
    let mut pfm = Mapping::builder(3);
    pfm.set_tile(Dim::M, 1, SlotKind::SpatialX, 5);
    pfm.set_tile(Dim::M, 1, SlotKind::Temporal, 20);
    let pfm = pfm.build_for_bounds(shape.bounds()).expect("valid chain");

    // The imperfect pick of Fig. 5: all 6 PEs for 16 iterations, 4 PEs
    // on the 17th (100 = 16 × 6 + 4).
    let mut ruby = Mapping::builder(3);
    ruby.set_tile(Dim::M, 1, SlotKind::SpatialX, 6);
    let ruby = ruby.build_for_bounds(shape.bounds()).expect("valid chain");

    let opts = ModelOptions::default();
    for (name, mapping) in [("perfect (Fig. 4)", &pfm), ("imperfect (Fig. 5)", &ruby)] {
        let report =
            evaluate(&arch, &shape, mapping, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        println!("=== {name} ===");
        println!("{}", render_loopnest(mapping, &["DRAM", "GLB", "PE"]));
        println!(
            "cycles={}  energy={:.1}  EDP={:.1}  utilization={:.1}%",
            report.cycles(),
            report.energy(),
            report.edp(),
            report.utilization() * 100.0
        );
        for level in report.level_stats() {
            println!(
                "  {:<6} {:>10.0} accesses  {:>12.1} energy",
                level.name(),
                level.total_accesses(),
                level.energy()
            );
        }
        println!();
    }
    println!("The imperfect mapping finishes in 17 GLB iterations instead of 20 —");
    println!("the 3 cycles the paper's Fig. 5 walkthrough saves.");
}
