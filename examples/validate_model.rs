//! Validate the analytical cost model against the functional simulator:
//! sample mappings from every mapspace on a small convolution, execute
//! each one, and compare cycles (must match exactly) and fills (model
//! must be conservative).
//!
//! Run with: `cargo run --release --example validate_model`

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;
use ruby_simulator::{simulate, SimLimits};

fn main() {
    let arch = presets::toy_linear(6, 65536);
    let shape = ProblemShape::conv("mini", 1, 12, 8, 9, 9, 3, 3, (1, 1));
    println!("validating on {shape} ({} MACs)\n", shape.macs());
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>14} {:>14}",
        "space", "valid", "cycles=", "macs=", "model fills", "sim fills"
    );

    let mut rng = SmallRng::seed_from_u64(7);
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(arch.clone(), shape.clone(), kind);
        let mut checked = 0;
        let mut cycle_matches = 0;
        let mut model_fill_sum = 0.0;
        let mut sim_fill_sum = 0.0;
        for _ in 0..50 {
            let mapping = space.sample(&mut rng);
            let Ok(report) = evaluate(&arch, &shape, &mapping, &ModelOptions::default()) else {
                continue;
            };
            let sim =
                simulate(&arch, &shape, &mapping, &SimLimits::default()).expect("small problem");
            checked += 1;
            assert_eq!(sim.macs, shape.macs(), "MAC conservation violated!");
            if report.cycles() == sim.cycles {
                cycle_matches += 1;
            }
            let w = Operand::Weight.index();
            model_fill_sum += report.level_stats()[1].per_tensor()[w].fills;
            sim_fill_sum += sim.fills[1][w] as f64;
        }
        println!(
            "{:<8} {:>8} {:>9}/{:<2} {:>10} {:>14.0} {:>14.0}",
            kind.name(),
            checked,
            cycle_matches,
            checked,
            shape.macs(),
            model_fill_sum,
            sim_fill_sum
        );
    }
    println!("\ncycles= counts mappings where analytical == executed (should be all);");
    println!("model fills ≥ sim fills because irrelevant-loop multipliers use");
    println!("nominal (ceiling) counts — the model is deliberately conservative.");
}
