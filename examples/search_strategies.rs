//! Search strategies over the same Ruby-S mapspace: the paper's random
//! sampling, simulated annealing, and the search-free utilization-first
//! heuristic, on AlexNet layer 2 over the Eyeriss-like baseline.
//!
//! Run with: `cargo run --release --example search_strategies`

use std::time::Instant;

use ruby_core::mapspace::heuristic;
use ruby_core::prelude::*;

fn main() {
    let arch = presets::eyeriss_like(14, 12);
    let layer = suites::alexnet_layer2();
    let constraints = Constraints::eyeriss_row_stationary(3, 1);
    let space = Mapspace::new(arch.clone(), layer.clone(), MapspaceKind::RubyS)
        .with_constraints(constraints.clone());
    println!("workload: {layer}\n");
    println!(
        "{:<10} {:>13} {:>12} {:>10}",
        "strategy", "best EDP", "evaluations", "time"
    );

    // 1. Random sampling (the paper's search), via the Engine facade
    //    and the validating config builder.
    let t = Instant::now();
    let config = SearchConfig::builder()
        .seed(5)
        .max_evaluations(10_000)
        .termination(1_500)
        .threads(4)
        .build()
        .expect("positive budgets are a valid config");
    let random = Engine::new(&space).with_config(config).run();
    print_row(
        "random",
        random.best.as_ref().map(|b| b.report.edp()),
        random.evaluations,
        t,
    );

    // 2. Simulated annealing: same engine entry point, different
    //    strategy (max_evaluations becomes the annealer's step budget).
    let t = Instant::now();
    let annealed = Engine::new(&space)
        .with_config(SearchConfig {
            seed: 5,
            max_evaluations: Some(10_000),
            termination: None,
            strategy: SearchStrategy::Anneal,
            ..SearchConfig::default()
        })
        .run();
    print_row(
        "anneal",
        annealed.best.as_ref().map(|b| b.report.edp()),
        annealed.evaluations,
        t,
    );

    // 3. Search-free heuristic (a handful of constructive candidates).
    let t = Instant::now();
    let candidates = heuristic::utilization_first(&arch, &layer, &constraints);
    let evals = candidates.len() as u64;
    let best = candidates
        .iter()
        .filter_map(|m| evaluate(&arch, &layer, m, &ModelOptions::default()).ok())
        .map(|r| r.edp())
        .fold(f64::INFINITY, f64::min);
    print_row("heuristic", best.is_finite().then_some(best), evals, t);

    println!("\nThe mapspace (Ruby-S) is fixed; only the traversal changes —");
    println!("the paper's point that its contribution is orthogonal to search.");
}

fn print_row(name: &str, edp: Option<f64>, evals: u64, start: Instant) {
    let edp = edp
        .map(|e| format!("{e:.4e}"))
        .unwrap_or_else(|| "-".into());
    println!(
        "{:<10} {:>13} {:>12} {:>9.2?}",
        name,
        edp,
        evals,
        start.elapsed()
    );
}
