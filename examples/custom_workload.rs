//! Bring your own accelerator and workload: build a custom two-level
//! architecture and a custom DeepSpeech-like convolution, then compare
//! all four mapspaces on it.
//!
//! Run with: `cargo run --release --example custom_workload`

use ruby_core::prelude::*;

fn main() {
    // A hand-rolled accelerator: DRAM feeding 13 linear PEs (a prime
    // count — hostile to perfect factorization on purpose), each with a
    // 2 KiB scratchpad.
    let tech = TechnologyModel::default();
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::linear(13),
    );
    let spad = MemLevel::new(
        "SPAD",
        Capacity::Shared(1024),
        [true; 3],
        tech.sram_access_energy(2048),
        Fanout::unit(),
    );
    let arch = Architecture::new("prime13", vec![dram, spad], tech);
    println!("{arch}");

    // A DeepSpeech-style spectrogram convolution: tall, skinny, and with
    // shapes that share no factors with 13.
    let layer = ProblemShape::conv("ds_like", 1, 32, 1, 38, 166, 5, 10, (2, 1));
    println!("workload: {layer} ({} MACs)\n", layer.macs());

    let explorer = Explorer::new(arch).with_search(SearchConfig {
        seed: 3,
        max_evaluations: Some(40_000),
        termination: Some(2_000),
        threads: 4,
        ..SearchConfig::default()
    });

    let comparison = explorer.compare(&layer);
    println!(
        "{:<8} {:>14} {:>10} {:>8} {:>10}",
        "space", "EDP", "cycles", "util", "vs PFM"
    );
    for kind in MapspaceKind::ALL {
        match comparison.best(kind) {
            Some(best) => {
                let r = &best.report;
                let vs = comparison
                    .edp_vs_pfm(kind)
                    .map(|x| format!("{:.3}", x))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "{:<8} {:>14.3e} {:>10} {:>7.1}% {:>10}",
                    kind.name(),
                    r.edp(),
                    r.cycles(),
                    r.utilization() * 100.0,
                    vs
                );
            }
            None => println!("{:<8} no valid mapping found", kind.name()),
        }
    }
}
