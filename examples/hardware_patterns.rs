//! The paper's §III-C hardware claim, demonstrated: an FSM pattern
//! generator with the "different final loop" augmentation emits an
//! imperfect tile schedule with static configuration and no dead cycles.
//!
//! Run with: `cargo run --release --example hardware_patterns`

use ruby_core::prelude::*;
use ruby_patterngen::{matches_profile, DimProgram, TileFsm};

fn main() {
    // Take the Fig. 5 mapping's M-dimension chain straight from a real
    // Mapping: 100 elements, 6-wide spatial chunks.
    let shape = ProblemShape::rank1("hundred", 100);
    let mut b = Mapping::builder(2);
    b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
    let mapping = b.build_for_bounds(shape.bounds()).expect("valid chain");
    let program = DimProgram::new(mapping.tile_chain(Dim::M));

    println!(
        "program: chain {:?} — {} config words (static)\n",
        mapping.tile_chain(Dim::M),
        program.config_words()
    );

    // The spatial-chunk boundary is wherever the chain reaches 6.
    let chunk_boundary = mapping
        .tile_chain(Dim::M)
        .iter()
        .position(|&g| g == 6)
        .expect("the spatial factor is in the chain");
    println!("spatial dispatches (base, size):");
    for (i, (base, size)) in program.tiles_at(chunk_boundary).enumerate() {
        if i < 4 || size != 6 {
            println!(
                "  dispatch {i:>2}: PEs get elements {base}..{}",
                base + size
            );
        } else if i == 4 {
            println!("  ...");
        }
    }

    let mut fsm = TileFsm::new(&program);
    let tiles = fsm.by_ref().count();
    println!(
        "\ninnermost FSM: {tiles} tiles in {} steps (no dead cycles)",
        fsm.steps()
    );
    assert_eq!(tiles as u64, fsm.steps());

    for b in 0..program.num_levels() {
        assert!(matches_profile(&program, b), "boundary {b} mismatch");
    }
    println!("every boundary's emitted tile multiset matches the cost model's profiles ✓");
    println!("\nThe only hardware delta vs a perfect-factorization generator is one");
    println!("remaining-extent register (subtract-and-clamp) per loop level —");
    println!("the paper's 'minor augmentation to such a state machine'.");
}
