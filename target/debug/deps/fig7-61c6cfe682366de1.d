/root/repo/target/debug/deps/fig7-61c6cfe682366de1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-61c6cfe682366de1: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
