/root/repo/target/debug/deps/fig8-3d55c8398ded03a1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-3d55c8398ded03a1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
