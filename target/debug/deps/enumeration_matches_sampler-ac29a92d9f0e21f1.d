/root/repo/target/debug/deps/enumeration_matches_sampler-ac29a92d9f0e21f1.d: crates/mapspace/tests/enumeration_matches_sampler.rs

/root/repo/target/debug/deps/enumeration_matches_sampler-ac29a92d9f0e21f1: crates/mapspace/tests/enumeration_matches_sampler.rs

crates/mapspace/tests/enumeration_matches_sampler.rs:
