/root/repo/target/debug/deps/mapspace_sampling-d75ea66b42bfb3d7.d: crates/bench/benches/mapspace_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libmapspace_sampling-d75ea66b42bfb3d7.rmeta: crates/bench/benches/mapspace_sampling.rs Cargo.toml

crates/bench/benches/mapspace_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
