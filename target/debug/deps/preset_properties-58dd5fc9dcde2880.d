/root/repo/target/debug/deps/preset_properties-58dd5fc9dcde2880.d: crates/arch/tests/preset_properties.rs

/root/repo/target/debug/deps/preset_properties-58dd5fc9dcde2880: crates/arch/tests/preset_properties.rs

crates/arch/tests/preset_properties.rs:
