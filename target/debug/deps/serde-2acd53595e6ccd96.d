/root/repo/target/debug/deps/serde-2acd53595e6ccd96.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-2acd53595e6ccd96: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
