/root/repo/target/debug/deps/ruby_mapping-cf6081cc5318a856.d: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

/root/repo/target/debug/deps/libruby_mapping-cf6081cc5318a856.rlib: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

/root/repo/target/debug/deps/libruby_mapping-cf6081cc5318a856.rmeta: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

crates/mapping/src/lib.rs:
crates/mapping/src/display.rs:
crates/mapping/src/profile.rs:
crates/mapping/src/slots.rs:
