/root/repo/target/debug/deps/paper_properties-4d870142c00d8fc5.d: crates/core/../../tests/paper_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_properties-4d870142c00d8fc5.rmeta: crates/core/../../tests/paper_properties.rs Cargo.toml

crates/core/../../tests/paper_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
