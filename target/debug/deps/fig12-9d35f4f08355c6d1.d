/root/repo/target/debug/deps/fig12-9d35f4f08355c6d1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-9d35f4f08355c6d1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
