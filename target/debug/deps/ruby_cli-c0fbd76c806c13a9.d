/root/repo/target/debug/deps/ruby_cli-c0fbd76c806c13a9.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

/root/repo/target/debug/deps/ruby_cli-c0fbd76c806c13a9: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/parse.rs:
