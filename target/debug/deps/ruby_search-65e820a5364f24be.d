/root/repo/target/debug/deps/ruby_search-65e820a5364f24be.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

/root/repo/target/debug/deps/ruby_search-65e820a5364f24be: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/exhaustive.rs:
crates/search/src/memo.rs:
