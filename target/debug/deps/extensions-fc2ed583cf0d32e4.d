/root/repo/target/debug/deps/extensions-fc2ed583cf0d32e4.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-fc2ed583cf0d32e4: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
