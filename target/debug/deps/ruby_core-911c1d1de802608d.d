/root/repo/target/debug/deps/ruby_core-911c1d1de802608d.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/ruby_core-911c1d1de802608d: crates/core/src/lib.rs

crates/core/src/lib.rs:
