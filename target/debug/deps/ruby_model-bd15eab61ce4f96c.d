/root/repo/target/debug/deps/ruby_model-bd15eab61ce4f96c.d: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

/root/repo/target/debug/deps/ruby_model-bd15eab61ce4f96c: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

crates/model/src/lib.rs:
crates/model/src/access.rs:
crates/model/src/bound.rs:
crates/model/src/context.rs:
crates/model/src/latency.rs:
crates/model/src/report.rs:
crates/model/src/validity.rs:
