/root/repo/target/debug/deps/ruby_mapspace-50c9c28ac74352ac.d: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

/root/repo/target/debug/deps/libruby_mapspace-50c9c28ac74352ac.rlib: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

/root/repo/target/debug/deps/libruby_mapspace-50c9c28ac74352ac.rmeta: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

crates/mapspace/src/lib.rs:
crates/mapspace/src/constraints.rs:
crates/mapspace/src/enumerate.rs:
crates/mapspace/src/factor.rs:
crates/mapspace/src/heuristic.rs:
crates/mapspace/src/padding.rs:
crates/mapspace/src/space.rs:
