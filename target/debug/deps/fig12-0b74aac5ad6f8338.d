/root/repo/target/debug/deps/fig12-0b74aac5ad6f8338.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-0b74aac5ad6f8338: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
