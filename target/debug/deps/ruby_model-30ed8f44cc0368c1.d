/root/repo/target/debug/deps/ruby_model-30ed8f44cc0368c1.d: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

/root/repo/target/debug/deps/libruby_model-30ed8f44cc0368c1.rlib: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

/root/repo/target/debug/deps/libruby_model-30ed8f44cc0368c1.rmeta: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

crates/model/src/lib.rs:
crates/model/src/access.rs:
crates/model/src/bound.rs:
crates/model/src/context.rs:
crates/model/src/latency.rs:
crates/model/src/report.rs:
crates/model/src/validity.rs:
