/root/repo/target/debug/deps/ruby_patterngen-e5b10c2007bf467c.d: crates/patterngen/src/lib.rs

/root/repo/target/debug/deps/libruby_patterngen-e5b10c2007bf467c.rlib: crates/patterngen/src/lib.rs

/root/repo/target/debug/deps/libruby_patterngen-e5b10c2007bf467c.rmeta: crates/patterngen/src/lib.rs

crates/patterngen/src/lib.rs:
