/root/repo/target/debug/deps/deep_hierarchy-082387fc815133a7.d: crates/core/../../tests/deep_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libdeep_hierarchy-082387fc815133a7.rmeta: crates/core/../../tests/deep_hierarchy.rs Cargo.toml

crates/core/../../tests/deep_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
