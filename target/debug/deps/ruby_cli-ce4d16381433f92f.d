/root/repo/target/debug/deps/ruby_cli-ce4d16381433f92f.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

/root/repo/target/debug/deps/libruby_cli-ce4d16381433f92f.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

/root/repo/target/debug/deps/libruby_cli-ce4d16381433f92f.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/parse.rs:
