/root/repo/target/debug/deps/ruby_core-248a7f04829f5c83.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_core-248a7f04829f5c83.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
