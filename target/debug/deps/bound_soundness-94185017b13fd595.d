/root/repo/target/debug/deps/bound_soundness-94185017b13fd595.d: crates/model/tests/bound_soundness.rs

/root/repo/target/debug/deps/bound_soundness-94185017b13fd595: crates/model/tests/bound_soundness.rs

crates/model/tests/bound_soundness.rs:
