/root/repo/target/debug/deps/ruby_simulator-4dd5eaa677cdccb9.d: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/ruby_simulator-4dd5eaa677cdccb9: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
