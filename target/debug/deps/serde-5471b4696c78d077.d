/root/repo/target/debug/deps/serde-5471b4696c78d077.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5471b4696c78d077.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5471b4696c78d077.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
