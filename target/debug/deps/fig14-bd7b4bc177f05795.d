/root/repo/target/debug/deps/fig14-bd7b4bc177f05795.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-bd7b4bc177f05795: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
