/root/repo/target/debug/deps/ruby_energy-3951dc746a70c530.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libruby_energy-3951dc746a70c530.rlib: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libruby_energy-3951dc746a70c530.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
