/root/repo/target/debug/deps/search_throughput-8b7fdba977e62558.d: crates/bench/src/bin/search_throughput.rs

/root/repo/target/debug/deps/search_throughput-8b7fdba977e62558: crates/bench/src/bin/search_throughput.rs

crates/bench/src/bin/search_throughput.rs:
