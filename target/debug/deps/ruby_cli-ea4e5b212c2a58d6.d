/root/repo/target/debug/deps/ruby_cli-ea4e5b212c2a58d6.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libruby_cli-ea4e5b212c2a58d6.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
