/root/repo/target/debug/deps/figures-221b929222fcd529.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-221b929222fcd529: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
