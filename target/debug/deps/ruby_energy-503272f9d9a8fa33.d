/root/repo/target/debug/deps/ruby_energy-503272f9d9a8fa33.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/ruby_energy-503272f9d9a8fa33: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
