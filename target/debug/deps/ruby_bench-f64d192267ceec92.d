/root/repo/target/debug/deps/ruby_bench-f64d192267ceec92.d: crates/bench/src/lib.rs crates/bench/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libruby_bench-f64d192267ceec92.rmeta: crates/bench/src/lib.rs crates/bench/src/throughput.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
