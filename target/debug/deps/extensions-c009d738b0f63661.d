/root/repo/target/debug/deps/extensions-c009d738b0f63661.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-c009d738b0f63661: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
