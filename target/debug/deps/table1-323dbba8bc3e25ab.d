/root/repo/target/debug/deps/table1-323dbba8bc3e25ab.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-323dbba8bc3e25ab: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
