/root/repo/target/debug/deps/extensions-f6dbb4d4c2fe6d18.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f6dbb4d4c2fe6d18.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
