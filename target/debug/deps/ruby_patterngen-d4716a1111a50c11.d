/root/repo/target/debug/deps/ruby_patterngen-d4716a1111a50c11.d: crates/patterngen/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_patterngen-d4716a1111a50c11.rmeta: crates/patterngen/src/lib.rs Cargo.toml

crates/patterngen/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
