/root/repo/target/debug/deps/ruby_simulator-23a5b5589cf289f0.d: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/libruby_simulator-23a5b5589cf289f0.rlib: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/libruby_simulator-23a5b5589cf289f0.rmeta: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
