/root/repo/target/debug/deps/fig7-568e451080377d84.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-568e451080377d84: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
