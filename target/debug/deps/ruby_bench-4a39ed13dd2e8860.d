/root/repo/target/debug/deps/ruby_bench-4a39ed13dd2e8860.d: crates/bench/src/lib.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/ruby_bench-4a39ed13dd2e8860: crates/bench/src/lib.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/throughput.rs:
