/root/repo/target/debug/deps/model_validation-9da43d1d338ac952.d: crates/simulator/tests/model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_validation-9da43d1d338ac952.rmeta: crates/simulator/tests/model_validation.rs Cargo.toml

crates/simulator/tests/model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
