/root/repo/target/debug/deps/fig9-4f5749f06e5faa8c.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-4f5749f06e5faa8c: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
