/root/repo/target/debug/deps/paper_properties-fd541b8ad397b12e.d: crates/core/../../tests/paper_properties.rs

/root/repo/target/debug/deps/paper_properties-fd541b8ad397b12e: crates/core/../../tests/paper_properties.rs

crates/core/../../tests/paper_properties.rs:
