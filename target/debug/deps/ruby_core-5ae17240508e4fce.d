/root/repo/target/debug/deps/ruby_core-5ae17240508e4fce.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libruby_core-5ae17240508e4fce.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libruby_core-5ae17240508e4fce.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
