/root/repo/target/debug/deps/ruby_patterngen-e4786898c5059f07.d: crates/patterngen/src/lib.rs

/root/repo/target/debug/deps/ruby_patterngen-e4786898c5059f07: crates/patterngen/src/lib.rs

crates/patterngen/src/lib.rs:
