/root/repo/target/debug/deps/ruby_mapping-571dc81b2edbc15a.d: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

/root/repo/target/debug/deps/ruby_mapping-571dc81b2edbc15a: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

crates/mapping/src/lib.rs:
crates/mapping/src/display.rs:
crates/mapping/src/profile.rs:
crates/mapping/src/slots.rs:
