/root/repo/target/debug/deps/context_equivalence-cf2966de7e2fe42e.d: crates/core/../../tests/context_equivalence.rs

/root/repo/target/debug/deps/context_equivalence-cf2966de7e2fe42e: crates/core/../../tests/context_equivalence.rs

crates/core/../../tests/context_equivalence.rs:
