/root/repo/target/debug/deps/context_equivalence-5dc79f1367c53caa.d: crates/core/../../tests/context_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcontext_equivalence-5dc79f1367c53caa.rmeta: crates/core/../../tests/context_equivalence.rs Cargo.toml

crates/core/../../tests/context_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
