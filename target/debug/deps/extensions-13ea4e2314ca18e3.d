/root/repo/target/debug/deps/extensions-13ea4e2314ca18e3.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-13ea4e2314ca18e3: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
