/root/repo/target/debug/deps/model_validation-ce101625b9c04327.d: crates/simulator/tests/model_validation.rs

/root/repo/target/debug/deps/model_validation-ce101625b9c04327: crates/simulator/tests/model_validation.rs

crates/simulator/tests/model_validation.rs:
