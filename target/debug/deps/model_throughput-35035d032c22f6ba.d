/root/repo/target/debug/deps/model_throughput-35035d032c22f6ba.d: crates/bench/benches/model_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_throughput-35035d032c22f6ba.rmeta: crates/bench/benches/model_throughput.rs Cargo.toml

crates/bench/benches/model_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
