/root/repo/target/debug/deps/model_properties-5bf5ab4c9ba75659.d: crates/core/../../tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-5bf5ab4c9ba75659.rmeta: crates/core/../../tests/model_properties.rs Cargo.toml

crates/core/../../tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
