/root/repo/target/debug/deps/ruby_simulator-1f6bab7fcb7b0d57.d: crates/simulator/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_simulator-1f6bab7fcb7b0d57.rmeta: crates/simulator/src/lib.rs Cargo.toml

crates/simulator/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
