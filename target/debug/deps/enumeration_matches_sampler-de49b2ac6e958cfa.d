/root/repo/target/debug/deps/enumeration_matches_sampler-de49b2ac6e958cfa.d: crates/mapspace/tests/enumeration_matches_sampler.rs Cargo.toml

/root/repo/target/debug/deps/libenumeration_matches_sampler-de49b2ac6e958cfa.rmeta: crates/mapspace/tests/enumeration_matches_sampler.rs Cargo.toml

crates/mapspace/tests/enumeration_matches_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
