/root/repo/target/debug/deps/ruby_model-a54a7cdee6df26a4.d: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs Cargo.toml

/root/repo/target/debug/deps/libruby_model-a54a7cdee6df26a4.rmeta: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/access.rs:
crates/model/src/bound.rs:
crates/model/src/context.rs:
crates/model/src/latency.rs:
crates/model/src/report.rs:
crates/model/src/validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
