/root/repo/target/debug/deps/ruby-79ec1fa57b1ebc40.d: crates/cli/src/bin/ruby.rs

/root/repo/target/debug/deps/ruby-79ec1fa57b1ebc40: crates/cli/src/bin/ruby.rs

crates/cli/src/bin/ruby.rs:
