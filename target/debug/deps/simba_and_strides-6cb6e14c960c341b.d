/root/repo/target/debug/deps/simba_and_strides-6cb6e14c960c341b.d: crates/model/tests/simba_and_strides.rs

/root/repo/target/debug/deps/simba_and_strides-6cb6e14c960c341b: crates/model/tests/simba_and_strides.rs

crates/model/tests/simba_and_strides.rs:
