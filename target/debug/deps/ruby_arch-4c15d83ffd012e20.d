/root/repo/target/debug/deps/ruby_arch-4c15d83ffd012e20.d: crates/arch/src/lib.rs crates/arch/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libruby_arch-4c15d83ffd012e20.rmeta: crates/arch/src/lib.rs crates/arch/src/presets.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
