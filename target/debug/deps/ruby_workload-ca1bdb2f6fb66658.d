/root/repo/target/debug/deps/ruby_workload-ca1bdb2f6fb66658.d: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

/root/repo/target/debug/deps/libruby_workload-ca1bdb2f6fb66658.rlib: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

/root/repo/target/debug/deps/libruby_workload-ca1bdb2f6fb66658.rmeta: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

crates/workload/src/lib.rs:
crates/workload/src/dims.rs:
crates/workload/src/shape.rs:
crates/workload/src/suites.rs:
crates/workload/src/tensor.rs:
