/root/repo/target/debug/deps/ruby_workload-c1a95bc816b3cabc.d: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

/root/repo/target/debug/deps/ruby_workload-c1a95bc816b3cabc: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

crates/workload/src/lib.rs:
crates/workload/src/dims.rs:
crates/workload/src/shape.rs:
crates/workload/src/suites.rs:
crates/workload/src/tensor.rs:
