/root/repo/target/debug/deps/ruby_mapspace-fac1aa6020aea655.d: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libruby_mapspace-fac1aa6020aea655.rmeta: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs Cargo.toml

crates/mapspace/src/lib.rs:
crates/mapspace/src/constraints.rs:
crates/mapspace/src/enumerate.rs:
crates/mapspace/src/factor.rs:
crates/mapspace/src/heuristic.rs:
crates/mapspace/src/padding.rs:
crates/mapspace/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
