/root/repo/target/debug/deps/ruby_bench-5c090329c05d2c2d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_bench-5c090329c05d2c2d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
