/root/repo/target/debug/deps/fig7-190289539c1f01d0.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-190289539c1f01d0.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
