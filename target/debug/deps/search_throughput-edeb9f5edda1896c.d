/root/repo/target/debug/deps/search_throughput-edeb9f5edda1896c.d: crates/bench/src/bin/search_throughput.rs

/root/repo/target/debug/deps/search_throughput-edeb9f5edda1896c: crates/bench/src/bin/search_throughput.rs

crates/bench/src/bin/search_throughput.rs:
