/root/repo/target/debug/deps/fig14-7287d909aa425065.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-7287d909aa425065: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
