/root/repo/target/debug/deps/ruby-b8649bfbec29c0a5.d: crates/cli/src/bin/ruby.rs Cargo.toml

/root/repo/target/debug/deps/libruby-b8649bfbec29c0a5.rmeta: crates/cli/src/bin/ruby.rs Cargo.toml

crates/cli/src/bin/ruby.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
