/root/repo/target/debug/deps/ruby_bench-0033b41ca7a28b49.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_bench-0033b41ca7a28b49.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
