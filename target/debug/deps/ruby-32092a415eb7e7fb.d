/root/repo/target/debug/deps/ruby-32092a415eb7e7fb.d: crates/cli/src/bin/ruby.rs

/root/repo/target/debug/deps/ruby-32092a415eb7e7fb: crates/cli/src/bin/ruby.rs

crates/cli/src/bin/ruby.rs:
