/root/repo/target/debug/deps/serde_roundtrip-2c55ef5ef3238c71.d: crates/core/../../tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-2c55ef5ef3238c71: crates/core/../../tests/serde_roundtrip.rs

crates/core/../../tests/serde_roundtrip.rs:
