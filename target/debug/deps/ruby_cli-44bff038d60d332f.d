/root/repo/target/debug/deps/ruby_cli-44bff038d60d332f.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libruby_cli-44bff038d60d332f.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
