/root/repo/target/debug/deps/ruby_bench-ca0d7e3de813964e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ruby_bench-ca0d7e3de813964e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
