/root/repo/target/debug/deps/fig11-31885d1b78bbfb74.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-31885d1b78bbfb74: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
