/root/repo/target/debug/deps/ruby_mapping-393e94a4db307b6e.d: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs Cargo.toml

/root/repo/target/debug/deps/libruby_mapping-393e94a4db307b6e.rmeta: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs Cargo.toml

crates/mapping/src/lib.rs:
crates/mapping/src/display.rs:
crates/mapping/src/profile.rs:
crates/mapping/src/slots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
