/root/repo/target/debug/deps/mapspace_sampling-454c9b0e3e4d3298.d: crates/bench/benches/mapspace_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libmapspace_sampling-454c9b0e3e4d3298.rmeta: crates/bench/benches/mapspace_sampling.rs Cargo.toml

crates/bench/benches/mapspace_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
