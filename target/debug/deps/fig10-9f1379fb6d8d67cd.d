/root/repo/target/debug/deps/fig10-9f1379fb6d8d67cd.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-9f1379fb6d8d67cd: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
