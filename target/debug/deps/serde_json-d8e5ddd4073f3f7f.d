/root/repo/target/debug/deps/serde_json-d8e5ddd4073f3f7f.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d8e5ddd4073f3f7f.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d8e5ddd4073f3f7f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
