/root/repo/target/debug/deps/integration-f1cc2a3d674a1f0d.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-f1cc2a3d674a1f0d: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
