/root/repo/target/debug/deps/ablations-fbb9f03440df009c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-fbb9f03440df009c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
