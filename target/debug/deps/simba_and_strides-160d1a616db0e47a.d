/root/repo/target/debug/deps/simba_and_strides-160d1a616db0e47a.d: crates/model/tests/simba_and_strides.rs Cargo.toml

/root/repo/target/debug/deps/libsimba_and_strides-160d1a616db0e47a.rmeta: crates/model/tests/simba_and_strides.rs Cargo.toml

crates/model/tests/simba_and_strides.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
