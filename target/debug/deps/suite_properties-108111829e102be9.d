/root/repo/target/debug/deps/suite_properties-108111829e102be9.d: crates/workload/tests/suite_properties.rs

/root/repo/target/debug/deps/suite_properties-108111829e102be9: crates/workload/tests/suite_properties.rs

crates/workload/tests/suite_properties.rs:
