/root/repo/target/debug/deps/deep_hierarchy-a21abfbee9b8eb9e.d: crates/core/../../tests/deep_hierarchy.rs

/root/repo/target/debug/deps/deep_hierarchy-a21abfbee9b8eb9e: crates/core/../../tests/deep_hierarchy.rs

crates/core/../../tests/deep_hierarchy.rs:
