/root/repo/target/debug/deps/ruby_mapspace-a55e0d54f8c6c9e7.d: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

/root/repo/target/debug/deps/ruby_mapspace-a55e0d54f8c6c9e7: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

crates/mapspace/src/lib.rs:
crates/mapspace/src/constraints.rs:
crates/mapspace/src/enumerate.rs:
crates/mapspace/src/factor.rs:
crates/mapspace/src/heuristic.rs:
crates/mapspace/src/padding.rs:
crates/mapspace/src/space.rs:
