/root/repo/target/debug/deps/serde_json-216269630d48f80a.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-216269630d48f80a: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
