/root/repo/target/debug/deps/chain_properties-ba0ae213c1b34ff1.d: crates/mapping/tests/chain_properties.rs Cargo.toml

/root/repo/target/debug/deps/libchain_properties-ba0ae213c1b34ff1.rmeta: crates/mapping/tests/chain_properties.rs Cargo.toml

crates/mapping/tests/chain_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
