/root/repo/target/debug/deps/ruby-d0231ee5c4a0c69f.d: crates/cli/src/bin/ruby.rs Cargo.toml

/root/repo/target/debug/deps/libruby-d0231ee5c4a0c69f.rmeta: crates/cli/src/bin/ruby.rs Cargo.toml

crates/cli/src/bin/ruby.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
