/root/repo/target/debug/deps/ruby_energy-e275ae9474f9072c.d: crates/energy/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_energy-e275ae9474f9072c.rmeta: crates/energy/src/lib.rs Cargo.toml

crates/energy/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
