/root/repo/target/debug/deps/ruby_experiments-28007c3480eda956.d: crates/experiments/src/lib.rs crates/experiments/src/common.rs crates/experiments/src/ext_bypass.rs crates/experiments/src/ext_hierarchy.rs crates/experiments/src/ext_search.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/table.rs crates/experiments/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libruby_experiments-28007c3480eda956.rmeta: crates/experiments/src/lib.rs crates/experiments/src/common.rs crates/experiments/src/ext_bypass.rs crates/experiments/src/ext_hierarchy.rs crates/experiments/src/ext_search.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/table.rs crates/experiments/src/table1.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/common.rs:
crates/experiments/src/ext_bypass.rs:
crates/experiments/src/ext_hierarchy.rs:
crates/experiments/src/ext_search.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig14.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/table.rs:
crates/experiments/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
