/root/repo/target/debug/deps/extensions-c97e2f2e466873bc.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-c97e2f2e466873bc.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
