/root/repo/target/debug/deps/ruby_workload-f30280cf954d3e12.d: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libruby_workload-f30280cf954d3e12.rmeta: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dims.rs:
crates/workload/src/shape.rs:
crates/workload/src/suites.rs:
crates/workload/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
