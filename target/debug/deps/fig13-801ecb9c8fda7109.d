/root/repo/target/debug/deps/fig13-801ecb9c8fda7109.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-801ecb9c8fda7109: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
