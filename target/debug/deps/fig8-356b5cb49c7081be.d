/root/repo/target/debug/deps/fig8-356b5cb49c7081be.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-356b5cb49c7081be: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
