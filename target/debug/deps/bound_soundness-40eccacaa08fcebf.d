/root/repo/target/debug/deps/bound_soundness-40eccacaa08fcebf.d: crates/model/tests/bound_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libbound_soundness-40eccacaa08fcebf.rmeta: crates/model/tests/bound_soundness.rs Cargo.toml

crates/model/tests/bound_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
