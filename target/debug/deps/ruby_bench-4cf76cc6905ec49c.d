/root/repo/target/debug/deps/ruby_bench-4cf76cc6905ec49c.d: crates/bench/src/lib.rs crates/bench/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libruby_bench-4cf76cc6905ec49c.rmeta: crates/bench/src/lib.rs crates/bench/src/throughput.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
