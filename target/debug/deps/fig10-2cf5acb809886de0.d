/root/repo/target/debug/deps/fig10-2cf5acb809886de0.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-2cf5acb809886de0: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
