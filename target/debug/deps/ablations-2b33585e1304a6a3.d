/root/repo/target/debug/deps/ablations-2b33585e1304a6a3.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-2b33585e1304a6a3: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
