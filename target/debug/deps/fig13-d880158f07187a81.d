/root/repo/target/debug/deps/fig13-d880158f07187a81.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-d880158f07187a81: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
