/root/repo/target/debug/deps/fig10-ee0a49864d69fb8a.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-ee0a49864d69fb8a.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
