/root/repo/target/debug/deps/fig9-9cf745be1039d30f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-9cf745be1039d30f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
