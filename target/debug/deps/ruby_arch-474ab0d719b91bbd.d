/root/repo/target/debug/deps/ruby_arch-474ab0d719b91bbd.d: crates/arch/src/lib.rs crates/arch/src/presets.rs

/root/repo/target/debug/deps/libruby_arch-474ab0d719b91bbd.rlib: crates/arch/src/lib.rs crates/arch/src/presets.rs

/root/repo/target/debug/deps/libruby_arch-474ab0d719b91bbd.rmeta: crates/arch/src/lib.rs crates/arch/src/presets.rs

crates/arch/src/lib.rs:
crates/arch/src/presets.rs:
