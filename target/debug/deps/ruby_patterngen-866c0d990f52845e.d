/root/repo/target/debug/deps/ruby_patterngen-866c0d990f52845e.d: crates/patterngen/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libruby_patterngen-866c0d990f52845e.rmeta: crates/patterngen/src/lib.rs Cargo.toml

crates/patterngen/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
