/root/repo/target/debug/deps/table1-7a9401c66d898f5d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7a9401c66d898f5d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
