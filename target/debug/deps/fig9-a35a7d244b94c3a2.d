/root/repo/target/debug/deps/fig9-a35a7d244b94c3a2.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-a35a7d244b94c3a2: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
