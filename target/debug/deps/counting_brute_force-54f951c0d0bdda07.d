/root/repo/target/debug/deps/counting_brute_force-54f951c0d0bdda07.d: crates/mapspace/tests/counting_brute_force.rs

/root/repo/target/debug/deps/counting_brute_force-54f951c0d0bdda07: crates/mapspace/tests/counting_brute_force.rs

crates/mapspace/tests/counting_brute_force.rs:
