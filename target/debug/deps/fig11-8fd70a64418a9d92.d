/root/repo/target/debug/deps/fig11-8fd70a64418a9d92.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-8fd70a64418a9d92: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
