/root/repo/target/debug/deps/fig8-da98887589dfc9b2.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-da98887589dfc9b2: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
