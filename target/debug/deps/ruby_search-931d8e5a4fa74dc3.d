/root/repo/target/debug/deps/ruby_search-931d8e5a4fa74dc3.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs Cargo.toml

/root/repo/target/debug/deps/libruby_search-931d8e5a4fa74dc3.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs Cargo.toml

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/exhaustive.rs:
crates/search/src/memo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
