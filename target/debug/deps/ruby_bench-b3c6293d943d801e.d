/root/repo/target/debug/deps/ruby_bench-b3c6293d943d801e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libruby_bench-b3c6293d943d801e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libruby_bench-b3c6293d943d801e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
