/root/repo/target/debug/deps/integration-cab4c1987ff97e2d.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-cab4c1987ff97e2d.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
