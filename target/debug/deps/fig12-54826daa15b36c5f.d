/root/repo/target/debug/deps/fig12-54826daa15b36c5f.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-54826daa15b36c5f: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
