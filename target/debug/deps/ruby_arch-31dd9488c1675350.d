/root/repo/target/debug/deps/ruby_arch-31dd9488c1675350.d: crates/arch/src/lib.rs crates/arch/src/presets.rs

/root/repo/target/debug/deps/ruby_arch-31dd9488c1675350: crates/arch/src/lib.rs crates/arch/src/presets.rs

crates/arch/src/lib.rs:
crates/arch/src/presets.rs:
