/root/repo/target/debug/deps/ruby_bench-c7ba3723f2622388.d: crates/bench/src/lib.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libruby_bench-c7ba3723f2622388.rlib: crates/bench/src/lib.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libruby_bench-c7ba3723f2622388.rmeta: crates/bench/src/lib.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/throughput.rs:
