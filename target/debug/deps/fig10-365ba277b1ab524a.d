/root/repo/target/debug/deps/fig10-365ba277b1ab524a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-365ba277b1ab524a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
