/root/repo/target/debug/deps/model_properties-f38522a2ec582343.d: crates/core/../../tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-f38522a2ec582343: crates/core/../../tests/model_properties.rs

crates/core/../../tests/model_properties.rs:
