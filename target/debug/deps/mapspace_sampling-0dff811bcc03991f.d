/root/repo/target/debug/deps/mapspace_sampling-0dff811bcc03991f.d: crates/bench/benches/mapspace_sampling.rs

/root/repo/target/debug/deps/mapspace_sampling-0dff811bcc03991f: crates/bench/benches/mapspace_sampling.rs

crates/bench/benches/mapspace_sampling.rs:
