/root/repo/target/debug/deps/fig14-1d459feaf9eb602f.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-1d459feaf9eb602f: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
