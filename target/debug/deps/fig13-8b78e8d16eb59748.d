/root/repo/target/debug/deps/fig13-8b78e8d16eb59748.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-8b78e8d16eb59748: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
