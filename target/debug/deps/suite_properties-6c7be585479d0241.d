/root/repo/target/debug/deps/suite_properties-6c7be585479d0241.d: crates/workload/tests/suite_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_properties-6c7be585479d0241.rmeta: crates/workload/tests/suite_properties.rs Cargo.toml

crates/workload/tests/suite_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
