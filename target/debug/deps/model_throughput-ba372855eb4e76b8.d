/root/repo/target/debug/deps/model_throughput-ba372855eb4e76b8.d: crates/bench/benches/model_throughput.rs

/root/repo/target/debug/deps/model_throughput-ba372855eb4e76b8: crates/bench/benches/model_throughput.rs

crates/bench/benches/model_throughput.rs:
