/root/repo/target/debug/deps/preset_properties-49683a323cc75622.d: crates/arch/tests/preset_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpreset_properties-49683a323cc75622.rmeta: crates/arch/tests/preset_properties.rs Cargo.toml

crates/arch/tests/preset_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
