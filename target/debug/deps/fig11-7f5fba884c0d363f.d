/root/repo/target/debug/deps/fig11-7f5fba884c0d363f.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-7f5fba884c0d363f: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
