/root/repo/target/debug/deps/ruby_search-9a003e926be140f3.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

/root/repo/target/debug/deps/libruby_search-9a003e926be140f3.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

/root/repo/target/debug/deps/libruby_search-9a003e926be140f3.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/exhaustive.rs:
crates/search/src/memo.rs:
