/root/repo/target/debug/deps/fig7-da608def4a0c8c25.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-da608def4a0c8c25: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
