/root/repo/target/debug/deps/chain_properties-9541a78e458c7c8b.d: crates/mapping/tests/chain_properties.rs

/root/repo/target/debug/deps/chain_properties-9541a78e458c7c8b: crates/mapping/tests/chain_properties.rs

crates/mapping/tests/chain_properties.rs:
