/root/repo/target/debug/deps/table1-62f1fb2018811d85.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-62f1fb2018811d85: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
