/root/repo/target/debug/deps/counting_brute_force-332c98879b75121f.d: crates/mapspace/tests/counting_brute_force.rs Cargo.toml

/root/repo/target/debug/deps/libcounting_brute_force-332c98879b75121f.rmeta: crates/mapspace/tests/counting_brute_force.rs Cargo.toml

crates/mapspace/tests/counting_brute_force.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
