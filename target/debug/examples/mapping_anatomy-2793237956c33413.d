/root/repo/target/debug/examples/mapping_anatomy-2793237956c33413.d: crates/core/../../examples/mapping_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libmapping_anatomy-2793237956c33413.rmeta: crates/core/../../examples/mapping_anatomy.rs Cargo.toml

crates/core/../../examples/mapping_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
