/root/repo/target/debug/examples/validate_model-3f6730248a7975f5.d: crates/core/../../examples/validate_model.rs

/root/repo/target/debug/examples/validate_model-3f6730248a7975f5: crates/core/../../examples/validate_model.rs

crates/core/../../examples/validate_model.rs:
