/root/repo/target/debug/examples/hardware_patterns-6881139f0954c646.d: crates/core/../../examples/hardware_patterns.rs

/root/repo/target/debug/examples/hardware_patterns-6881139f0954c646: crates/core/../../examples/hardware_patterns.rs

crates/core/../../examples/hardware_patterns.rs:
