/root/repo/target/debug/examples/hardware_patterns-48bf26d8cb3ee774.d: crates/core/../../examples/hardware_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libhardware_patterns-48bf26d8cb3ee774.rmeta: crates/core/../../examples/hardware_patterns.rs Cargo.toml

crates/core/../../examples/hardware_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
