/root/repo/target/debug/examples/quickstart-24d583c718c235b2.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-24d583c718c235b2: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
