/root/repo/target/debug/examples/design_space_exploration-83d80d797d54e273.d: crates/core/../../examples/design_space_exploration.rs

/root/repo/target/debug/examples/design_space_exploration-83d80d797d54e273: crates/core/../../examples/design_space_exploration.rs

crates/core/../../examples/design_space_exploration.rs:
