/root/repo/target/debug/examples/search_strategies-6e81be6b774142b6.d: crates/core/../../examples/search_strategies.rs Cargo.toml

/root/repo/target/debug/examples/libsearch_strategies-6e81be6b774142b6.rmeta: crates/core/../../examples/search_strategies.rs Cargo.toml

crates/core/../../examples/search_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
