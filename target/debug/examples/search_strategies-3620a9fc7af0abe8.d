/root/repo/target/debug/examples/search_strategies-3620a9fc7af0abe8.d: crates/core/../../examples/search_strategies.rs

/root/repo/target/debug/examples/search_strategies-3620a9fc7af0abe8: crates/core/../../examples/search_strategies.rs

crates/core/../../examples/search_strategies.rs:
