/root/repo/target/debug/examples/design_space_exploration-a648aa22c89f61c0.d: crates/core/../../examples/design_space_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space_exploration-a648aa22c89f61c0.rmeta: crates/core/../../examples/design_space_exploration.rs Cargo.toml

crates/core/../../examples/design_space_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
