/root/repo/target/debug/examples/validate_model-d5ff764d6cac3c13.d: crates/core/../../examples/validate_model.rs Cargo.toml

/root/repo/target/debug/examples/libvalidate_model-d5ff764d6cac3c13.rmeta: crates/core/../../examples/validate_model.rs Cargo.toml

crates/core/../../examples/validate_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
