/root/repo/target/debug/examples/custom_workload-0427cf082fa5c9f5.d: crates/core/../../examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-0427cf082fa5c9f5.rmeta: crates/core/../../examples/custom_workload.rs Cargo.toml

crates/core/../../examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
