/root/repo/target/debug/examples/custom_workload-2842a6bf974569e8.d: crates/core/../../examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-2842a6bf974569e8: crates/core/../../examples/custom_workload.rs

crates/core/../../examples/custom_workload.rs:
