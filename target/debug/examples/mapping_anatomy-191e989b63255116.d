/root/repo/target/debug/examples/mapping_anatomy-191e989b63255116.d: crates/core/../../examples/mapping_anatomy.rs

/root/repo/target/debug/examples/mapping_anatomy-191e989b63255116: crates/core/../../examples/mapping_anatomy.rs

crates/core/../../examples/mapping_anatomy.rs:
