/root/repo/target/debug/examples/probe_regions-0dda6b21a9030adc.d: crates/core/examples/probe_regions.rs

/root/repo/target/debug/examples/probe_regions-0dda6b21a9030adc: crates/core/examples/probe_regions.rs

crates/core/examples/probe_regions.rs:
