/root/repo/target/release/examples/probe_regions-7d8842c34a7816f7.d: crates/core/examples/probe_regions.rs

/root/repo/target/release/examples/probe_regions-7d8842c34a7816f7: crates/core/examples/probe_regions.rs

crates/core/examples/probe_regions.rs:
