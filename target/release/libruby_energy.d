/root/repo/target/release/libruby_energy.rlib: /root/repo/crates/energy/src/lib.rs /root/repo/vendor/serde/src/lib.rs
