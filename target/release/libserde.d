/root/repo/target/release/libserde.rlib: /root/repo/vendor/serde/src/lib.rs
