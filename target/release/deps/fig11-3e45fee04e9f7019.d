/root/repo/target/release/deps/fig11-3e45fee04e9f7019.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-3e45fee04e9f7019: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
