/root/repo/target/release/deps/serde_json-dd4b05d48b41e85a.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-dd4b05d48b41e85a.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-dd4b05d48b41e85a.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
