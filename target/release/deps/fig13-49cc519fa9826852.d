/root/repo/target/release/deps/fig13-49cc519fa9826852.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-49cc519fa9826852: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
