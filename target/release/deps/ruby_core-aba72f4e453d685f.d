/root/repo/target/release/deps/ruby_core-aba72f4e453d685f.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libruby_core-aba72f4e453d685f.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libruby_core-aba72f4e453d685f.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
