/root/repo/target/release/deps/ruby_cli-505f5201af5dfdd4.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

/root/repo/target/release/deps/libruby_cli-505f5201af5dfdd4.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

/root/repo/target/release/deps/libruby_cli-505f5201af5dfdd4.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/parse.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/parse.rs:
