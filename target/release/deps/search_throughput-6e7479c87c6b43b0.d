/root/repo/target/release/deps/search_throughput-6e7479c87c6b43b0.d: crates/bench/src/bin/search_throughput.rs

/root/repo/target/release/deps/search_throughput-6e7479c87c6b43b0: crates/bench/src/bin/search_throughput.rs

crates/bench/src/bin/search_throughput.rs:
