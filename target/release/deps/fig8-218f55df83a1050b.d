/root/repo/target/release/deps/fig8-218f55df83a1050b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-218f55df83a1050b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
