/root/repo/target/release/deps/fig13-e39a57863493d015.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-e39a57863493d015: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
