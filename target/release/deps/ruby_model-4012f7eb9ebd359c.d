/root/repo/target/release/deps/ruby_model-4012f7eb9ebd359c.d: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

/root/repo/target/release/deps/libruby_model-4012f7eb9ebd359c.rlib: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

/root/repo/target/release/deps/libruby_model-4012f7eb9ebd359c.rmeta: crates/model/src/lib.rs crates/model/src/access.rs crates/model/src/bound.rs crates/model/src/context.rs crates/model/src/latency.rs crates/model/src/report.rs crates/model/src/validity.rs

crates/model/src/lib.rs:
crates/model/src/access.rs:
crates/model/src/bound.rs:
crates/model/src/context.rs:
crates/model/src/latency.rs:
crates/model/src/report.rs:
crates/model/src/validity.rs:
