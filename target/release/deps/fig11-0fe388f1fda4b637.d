/root/repo/target/release/deps/fig11-0fe388f1fda4b637.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-0fe388f1fda4b637: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
