/root/repo/target/release/deps/fig14-45ba6bd435e1ddfc.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-45ba6bd435e1ddfc: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
