/root/repo/target/release/deps/extensions-d1a19dd9e00052c4.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-d1a19dd9e00052c4: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
