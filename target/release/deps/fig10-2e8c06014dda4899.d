/root/repo/target/release/deps/fig10-2e8c06014dda4899.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-2e8c06014dda4899: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
