/root/repo/target/release/deps/rand-9885f829cb2d7213.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-9885f829cb2d7213.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-9885f829cb2d7213.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
