/root/repo/target/release/deps/ruby_search-380fb82bae0e8448.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

/root/repo/target/release/deps/libruby_search-380fb82bae0e8448.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

/root/repo/target/release/deps/libruby_search-380fb82bae0e8448.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/exhaustive.rs crates/search/src/memo.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/exhaustive.rs:
crates/search/src/memo.rs:
