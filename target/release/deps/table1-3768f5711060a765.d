/root/repo/target/release/deps/table1-3768f5711060a765.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3768f5711060a765: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
