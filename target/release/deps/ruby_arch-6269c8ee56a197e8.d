/root/repo/target/release/deps/ruby_arch-6269c8ee56a197e8.d: crates/arch/src/lib.rs crates/arch/src/presets.rs

/root/repo/target/release/deps/libruby_arch-6269c8ee56a197e8.rlib: crates/arch/src/lib.rs crates/arch/src/presets.rs

/root/repo/target/release/deps/libruby_arch-6269c8ee56a197e8.rmeta: crates/arch/src/lib.rs crates/arch/src/presets.rs

crates/arch/src/lib.rs:
crates/arch/src/presets.rs:
