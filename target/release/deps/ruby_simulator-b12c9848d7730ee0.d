/root/repo/target/release/deps/ruby_simulator-b12c9848d7730ee0.d: crates/simulator/src/lib.rs

/root/repo/target/release/deps/libruby_simulator-b12c9848d7730ee0.rlib: crates/simulator/src/lib.rs

/root/repo/target/release/deps/libruby_simulator-b12c9848d7730ee0.rmeta: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
