/root/repo/target/release/deps/fig7-1aac9c09847fb379.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-1aac9c09847fb379: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
