/root/repo/target/release/deps/extensions-3e930597fb1bd6ef.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-3e930597fb1bd6ef: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
