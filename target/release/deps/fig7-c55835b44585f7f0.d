/root/repo/target/release/deps/fig7-c55835b44585f7f0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-c55835b44585f7f0: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
