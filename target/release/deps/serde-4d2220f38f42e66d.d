/root/repo/target/release/deps/serde-4d2220f38f42e66d.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4d2220f38f42e66d.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4d2220f38f42e66d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
