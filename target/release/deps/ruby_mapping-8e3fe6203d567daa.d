/root/repo/target/release/deps/ruby_mapping-8e3fe6203d567daa.d: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

/root/repo/target/release/deps/libruby_mapping-8e3fe6203d567daa.rlib: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

/root/repo/target/release/deps/libruby_mapping-8e3fe6203d567daa.rmeta: crates/mapping/src/lib.rs crates/mapping/src/display.rs crates/mapping/src/profile.rs crates/mapping/src/slots.rs

crates/mapping/src/lib.rs:
crates/mapping/src/display.rs:
crates/mapping/src/profile.rs:
crates/mapping/src/slots.rs:
