/root/repo/target/release/deps/ruby_energy-2e3472817e52ffa8.d: crates/energy/src/lib.rs

/root/repo/target/release/deps/libruby_energy-2e3472817e52ffa8.rlib: crates/energy/src/lib.rs

/root/repo/target/release/deps/libruby_energy-2e3472817e52ffa8.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
