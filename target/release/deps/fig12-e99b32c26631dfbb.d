/root/repo/target/release/deps/fig12-e99b32c26631dfbb.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-e99b32c26631dfbb: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
