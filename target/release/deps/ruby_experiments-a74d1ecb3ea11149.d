/root/repo/target/release/deps/ruby_experiments-a74d1ecb3ea11149.d: crates/experiments/src/lib.rs crates/experiments/src/common.rs crates/experiments/src/ext_bypass.rs crates/experiments/src/ext_hierarchy.rs crates/experiments/src/ext_search.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/table.rs crates/experiments/src/table1.rs

/root/repo/target/release/deps/libruby_experiments-a74d1ecb3ea11149.rlib: crates/experiments/src/lib.rs crates/experiments/src/common.rs crates/experiments/src/ext_bypass.rs crates/experiments/src/ext_hierarchy.rs crates/experiments/src/ext_search.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/table.rs crates/experiments/src/table1.rs

/root/repo/target/release/deps/libruby_experiments-a74d1ecb3ea11149.rmeta: crates/experiments/src/lib.rs crates/experiments/src/common.rs crates/experiments/src/ext_bypass.rs crates/experiments/src/ext_hierarchy.rs crates/experiments/src/ext_search.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/table.rs crates/experiments/src/table1.rs

crates/experiments/src/lib.rs:
crates/experiments/src/common.rs:
crates/experiments/src/ext_bypass.rs:
crates/experiments/src/ext_hierarchy.rs:
crates/experiments/src/ext_search.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig14.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/table.rs:
crates/experiments/src/table1.rs:
