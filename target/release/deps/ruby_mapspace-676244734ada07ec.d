/root/repo/target/release/deps/ruby_mapspace-676244734ada07ec.d: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

/root/repo/target/release/deps/libruby_mapspace-676244734ada07ec.rlib: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

/root/repo/target/release/deps/libruby_mapspace-676244734ada07ec.rmeta: crates/mapspace/src/lib.rs crates/mapspace/src/constraints.rs crates/mapspace/src/enumerate.rs crates/mapspace/src/factor.rs crates/mapspace/src/heuristic.rs crates/mapspace/src/padding.rs crates/mapspace/src/space.rs

crates/mapspace/src/lib.rs:
crates/mapspace/src/constraints.rs:
crates/mapspace/src/enumerate.rs:
crates/mapspace/src/factor.rs:
crates/mapspace/src/heuristic.rs:
crates/mapspace/src/padding.rs:
crates/mapspace/src/space.rs:
