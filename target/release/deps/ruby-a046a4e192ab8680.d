/root/repo/target/release/deps/ruby-a046a4e192ab8680.d: crates/cli/src/bin/ruby.rs

/root/repo/target/release/deps/ruby-a046a4e192ab8680: crates/cli/src/bin/ruby.rs

crates/cli/src/bin/ruby.rs:
