/root/repo/target/release/deps/fig14-6650da6372a475b3.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-6650da6372a475b3: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
