/root/repo/target/release/deps/fig9-e3c82a1cd1e91d1f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-e3c82a1cd1e91d1f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
