/root/repo/target/release/deps/fig10-65a4498afc696c48.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-65a4498afc696c48: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
