/root/repo/target/release/deps/ruby_bench-d54e9b6f2ba08032.d: crates/bench/src/lib.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libruby_bench-d54e9b6f2ba08032.rlib: crates/bench/src/lib.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libruby_bench-d54e9b6f2ba08032.rmeta: crates/bench/src/lib.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/throughput.rs:
