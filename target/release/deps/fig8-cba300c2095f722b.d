/root/repo/target/release/deps/fig8-cba300c2095f722b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-cba300c2095f722b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
