/root/repo/target/release/deps/fig9-83d648012c814598.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-83d648012c814598: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
