/root/repo/target/release/deps/ruby_patterngen-9fb24ebd0c976be4.d: crates/patterngen/src/lib.rs

/root/repo/target/release/deps/libruby_patterngen-9fb24ebd0c976be4.rlib: crates/patterngen/src/lib.rs

/root/repo/target/release/deps/libruby_patterngen-9fb24ebd0c976be4.rmeta: crates/patterngen/src/lib.rs

crates/patterngen/src/lib.rs:
