/root/repo/target/release/deps/fig12-8c45da53e62a8475.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-8c45da53e62a8475: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
