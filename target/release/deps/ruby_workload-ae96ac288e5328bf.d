/root/repo/target/release/deps/ruby_workload-ae96ac288e5328bf.d: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

/root/repo/target/release/deps/libruby_workload-ae96ac288e5328bf.rlib: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

/root/repo/target/release/deps/libruby_workload-ae96ac288e5328bf.rmeta: crates/workload/src/lib.rs crates/workload/src/dims.rs crates/workload/src/shape.rs crates/workload/src/suites.rs crates/workload/src/tensor.rs

crates/workload/src/lib.rs:
crates/workload/src/dims.rs:
crates/workload/src/shape.rs:
crates/workload/src/suites.rs:
crates/workload/src/tensor.rs:
