/root/repo/target/release/deps/ruby_bench-57f7d225c6c4bd29.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libruby_bench-57f7d225c6c4bd29.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libruby_bench-57f7d225c6c4bd29.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
