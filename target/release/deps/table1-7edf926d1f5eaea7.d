/root/repo/target/release/deps/table1-7edf926d1f5eaea7.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-7edf926d1f5eaea7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
