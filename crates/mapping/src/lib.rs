//! Mapping intermediate representation for the Ruby reproduction.
//!
//! A [`Mapping`] describes how one tensor operation is laid out, in space
//! and time, over an [`ruby_arch::Architecture`]. Per problem dimension it
//! stores a *tile-size chain*: a non-decreasing sequence of cumulative
//! tile sizes, one entry per loop *slot*. Each storage level contributes
//! three slots — a temporal block plus the spatial-X / spatial-Y fanout
//! below the level — so an `L`-level hierarchy has `3·L` slots.
//!
//! The loop count of a slot is `ceil(outer_tile / inner_tile)`: when the
//! inner size does not divide the outer size the final iteration handles a
//! smaller *residual* tile. This is exactly the paper's imperfect
//! factorization (`L_n = L_{n+1}·P_n + R_n − 1`, eq. 5); chains whose
//! entries divide each other recover Timeloop's perfect-factorization
//! mappings (eq. 1).
//!
//! The crate also provides the exact *tile profiles* — multisets of tile
//! sizes at each slot boundary — that the cost model uses to account for
//! remainders without approximation, and the lockstep sequential-step
//! count that yields cycle counts under partially-filled spatial
//! iterations.

pub mod display;
pub mod profile;
pub mod slots;

use ruby_workload::{Dim, DimMap};

pub use profile::{ProfileScratch, TileProfile};
pub use slots::{SlotId, SlotKind, SlotLayout};

/// Errors produced when constructing or validating a [`Mapping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A tile chain has the wrong number of entries for the slot layout.
    WrongChainLength {
        dim: Dim,
        expected: usize,
        actual: usize,
    },
    /// A tile chain entry decreases going outward or the innermost entry
    /// is not 1.
    NonMonotoneChain { dim: Dim },
    /// The outermost chain entry does not equal the dimension bound.
    WrongOuterTile {
        dim: Dim,
        expected: u64,
        actual: u64,
    },
    /// A permutation is not a permutation of all seven dims.
    BadPermutation { level: usize },
    /// Wrong number of per-level permutations.
    WrongPermutationCount { expected: usize, actual: usize },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::WrongChainLength {
                dim,
                expected,
                actual,
            } => write!(
                f,
                "tile chain for {dim} has {actual} entries, expected {expected}"
            ),
            MappingError::NonMonotoneChain { dim } => {
                write!(
                    f,
                    "tile chain for {dim} must start at 1 and be non-decreasing"
                )
            }
            MappingError::WrongOuterTile {
                dim,
                expected,
                actual,
            } => write!(
                f,
                "outermost tile for {dim} is {actual}, expected the dimension bound {expected}"
            ),
            MappingError::BadPermutation { level } => {
                write!(
                    f,
                    "permutation at level {level} is not a permutation of all dims"
                )
            }
            MappingError::WrongPermutationCount { expected, actual } => {
                write!(
                    f,
                    "got {actual} permutations, expected {expected} (one per level)"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// The canonical innermost-first permutation used when order does not
/// matter.
pub const DEFAULT_PERM: [Dim; 7] = [Dim::S, Dim::R, Dim::Q, Dim::P, Dim::C, Dim::M, Dim::N];

/// A complete mapping: tile chains per dimension plus a per-level loop
/// permutation for the temporal blocks.
///
/// # Examples
///
/// Build the paper's Fig. 5 highlighted mapping — 100 elements over 6 PEs,
/// 17 GLB iterations (16 full + 1 residual using 4 PEs):
///
/// ```
/// use ruby_mapping::{Mapping, SlotKind};
/// use ruby_workload::Dim;
///
/// // Two levels (DRAM, PE-scratch): chain entries innermost-first, one
/// // per slot boundary. M: spatial 6 below DRAM, residual-carrying
/// // temporal count ceil(100/6) = 17 at DRAM.
/// let mut builder = Mapping::builder(2);
/// builder.set_tile(Dim::M, 1, SlotKind::SpatialX, 6); // DRAM fanout slot
/// let m = builder.build_for_bounds(&[1, 100, 1, 1, 1, 1, 1].into()).unwrap();
/// let dram_t = m.layout().temporal_slot(0);
/// assert_eq!(m.loop_count(Dim::M, dram_t), 17);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    layout: SlotLayout,
    /// Per dim: cumulative tile sizes, `len == num_slots + 1`,
    /// `chain[0] == 1` (a single element), `chain[num_slots] == bound`.
    tiling: DimMap<Vec<u64>>,
    /// Per storage level (outermost first): dim order of the temporal
    /// block, innermost dim first.
    perms: Vec<[Dim; 7]>,
}

serde::impl_serde_struct!(Mapping {
    layout,
    tiling,
    perms
});

impl Mapping {
    /// Validates and builds a mapping from explicit tile chains.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if chain lengths, monotonicity, outer
    /// tiles, or permutations are inconsistent with the layout.
    pub fn from_tile_chains(
        num_levels: usize,
        tiling: DimMap<Vec<u64>>,
        perms: Vec<[Dim; 7]>,
    ) -> Result<Mapping, MappingError> {
        let layout = SlotLayout::new(num_levels);
        let expected = layout.num_slots() + 1;
        for (dim, chain) in tiling.iter() {
            if chain.len() != expected {
                return Err(MappingError::WrongChainLength {
                    dim,
                    expected,
                    actual: chain.len(),
                });
            }
            if chain[0] != 1 || chain.windows(2).any(|w| w[0] > w[1]) {
                return Err(MappingError::NonMonotoneChain { dim });
            }
        }
        if perms.len() != num_levels {
            return Err(MappingError::WrongPermutationCount {
                expected: num_levels,
                actual: perms.len(),
            });
        }
        for (level, perm) in perms.iter().enumerate() {
            let mut seen = [false; 7];
            for d in perm {
                seen[d.index()] = true;
            }
            if seen.iter().any(|s| !s) {
                return Err(MappingError::BadPermutation { level });
            }
        }
        Ok(Mapping {
            layout,
            tiling,
            perms,
        })
    }

    /// Starts a [`MappingBuilder`] for an architecture with `num_levels`
    /// storage levels. All factors default to 1 and permutations to
    /// [`DEFAULT_PERM`].
    pub fn builder(num_levels: usize) -> MappingBuilder {
        MappingBuilder::new(num_levels)
    }

    /// The slot layout shared by all dimensions.
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// The cumulative tile size of `dim` at slot boundary `b`
    /// (0 = a single element, `num_slots` = the full bound).
    #[inline]
    pub fn tile_at_boundary(&self, dim: Dim, b: usize) -> u64 {
        self.tiling[dim][b]
    }

    /// The nominal loop count of `slot` along `dim`:
    /// `ceil(outer_tile / inner_tile)`.
    #[inline]
    pub fn loop_count(&self, dim: Dim, slot: SlotId) -> u64 {
        let chain = &self.tiling[dim];
        let s = slot.index();
        chain[s + 1].div_ceil(chain[s])
    }

    /// Whether `slot` carries a remainder along `dim` (the inner tile does
    /// not divide the outer tile).
    #[inline]
    pub fn has_remainder(&self, dim: Dim, slot: SlotId) -> bool {
        let chain = &self.tiling[dim];
        let s = slot.index();
        !chain[s + 1].is_multiple_of(chain[s])
    }

    /// Whether any slot of any dimension carries a remainder — i.e.
    /// whether this mapping lies outside the perfect-factorization space.
    pub fn is_imperfect(&self) -> bool {
        Dim::ALL
            .iter()
            .any(|&d| (0..self.layout.num_slots()).any(|s| self.has_remainder(d, SlotId::new(s))))
    }

    /// The per-dimension extents of the tile *stored at* storage level
    /// `level` (0 = outermost). This covers the level's own temporal block
    /// and everything inside it.
    pub fn tile_at_level(&self, level: usize) -> DimMap<u64> {
        let b = self.layout.storage_boundary(level);
        DimMap::from_fn(|d| self.tiling[d][b])
    }

    /// The per-dimension nominal loop counts of the spatial slots below
    /// `level`: `(along X, along Y)` products.
    pub fn spatial_extent(&self, level: usize) -> (u64, u64) {
        let sx = self.layout.spatial_x_slot(level);
        let sy = self.layout.spatial_y_slot(level);
        let x = Dim::ALL
            .iter()
            .fold(1u64, |acc, &d| acc.saturating_mul(self.loop_count(d, sx)));
        let y = Dim::ALL
            .iter()
            .fold(1u64, |acc, &d| acc.saturating_mul(self.loop_count(d, sy)));
        (x, y)
    }

    /// The temporal-block permutation at `level`, innermost dim first.
    pub fn permutation(&self, level: usize) -> &[Dim; 7] {
        &self.perms[level]
    }

    /// The exact multiset of tile sizes of `dim` at every slot boundary
    /// (see [`TileProfile`]). Index `b` of the result corresponds to
    /// boundary `b`; the outermost profile is `{bound: 1}`.
    pub fn profiles(&self, dim: Dim) -> Vec<TileProfile> {
        profile::boundary_profiles(&self.tiling[dim])
    }

    /// `num_tiles` of every [`Self::profiles`] entry for `dim`, written
    /// into `out` (`out[b]` = tile count at boundary `b`) without
    /// materializing the multisets — the cost model's hot path (see
    /// [`profile::boundary_tile_counts_into`]).
    pub fn boundary_tile_counts_into(
        &self,
        dim: Dim,
        scratch: &mut ProfileScratch,
        out: &mut Vec<u64>,
    ) {
        profile::boundary_tile_counts_into(&self.tiling[dim], scratch, out);
    }

    /// The number of *sequential* steps contributed by `dim`: temporal
    /// slots run tiles one after another (residual tiles take exactly
    /// their residual count of inner steps), spatial slots run chunks in
    /// lockstep (the largest chunk paces the group). The product over all
    /// dims is the compute cycle count.
    pub fn sequential_steps(&self, dim: Dim) -> u64 {
        profile::sequential_steps(&self.tiling[dim], &self.layout)
    }

    /// Total compute cycles: the product of [`Mapping::sequential_steps`]
    /// over all dimensions (saturating). One scratch serves all seven
    /// walks, so the per-candidate latency path stays allocation-light.
    pub fn compute_cycles(&self) -> u64 {
        let mut scratch = ProfileScratch::new();
        Dim::ALL.iter().fold(1u64, |acc, &d| {
            acc.saturating_mul(profile::sequential_steps_with(
                &self.tiling[d],
                &self.layout,
                &mut scratch,
            ))
        })
    }

    /// The raw tile chain of `dim` (testing/diagnostics).
    pub fn tile_chain(&self, dim: Dim) -> &[u64] {
        &self.tiling[dim]
    }

    /// Overwrites the tile chain of `dim` in place, reusing its
    /// allocation. The enumeration engine's hot path: a
    /// `SubspaceIterator` swaps per-dimension chains in and out of one
    /// reused mapping without rebuilding it.
    ///
    /// Chain invariants (`len == num_slots + 1`, `chain[0] == 1`,
    /// non-decreasing) are checked with debug assertions only; callers
    /// must supply chains produced by validated machinery.
    pub fn set_tile_chain(&mut self, dim: Dim, chain: &[u64]) {
        debug_assert_eq!(chain.len(), self.layout.num_slots() + 1);
        debug_assert_eq!(chain.first(), Some(&1));
        debug_assert!(chain.windows(2).all(|w| w[0] <= w[1]));
        let dst = &mut self.tiling[dim];
        dst.clear();
        dst.extend_from_slice(chain);
    }

    /// Replaces the temporal-block permutation at `level` (innermost dim
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of all seven dims or `level`
    /// is out of range.
    pub fn set_permutation(&mut self, level: usize, perm: [Dim; 7]) {
        let mut seen = [false; 7];
        for d in perm {
            seen[d.index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "permutation must cover all seven dims"
        );
        self.perms[level] = perm;
    }

    /// A 64-bit canonical key for memoization: two mappings with the same
    /// key are (up to negligible hash-collision probability) the same
    /// point of the cost model.
    ///
    /// The key mixes every tile-chain entry plus, per level, the
    /// permutation restricted to dims whose temporal loop count at that
    /// level exceeds 1 — the only part of a permutation the cost model
    /// observes (trivial loops never affect reuse analysis), so mappings
    /// that differ only in the ordering of trivial loops share a key.
    pub fn canonical_key(&self) -> u64 {
        const CHAIN_SEP: u64 = 0xD6E8_FEB8_6659_FD93;
        const LEVEL_SEP: u64 = 0xA5A5_A5A5_5A5A_5A5A;
        let mut h = 0x243F_6A88_85A3_08D3u64;
        for d in Dim::ALL {
            for &t in &self.tiling[d] {
                h = mix(h, t);
            }
            h = mix(h, CHAIN_SEP);
        }
        for (level, perm) in self.perms.iter().enumerate() {
            let slot = self.layout.temporal_slot(level);
            for &d in perm {
                if self.loop_count(d, slot) > 1 {
                    h = mix(h, d.index() as u64 + 1);
                }
            }
            h = mix(h, LEVEL_SEP);
        }
        h
    }
}

/// SplitMix64-style mixing step used by [`Mapping::canonical_key`].
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Incremental builder for [`Mapping`] (see [`Mapping::builder`]).
///
/// Factors are set per `(dim, level, slot-kind)`; unset factors default
/// to 1. [`MappingBuilder::build_for_bounds`] then closes each chain by
/// assigning the outermost temporal slot whatever loop count covers the
/// dimension bound — which is where remainders naturally appear.
#[derive(Debug, Clone)]
pub struct MappingBuilder {
    layout: SlotLayout,
    /// Per dim, per slot (inner-first): the factor at that slot.
    factors: DimMap<Vec<u64>>,
    perms: Vec<[Dim; 7]>,
}

impl MappingBuilder {
    fn new(num_levels: usize) -> Self {
        let layout = SlotLayout::new(num_levels);
        let factors = DimMap::from_fn(|_| vec![1u64; layout.num_slots()]);
        MappingBuilder {
            layout,
            factors,
            perms: vec![DEFAULT_PERM; num_levels],
        }
    }

    /// Resets every factor to 1 and every permutation to
    /// [`DEFAULT_PERM`], keeping the allocations. Lets one builder be
    /// reused across many samples in a hot loop.
    pub fn reset(&mut self) -> &mut Self {
        for (_, factors) in self.factors.iter_mut() {
            factors.fill(1);
        }
        self.perms.fill(DEFAULT_PERM);
        self
    }

    /// Sets the factor of `dim` at the given level and slot kind.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or `level` is out of range.
    pub fn set_tile(&mut self, dim: Dim, level: usize, kind: SlotKind, factor: u64) -> &mut Self {
        assert!(factor > 0, "factors must be positive");
        let slot = self.layout.slot(level, kind);
        self.factors[dim][slot.index()] = factor;
        self
    }

    /// Sets the temporal permutation of `level` (innermost dim first).
    pub fn set_permutation(&mut self, level: usize, perm: [Dim; 7]) -> &mut Self {
        self.perms[level] = perm;
        self
    }

    /// Builds the mapping for the given dimension bounds. Chains are the
    /// cumulative products of the factors, clamped to the bound; if the
    /// factors do not reach the bound, the *outermost temporal slot* is
    /// stretched to cover it (potentially imperfectly).
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`] from validation.
    pub fn build_for_bounds(&self, bounds: &DimMap<u64>) -> Result<Mapping, MappingError> {
        let num_slots = self.layout.num_slots();
        let tiling = DimMap::from_fn(|d| {
            let bound = bounds[d];
            let mut chain = Vec::with_capacity(num_slots + 1);
            chain.push(1u64);
            let mut cum = 1u64;
            for s in 0..num_slots {
                cum = cum.saturating_mul(self.factors[d][s]).min(bound);
                chain.push(cum);
            }
            // Stretch the outermost boundary to the bound.
            chain[num_slots] = bound;
            // Outer temporal slot of level 0 is the last slot; chain stays
            // monotone because every entry is clamped to the bound.
            chain
        });
        Mapping::from_tile_chains(self.layout.num_levels(), tiling, self.perms.clone())
    }

    /// Builds into an existing mapping, reusing its chain and permutation
    /// allocations. Produces exactly the same mapping as
    /// [`MappingBuilder::build_for_bounds`]; `out`'s previous contents
    /// (including a different hierarchy depth) are fully overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::BadPermutation`] if a permutation set via
    /// [`MappingBuilder::set_permutation`] does not cover all seven dims.
    /// (Builder-produced tile chains are always valid: factors are
    /// positive and chains are clamped monotone.)
    pub fn build_into_for_bounds(
        &self,
        bounds: &DimMap<u64>,
        out: &mut Mapping,
    ) -> Result<(), MappingError> {
        for (level, perm) in self.perms.iter().enumerate() {
            let mut seen = [false; 7];
            for d in perm {
                seen[d.index()] = true;
            }
            if seen.iter().any(|s| !s) {
                return Err(MappingError::BadPermutation { level });
            }
        }
        let num_slots = self.layout.num_slots();
        out.layout = self.layout;
        out.perms.clear();
        out.perms.extend_from_slice(&self.perms);
        for (d, chain) in out.tiling.iter_mut() {
            let bound = bounds[d];
            chain.clear();
            chain.reserve(num_slots + 1);
            chain.push(1u64);
            let mut cum = 1u64;
            for s in 0..num_slots {
                cum = cum.saturating_mul(self.factors[d][s]).min(bound);
                chain.push(cum);
            }
            // Stretch the outermost boundary to the bound.
            chain[num_slots] = bound;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds_m(d: u64) -> DimMap<u64> {
        let mut b = DimMap::splat(1u64);
        b[Dim::M] = d;
        b
    }

    #[test]
    fn builder_defaults_put_everything_outer_temporal() {
        let m = Mapping::builder(2)
            .build_for_bounds(&bounds_m(100))
            .unwrap();
        let dram_t = m.layout().temporal_slot(0);
        assert_eq!(m.loop_count(Dim::M, dram_t), 100);
        assert_eq!(m.compute_cycles(), 100);
        assert!(!m.is_imperfect());
    }

    #[test]
    fn fig5_mapping_six_pes_seventeen_iterations() {
        // 100 elements over 6 PEs: ceil(100/6) = 17 DRAM iterations, the
        // final one using 4 PEs. Matches the paper's Fig. 5 walkthrough.
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        let dram_t = m.layout().temporal_slot(0);
        assert_eq!(m.loop_count(Dim::M, dram_t), 17);
        assert!(m.is_imperfect());
        assert_eq!(m.compute_cycles(), 17);
        // Spatial extent below DRAM (level 0) is 6 wide.
        assert_eq!(m.spatial_extent(0), (6, 1));
    }

    #[test]
    fn perfect_chain_counts_match_factors() {
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 5);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 4);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        // Chain: 1 -> (PE T) 4 -> (DRAM spatial) 20 -> (DRAM T) 100.
        assert!(!m.is_imperfect());
        let pe_t = m.layout().temporal_slot(1);
        let dram_sx = m.layout().spatial_x_slot(0);
        let dram_t = m.layout().temporal_slot(0);
        assert_eq!(m.loop_count(Dim::M, pe_t), 4);
        assert_eq!(m.loop_count(Dim::M, dram_sx), 5);
        assert_eq!(m.loop_count(Dim::M, dram_t), 5);
        assert_eq!(m.compute_cycles(), 20);
        assert_eq!(m.tile_at_level(1)[Dim::M], 4);
        assert_eq!(m.tile_at_level(0)[Dim::M], 100);
    }

    #[test]
    fn residual_inner_loops_counted_exactly() {
        // Chain 1 -> 7 -> 100, both temporal: 14 full tiles of 7 plus one
        // residual tile of 2 gives 14*7 + 2 = 100 steps, not 15*7.
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 7);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        assert_eq!(m.sequential_steps(Dim::M), 100);
    }

    #[test]
    fn lockstep_spatial_residual_tile() {
        // Chain 1 -> 6(spatial) -> 100: 17 lockstep steps.
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        assert_eq!(m.sequential_steps(Dim::M), 17);
    }

    #[test]
    fn chain_validation_rejects_bad_chains() {
        let layout_len = SlotLayout::new(2).num_slots() + 1;
        let mut tiling = DimMap::from_fn(|_| vec![1u64; layout_len]);
        // Outer tile of M must equal the bound; leave it at 1 but claim
        // a bound of 100 by building a non-monotone chain instead.
        tiling[Dim::M] = vec![1, 5, 3, 100, 100, 100, 100];
        let err = Mapping::from_tile_chains(2, tiling, vec![DEFAULT_PERM; 2]).unwrap_err();
        assert_eq!(err, MappingError::NonMonotoneChain { dim: Dim::M });
    }

    #[test]
    fn permutation_validation() {
        let m = Mapping::builder(2).build_for_bounds(&bounds_m(4)).unwrap();
        assert_eq!(m.permutation(0), &DEFAULT_PERM);
        let bad_perm = [Dim::M; 7];
        let err = Mapping::from_tile_chains(2, m.tiling.clone(), vec![DEFAULT_PERM, bad_perm])
            .unwrap_err();
        assert_eq!(err, MappingError::BadPermutation { level: 1 });
    }

    #[test]
    fn overshooting_factors_clamp_to_bound() {
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 64);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 64);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        // 64 then clamp(64*64 -> 100): spatial count ceil(100/64) = 2.
        let sx = m.layout().spatial_x_slot(0);
        assert_eq!(m.loop_count(Dim::M, sx), 2);
        assert_eq!(m.loop_count(Dim::M, m.layout().temporal_slot(0)), 1);
    }
}
