//! Loop-slot layout: how storage levels map onto loop positions.
//!
//! Every storage level contributes three slots, outermost-to-innermost
//! within the level: a **temporal** block, then **spatial-X**, then
//! **spatial-Y** (the fanout below the level). Slots are numbered
//! *innermost-first* globally, matching tile-chain indexing: slot `s`
//! sits between chain boundaries `s` (inner) and `s + 1` (outer).

/// The kind of a loop slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// A temporal loop block at a storage level.
    Temporal,
    /// Spatial distribution along the X axis of the fanout below a level.
    SpatialX,
    /// Spatial distribution along the Y axis of the fanout below a level.
    SpatialY,
}

impl SlotKind {
    /// Whether the slot is spatial (X or Y).
    pub const fn is_spatial(self) -> bool {
        matches!(self, SlotKind::SpatialX | SlotKind::SpatialY)
    }
}

/// An index into the global innermost-first slot ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(usize);

serde::impl_serde_unit_enum!(SlotKind {
    Temporal,
    SpatialX,
    SpatialY
});
serde::impl_serde_newtype!(SlotId);

impl SlotId {
    /// Wraps a raw innermost-first slot index.
    pub const fn new(index: usize) -> Self {
        SlotId(index)
    }

    /// The raw innermost-first index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// The slot layout for an architecture with a given number of storage
/// levels.
///
/// # Examples
///
/// ```
/// use ruby_mapping::{SlotKind, SlotLayout};
///
/// let layout = SlotLayout::new(3); // DRAM, GLB, PE
/// assert_eq!(layout.num_slots(), 9);
/// // The innermost slot is the innermost level's spatial-Y.
/// let s0 = layout.kind_of(ruby_mapping::SlotId::new(0));
/// assert_eq!(s0, SlotKind::SpatialY);
/// assert_eq!(layout.level_of(ruby_mapping::SlotId::new(0)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotLayout {
    num_levels: usize,
}

serde::impl_serde_struct!(SlotLayout { num_levels });

impl SlotLayout {
    /// Creates the layout for `num_levels` storage levels.
    ///
    /// # Panics
    ///
    /// Panics if `num_levels` is zero.
    pub fn new(num_levels: usize) -> Self {
        assert!(num_levels > 0, "need at least one storage level");
        SlotLayout { num_levels }
    }

    /// The number of storage levels.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Total slots: three per level.
    pub fn num_slots(&self) -> usize {
        3 * self.num_levels
    }

    /// The slot of `kind` at storage `level` (0 = outermost).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn slot(&self, level: usize, kind: SlotKind) -> SlotId {
        assert!(level < self.num_levels, "level {level} out of range");
        let base = 3 * (self.num_levels - 1 - level);
        let offset = match kind {
            SlotKind::SpatialY => 0,
            SlotKind::SpatialX => 1,
            SlotKind::Temporal => 2,
        };
        SlotId(base + offset)
    }

    /// Convenience: the temporal slot of `level`.
    pub fn temporal_slot(&self, level: usize) -> SlotId {
        self.slot(level, SlotKind::Temporal)
    }

    /// Convenience: the spatial-X slot of `level`.
    pub fn spatial_x_slot(&self, level: usize) -> SlotId {
        self.slot(level, SlotKind::SpatialX)
    }

    /// Convenience: the spatial-Y slot of `level`.
    pub fn spatial_y_slot(&self, level: usize) -> SlotId {
        self.slot(level, SlotKind::SpatialY)
    }

    /// The storage level a slot belongs to.
    pub fn level_of(&self, slot: SlotId) -> usize {
        self.num_levels - 1 - slot.index() / 3
    }

    /// The kind of a slot.
    pub fn kind_of(&self, slot: SlotId) -> SlotKind {
        match slot.index() % 3 {
            0 => SlotKind::SpatialY,
            1 => SlotKind::SpatialX,
            _ => SlotKind::Temporal,
        }
    }

    /// The chain-boundary index of the tile *stored at* `level`: the tile
    /// covering the level's temporal block and everything inside.
    pub fn storage_boundary(&self, level: usize) -> usize {
        assert!(level < self.num_levels, "level {level} out of range");
        3 * (self.num_levels - level)
    }

    /// Iterates all slots innermost-first.
    pub fn iter(&self) -> impl Iterator<Item = SlotId> {
        (0..self.num_slots()).map(SlotId)
    }

    /// Iterates the slots strictly *outside* chain boundary `b`,
    /// innermost-first (i.e. slots `b, b+1, …`).
    pub fn slots_outside(&self, b: usize) -> impl Iterator<Item = SlotId> {
        (b..self.num_slots()).map(SlotId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_layout_geometry() {
        let l = SlotLayout::new(3);
        assert_eq!(l.num_slots(), 9);
        // Innermost level (2): SY=0, SX=1, T=2.
        assert_eq!(l.slot(2, SlotKind::SpatialY).index(), 0);
        assert_eq!(l.slot(2, SlotKind::SpatialX).index(), 1);
        assert_eq!(l.slot(2, SlotKind::Temporal).index(), 2);
        // Outermost level (0): SY=6, SX=7, T=8.
        assert_eq!(l.slot(0, SlotKind::Temporal).index(), 8);
        // Round trips.
        for s in l.iter() {
            let lev = l.level_of(s);
            let kind = l.kind_of(s);
            assert_eq!(l.slot(lev, kind), s);
        }
    }

    #[test]
    fn storage_boundaries() {
        let l = SlotLayout::new(3);
        // Innermost level's tile includes its own three slots.
        assert_eq!(l.storage_boundary(2), 3);
        assert_eq!(l.storage_boundary(1), 6);
        assert_eq!(l.storage_boundary(0), 9);
    }

    #[test]
    fn slots_outside_boundary() {
        let l = SlotLayout::new(2);
        let outside: Vec<usize> = l.slots_outside(3).map(SlotId::index).collect();
        assert_eq!(outside, vec![3, 4, 5]);
        // Outside the outermost boundary: nothing.
        assert_eq!(l.slots_outside(6).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_panics() {
        let l = SlotLayout::new(2);
        let _ = l.slot(2, SlotKind::Temporal);
    }
}
