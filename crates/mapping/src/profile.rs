//! Exact tile-size multisets under imperfect factorization.
//!
//! When an inner tile size does not divide its parent, the parent splits
//! into full tiles plus one residual — and residuals recursively split
//! inward, so the set of tile sizes circulating at a boundary is a small
//! multiset rather than a single value. [`boundary_profiles`] computes
//! those multisets exactly for one dimension's tile chain; the cost model
//! uses them to count tile deliveries and sliding-window halos without
//! remainder approximation.

use std::collections::BTreeMap;

use crate::slots::{SlotId, SlotLayout};

/// The multiset of tile sizes at one chain boundary: `(size, count)`
/// pairs sorted by size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileProfile {
    entries: Vec<(u64, u64)>,
}

impl TileProfile {
    /// A profile with a single tile of the given size.
    pub fn single(size: u64) -> Self {
        TileProfile {
            entries: vec![(size, 1)],
        }
    }

    fn from_map(map: BTreeMap<u64, u64>) -> Self {
        TileProfile {
            entries: map.into_iter().collect(),
        }
    }

    /// The `(size, count)` entries, smallest size first.
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Total elements covered: `Σ size·count`.
    pub fn total_elements(&self) -> u64 {
        self.entries
            .iter()
            .fold(0u64, |acc, &(s, c)| acc.saturating_add(s.saturating_mul(c)))
    }

    /// The largest tile size present (0 for an empty profile).
    pub fn max_size(&self) -> u64 {
        self.entries.last().map_or(0, |&(s, _)| s)
    }

    /// Splits every tile into children of granularity `g` (full tiles of
    /// size `g` plus at most one residual per tile).
    ///
    /// # Panics
    ///
    /// Panics if `g` is zero.
    pub fn split(&self, g: u64) -> TileProfile {
        assert!(g > 0, "granularity must be positive");
        let mut out: BTreeMap<u64, u64> = BTreeMap::new();
        for &(size, count) in &self.entries {
            let full = size / g;
            let rem = size % g;
            if full > 0 {
                *out.entry(g).or_default() += full * count;
            }
            if rem > 0 {
                *out.entry(rem).or_default() += count;
            }
        }
        TileProfile::from_map(out)
    }

    /// Clamps every tile to at most `g` elements without changing counts —
    /// the lockstep view of a spatial split, where each dispatch is one
    /// parallel step whose depth is paced by the largest chunk.
    pub fn clamp(&self, g: u64) -> TileProfile {
        let mut out: BTreeMap<u64, u64> = BTreeMap::new();
        for &(size, count) in &self.entries {
            *out.entry(size.min(g)).or_default() += count;
        }
        TileProfile::from_map(out)
    }
}

/// The exact tile profiles at every boundary of a tile chain
/// (`chain[0] = 1 … chain[S] = bound`). Index `b` of the result is the
/// profile at boundary `b`; both spatial and temporal slots partition
/// data, so this is kind-agnostic.
pub fn boundary_profiles(chain: &[u64]) -> Vec<TileProfile> {
    let s = chain.len() - 1;
    let mut profiles = vec![TileProfile::single(0); s + 1];
    profiles[s] = TileProfile::single(chain[s]);
    for b in (0..s).rev() {
        profiles[b] = profiles[b + 1].split(chain[b]);
    }
    profiles
}

/// The number of sequential steps contributed by one dimension: walk the
/// chain outermost-in, splitting at temporal slots (each tile runs its
/// children back-to-back, residuals run exactly their residual count) and
/// clamping at spatial slots (chunks run in lockstep, paced by the
/// largest). The final count of unit tiles is the step count.
pub fn sequential_steps(chain: &[u64], layout: &SlotLayout) -> u64 {
    sequential_steps_with(chain, layout, &mut ProfileScratch::new())
}

/// Reusable multiset scratch for allocation-free profile walks.
///
/// A boundary's tile multiset has at most one distinct size per
/// remaining chain link (each split adds the granularity plus per-size
/// residuals, each clamp only merges), so the working set stays tiny —
/// a sorted `(size, count)` vector beats the `BTreeMap` the one-shot
/// [`TileProfile`] API uses, and reusing it across dimensions and
/// candidates removes the cost model's dominant allocation churn. The
/// arithmetic is exactly [`TileProfile::split`] / [`TileProfile::clamp`]
/// on the same sorted order, so every count is bit-identical to the
/// allocating path (the unit tests pin this).
#[derive(Debug, Default)]
pub struct ProfileScratch {
    /// Current multiset: `(size, count)` sorted by size, like
    /// [`TileProfile::entries`].
    cur: Vec<(u64, u64)>,
    /// Double buffer for split passes.
    next: Vec<(u64, u64)>,
}

impl ProfileScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        ProfileScratch::default()
    }

    /// Resets to a single tile of `size`.
    fn reset(&mut self, size: u64) {
        self.cur.clear();
        self.cur.push((size, 1));
    }

    /// Total number of tiles, as [`TileProfile::num_tiles`].
    fn num_tiles(&self) -> u64 {
        self.cur.iter().map(|&(_, c)| c).sum()
    }

    /// In-place [`TileProfile::split`]: every tile becomes `size / g`
    /// full children of size `g` plus at most one residual.
    fn split(&mut self, g: u64) {
        self.next.clear();
        for i in 0..self.cur.len() {
            let (size, count) = self.cur[i];
            let full = size / g;
            let rem = size % g;
            if full > 0 {
                Self::bump(&mut self.next, g, full * count);
            }
            if rem > 0 {
                Self::bump(&mut self.next, rem, count);
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// In-place [`TileProfile::clamp`]: every size drops to at most `g`
    /// without changing counts. `min` is monotonic, so the sorted order
    /// survives and only adjacent entries can merge.
    fn clamp(&mut self, g: u64) {
        let mut write = 0usize;
        for i in 0..self.cur.len() {
            let (size, count) = self.cur[i];
            let clamped = size.min(g);
            if write > 0 && self.cur[write - 1].0 == clamped {
                self.cur[write - 1].1 += count;
            } else {
                self.cur[write] = (clamped, count);
                write += 1;
            }
        }
        self.cur.truncate(write);
    }

    /// Sorted-insert `count` tiles of `size` (the multiset stays tiny,
    /// so the linear probe beats any map).
    fn bump(entries: &mut Vec<(u64, u64)>, size: u64, count: u64) {
        match entries.binary_search_by_key(&size, |&(s, _)| s) {
            Ok(i) => entries[i].1 += count,
            Err(i) => entries.insert(i, (size, count)),
        }
    }
}

/// [`sequential_steps`] against a caller-owned [`ProfileScratch`], for
/// hot loops that walk many chains (the cost model's latency path).
pub fn sequential_steps_with(
    chain: &[u64],
    layout: &SlotLayout,
    scratch: &mut ProfileScratch,
) -> u64 {
    let s = chain.len() - 1;
    debug_assert_eq!(s, layout.num_slots());
    scratch.reset(chain[s]);
    for slot in (0..s).rev() {
        let g = chain[slot];
        if layout.kind_of(SlotId::new(slot)).is_spatial() {
            scratch.clamp(g);
        } else {
            scratch.split(g);
        }
    }
    // All tiles are now unit-sized; the count is the step total.
    scratch.num_tiles()
}

/// `num_tiles` of every [`boundary_profiles`] entry — `out[b]` is the
/// tile count at boundary `b` — without materializing the per-boundary
/// multisets. This is all the access counter needs, and it is the cost
/// model's hottest integer kernel.
pub fn boundary_tile_counts_into(chain: &[u64], scratch: &mut ProfileScratch, out: &mut Vec<u64>) {
    let s = chain.len() - 1;
    out.clear();
    out.resize(s + 1, 0);
    scratch.reset(chain[s]);
    out[s] = 1;
    for b in (0..s).rev() {
        scratch.split(chain[b]);
        out[b] = scratch.num_tiles();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::SlotLayout;

    /// The scratch walks must agree exactly with the allocating
    /// [`TileProfile`] recursion on awkward imperfect chains — the cost
    /// model's bit-identity rides on these counts.
    #[test]
    fn scratch_counts_match_allocating_profiles() {
        let chains: [&[u64]; 5] = [
            &[1, 3, 10, 100],
            &[1, 1, 7, 7, 113],
            &[1, 2, 5, 17, 256],
            &[1, 13, 13, 39, 117],
            &[1, 1, 1, 1, 64],
        ];
        let mut scratch = ProfileScratch::new();
        let mut counts = Vec::new();
        for chain in chains {
            let profiles = boundary_profiles(chain);
            boundary_tile_counts_into(chain, &mut scratch, &mut counts);
            assert_eq!(counts.len(), profiles.len(), "{chain:?}");
            for (b, p) in profiles.iter().enumerate() {
                assert_eq!(counts[b], p.num_tiles(), "{chain:?} boundary {b}");
            }
        }
    }

    /// `sequential_steps_with` reuses one scratch across chains without
    /// cross-contamination (and `sequential_steps` itself now routes
    /// through the scratch, so pin the known-good hand counts again).
    #[test]
    fn scratch_sequential_steps_match_one_shot() {
        let layout = SlotLayout::new(2);
        let mut scratch = ProfileScratch::new();
        for (chain, want) in [
            ([1u64, 1, 1, 7, 7, 7, 100], 100),
            ([1u64, 1, 1, 1, 1, 6, 100], 17),
            ([1u64, 1, 1, 2, 2, 12, 100], 18),
        ] {
            assert_eq!(
                sequential_steps_with(&chain, &layout, &mut scratch),
                want,
                "{chain:?}"
            );
        }
    }

    #[test]
    fn profiles_partition_exactly() {
        // Chain 1 -> 3 -> 10 -> 100 over a hypothetical 1-level layout is
        // not meaningful; use raw boundary math: each boundary's profile
        // must cover all 100 elements.
        let chain = [1u64, 3, 10, 100];
        let profiles = boundary_profiles(&chain);
        for p in &profiles {
            assert_eq!(p.total_elements(), 100);
        }
        // Boundary 2: tiles of 10 -> 10 tiles.
        assert_eq!(profiles[2].num_tiles(), 10);
        // Boundary 1: each 10 splits into 3+3+3+1 -> 40 tiles.
        assert_eq!(profiles[1].num_tiles(), 40);
        assert_eq!(profiles[1].entries(), &[(1, 10), (3, 30)]);
        // Boundary 0: unit tiles.
        assert_eq!(profiles[0].num_tiles(), 100);
    }

    #[test]
    fn perfect_chain_single_size_per_boundary() {
        let chain = [1u64, 5, 20, 100];
        let profiles = boundary_profiles(&chain);
        assert_eq!(profiles[1].entries(), &[(5, 20)]);
        assert_eq!(profiles[2].entries(), &[(20, 5)]);
    }

    #[test]
    fn split_and_clamp() {
        let p = TileProfile::single(100);
        let split = p.split(6);
        assert_eq!(split.entries(), &[(4, 1), (6, 16)]);
        assert_eq!(split.max_size(), 6);
        let clamped = split.clamp(1);
        assert_eq!(clamped.num_tiles(), 17);
        assert_eq!(clamped.total_elements(), 17);
    }

    #[test]
    fn sequential_steps_temporal_exact_residuals() {
        // Two levels -> 6 slots, 7 boundaries. Inner level temporal tile 7
        // (boundary 3), DRAM temporal covers 100: 14 full tiles of 7 run 7
        // steps each, the residual tile of 2 runs exactly 2 — 100 total.
        let layout = SlotLayout::new(2);
        let chain = [1u64, 1, 1, 7, 7, 7, 100];
        assert_eq!(sequential_steps(&chain, &layout), 100);
    }

    #[test]
    fn sequential_steps_spatial_lockstep() {
        // Spatial 6 at the DRAM spatial-X slot (boundary 5 = 6): 17
        // lockstep groups, each one step after unit clamping.
        let layout = SlotLayout::new(2);
        let chain = [1u64, 1, 1, 1, 1, 6, 100];
        assert_eq!(sequential_steps(&chain, &layout), 17);
    }

    #[test]
    fn sequential_steps_mixed() {
        // PE temporal tile 2, spatial 6 below DRAM (boundary 5 = 12),
        // DRAM T: ceil(100/12) = 9 groups (8 full of 12, one of 4). Each
        // group clamps to chunks of ≤2 and runs 2 unit steps in lockstep:
        // 9 * 2 = 18 steps.
        let layout = SlotLayout::new(2);
        let chain = [1u64, 1, 1, 2, 2, 12, 100];
        assert_eq!(sequential_steps(&chain, &layout), 18);
    }

    #[test]
    fn num_tiles_and_elements_empty_safe() {
        let p = TileProfile::single(1);
        assert_eq!(p.num_tiles(), 1);
        assert_eq!(p.total_elements(), 1);
    }
}
