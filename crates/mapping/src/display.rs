//! Human-readable loop-nest rendering of mappings, in the style of the
//! paper's Fig. 3.

use std::fmt::Write as _;

use ruby_workload::Dim;

use crate::slots::{SlotId, SlotKind};
use crate::Mapping;

/// Renders `mapping` as an indented loop nest. Level names come from
/// `level_names` (outermost first); trivial loops (count 1) are omitted.
/// Imperfect loops are annotated with their residual trip count.
///
/// # Examples
///
/// ```
/// use ruby_mapping::{display, Mapping, SlotKind};
/// use ruby_workload::{Dim, DimMap};
///
/// let mut b = Mapping::builder(2);
/// b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
/// let mut bounds = DimMap::splat(1u64);
/// bounds[Dim::M] = 100;
/// let m = b.build_for_bounds(&bounds).unwrap();
/// let nest = display::render_loopnest(&m, &["DRAM", "PE"]);
/// assert!(nest.contains("parFor"));
/// ```
pub fn render_loopnest(mapping: &Mapping, level_names: &[&str]) -> String {
    let layout = *mapping.layout();
    assert_eq!(
        level_names.len(),
        layout.num_levels(),
        "need one name per storage level"
    );
    let mut out = String::new();
    let mut indent = 0usize;
    for (level, name) in level_names.iter().enumerate().take(layout.num_levels()) {
        let _ = writeln!(out, "{:indent$}// {}", "", name, indent = indent);
        // Temporal block, outermost dim first (permutation is stored
        // innermost-first).
        let t = layout.temporal_slot(level);
        for &d in mapping.permutation(level).iter().rev() {
            indent = write_loop(&mut out, mapping, d, t, "for", indent);
        }
        for kind in [SlotKind::SpatialX, SlotKind::SpatialY] {
            let s = layout.slot(level, kind);
            for d in Dim::ALL {
                indent = write_loop(&mut out, mapping, d, s, "parFor", indent);
            }
        }
    }
    let _ = writeln!(out, "{:indent$}compute(MAC)", "", indent = indent);
    out
}

fn write_loop(
    out: &mut String,
    mapping: &Mapping,
    d: Dim,
    slot: SlotId,
    keyword: &str,
    indent: usize,
) -> usize {
    let count = mapping.loop_count(d, slot);
    if count <= 1 {
        return indent;
    }
    let lower = d.letter().to_ascii_lowercase();
    if mapping.has_remainder(d, slot) {
        let chain = mapping.tile_chain(d);
        let inner = chain[slot.index()];
        let outer = chain[slot.index() + 1];
        let residual = outer - (count - 1) * inner;
        let _ = writeln!(
            out,
            "{:indent$}{keyword} {lower} in 0..{count}  // tile {inner}, last {residual}",
            "",
            indent = indent
        );
    } else {
        let _ = writeln!(
            out,
            "{:indent$}{keyword} {lower} in 0..{count}",
            "",
            indent = indent
        );
    }
    indent + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_workload::DimMap;

    fn bounds(m: u64, c: u64) -> DimMap<u64> {
        let mut b = DimMap::splat(1u64);
        b[Dim::M] = m;
        b[Dim::C] = c;
        b
    }

    #[test]
    fn renders_spatial_and_temporal_loops() {
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 5);
        b.set_tile(Dim::C, 1, SlotKind::Temporal, 8);
        let m = b.build_for_bounds(&bounds(100, 8)).unwrap();
        let nest = render_loopnest(&m, &["DRAM", "PE"]);
        assert!(nest.contains("// DRAM"));
        assert!(nest.contains("// PE"));
        assert!(nest.contains("parFor m in 0..5"));
        assert!(nest.contains("for c in 0..8"));
        assert!(nest.contains("compute(MAC)"));
    }

    #[test]
    fn annotates_residuals() {
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
        let m = b.build_for_bounds(&bounds(100, 1)).unwrap();
        let nest = render_loopnest(&m, &["DRAM", "PE"]);
        assert!(nest.contains("for m in 0..17"), "nest:\n{nest}");
        assert!(nest.contains("last 4"), "nest:\n{nest}");
    }

    #[test]
    fn omits_trivial_loops() {
        let m = Mapping::builder(2).build_for_bounds(&bounds(1, 1)).unwrap();
        let nest = render_loopnest(&m, &["DRAM", "PE"]);
        assert!(!nest.contains("for "));
        assert!(nest.contains("compute(MAC)"));
    }

    #[test]
    #[should_panic(expected = "one name per storage level")]
    fn wrong_name_count_panics() {
        let m = Mapping::builder(2).build_for_bounds(&bounds(1, 1)).unwrap();
        let _ = render_loopnest(&m, &["DRAM"]);
    }
}
