//! Property tests of the tile-chain machinery against brute-force
//! per-dimension references: profiles, sequential steps, loop counts and
//! residual arithmetic must agree with naive recursive computation for
//! arbitrary chains.

use proptest::prelude::*;

use ruby_mapping::profile::{boundary_profiles, sequential_steps, TileProfile};
use ruby_mapping::{SlotId, SlotKind, SlotLayout};

/// Brute force: recursively split `extent` by the chain (innermost
/// granularity first is chain[0]) and collect the tile sizes at each
/// boundary.
fn brute_profile(chain: &[u64], boundary: usize) -> Vec<u64> {
    fn tiles(extent: u64, g: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut left = extent;
        while left > 0 {
            let t = g.min(left);
            out.push(t);
            left -= t;
        }
        out
    }
    let top = *chain.last().unwrap();
    let mut current = vec![top];
    for b in (boundary..chain.len() - 1).rev() {
        current = current.iter().flat_map(|&e| tiles(e, chain[b])).collect();
    }
    current.sort_unstable();
    current
}

/// Brute force sequential steps: temporal slots sum children, spatial
/// slots take the lockstep max.
fn brute_steps(chain: &[u64], layout: &SlotLayout, slot: usize, extent: u64) -> u64 {
    if slot == 0 && chain[0] == 1 {
        // Leaf granularity 1: one step per element... handled by the
        // recursion below reaching granularity equal to the extent.
    }
    if extent <= chain[0] && slot == 0 {
        return 1;
    }
    if slot == 0 {
        return 1;
    }
    let inner_slot = slot - 1;
    let g = chain[inner_slot];
    let kind = layout.kind_of(SlotId::new(inner_slot));
    let mut left = extent;
    let mut total = 0u64;
    let mut max = 0u64;
    while left > 0 {
        let t = g.min(left);
        let child = brute_steps(chain, layout, inner_slot, t);
        total += child;
        max = max.max(child);
        left -= t;
    }
    if kind == SlotKind::Temporal {
        total
    } else {
        max
    }
}

fn arb_chain() -> impl Strategy<Value = Vec<u64>> {
    // A 2-level layout: 6 slots, 7 boundaries.
    (1u64..120, 1u64..12, 1u64..12, 1u64..6).prop_map(|(bound, a, b, c)| {
        let mut mids = [a.min(bound), (a * b).min(bound), (a * b * c).min(bound)];
        mids.sort_unstable();
        vec![
            1,
            1,
            mids[0],
            mids[0],
            mids[1],
            mids[2].max(mids[1]),
            bound.max(mids[2]),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Profiles match brute-force recursive splitting at every boundary.
    #[test]
    fn profiles_match_brute_force(chain in arb_chain()) {
        let profiles = boundary_profiles(&chain);
        for (b, profile) in profiles.iter().enumerate().take(chain.len()) {
            let expected = brute_profile(&chain, b);
            let actual: Vec<u64> = profile
                .entries()
                .iter()
                .flat_map(|&(s, c)| std::iter::repeat_n(s, c as usize))
                .collect();
            prop_assert_eq!(&actual, &expected, "boundary {}", b);
        }
    }

    /// Sequential steps match the brute-force temporal-sum /
    /// spatial-max recursion.
    #[test]
    fn steps_match_brute_force(chain in arb_chain()) {
        let layout = SlotLayout::new(2);
        let top = *chain.last().unwrap();
        let expected = brute_steps(&chain, &layout, chain.len() - 1, top);
        prop_assert_eq!(sequential_steps(&chain, &layout), expected);
    }

    /// Clamping then splitting by the same granularity is idempotent on
    /// counts, and splitting preserves total elements.
    #[test]
    fn split_preserves_elements(extent in 1u64..5000, g in 1u64..64) {
        let p = TileProfile::single(extent);
        let split = p.split(g);
        prop_assert_eq!(split.total_elements(), extent);
        prop_assert_eq!(split.num_tiles(), extent.div_ceil(g));
        prop_assert!(split.max_size() <= g);
        let clamped = split.clamp(g);
        prop_assert_eq!(clamped.num_tiles(), split.num_tiles());
    }
}
