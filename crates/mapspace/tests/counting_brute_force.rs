//! Brute-force cross-checks of the mapspace counting machinery: the
//! closed-form/DP counters must agree with naive enumeration on small
//! inputs.

use proptest::prelude::*;

use ruby_mapspace::factor;

/// Naive ordered-factorization count by recursive enumeration.
fn brute_ordered(n: u64, k: usize) -> u128 {
    if k == 0 {
        return u128::from(n == 1);
    }
    let mut total = 0u128;
    for f in factor::divisors(n) {
        total += brute_ordered(n / f, k - 1);
    }
    total
}

/// Naive capped count.
fn brute_capped(n: u64, caps: &[Option<u64>]) -> u128 {
    match caps.split_first() {
        None => u128::from(n == 1),
        Some((cap, rest)) => factor::divisors(n)
            .into_iter()
            .filter(|&f| cap.is_none_or(|c| f <= c))
            .map(|f| brute_capped(n / f, rest))
            .sum(),
    }
}

/// Naive free-chain count.
fn brute_chains(n: u64, caps: &[Option<u64>]) -> u128 {
    fn recurse(cur: u64, n: u64, caps: &[Option<u64>]) -> u128 {
        match caps.split_first() {
            None => u128::from(cur == n),
            Some((cap, rest)) => {
                let hi = match cap {
                    Some(c) => (cur * c).min(n),
                    None => n,
                };
                (cur..=hi).map(|next| recurse(next, n, rest)).sum()
            }
        }
    }
    recurse(1, n, caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ordered_factorizations_match_brute_force(n in 1u64..200, k in 0usize..4) {
        prop_assert_eq!(
            factor::count_ordered_factorizations(n, k),
            brute_ordered(n, k)
        );
    }

    #[test]
    fn capped_factorizations_match_brute_force(
        n in 1u64..150,
        cap0 in 1u64..10,
        cap1 in 1u64..20,
    ) {
        let caps = vec![Some(cap0), None, Some(cap1)];
        prop_assert_eq!(
            factor::count_capped_factorizations(n, &caps),
            brute_capped(n, &caps)
        );
    }

    #[test]
    fn free_chains_match_brute_force(n in 1u64..60, cap in 1u64..8) {
        let caps = vec![None, Some(cap), None];
        prop_assert_eq!(factor::count_free_chains(n, &caps), brute_chains(n, &caps));
    }

    #[test]
    fn divisors_multiply_and_divide(n in 1u64..5000) {
        let divs = factor::divisors(n);
        prop_assert!(divs.iter().all(|&d| n % d == 0));
        prop_assert!(divs.contains(&1) && divs.contains(&n));
        prop_assert!(divs.windows(2).all(|w| w[0] < w[1]));
        // Prime factorization reassembles n.
        let product: u64 = factor::factorize(n)
            .into_iter()
            .map(|(p, m)| p.pow(m))
            .product();
        prop_assert_eq!(product, n);
    }
}
