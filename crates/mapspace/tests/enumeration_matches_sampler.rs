//! Enumeration/sampler agreement: the divisor-table enumeration must
//! cover exactly the tile-chain support the random sampler draws from —
//! no chain the sampler can produce may be missing, and no deduplicated
//! chain may appear twice — for every mapspace kind.
//!
//! Comparison runs on canonical keys with permutations normalized to the
//! builder defaults: the sampler shuffles loop orders, the enumeration
//! leaves them at their defaults, and the chain structure is what the
//! tables deduplicate.

// The vendored proptest macro expands deeply per generated parameter.
#![recursion_limit = "256"]

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_arch::presets;
use ruby_mapping::Mapping;
use ruby_mapspace::{
    EnumLimits, EnumTables, Mapspace, MapspaceKind, PermutedIterator, SubspaceIterator,
};
use ruby_workload::{Dim, ProblemShape};

fn default_mapping(space: &Mapspace) -> Mapping {
    Mapping::builder(space.arch().num_levels())
        .build_for_bounds(space.shape().bounds())
        .expect("the default mapping is well-formed")
}

/// Canonical keys of every enumerated leaf, in enumeration order.
fn enumerated_keys(space: &Mapspace) -> Vec<u64> {
    let tables = EnumTables::build(space, &EnumLimits::default()).expect("test spaces tabulate");
    let mut mapping = default_mapping(space);
    let mut keys = Vec::new();
    for region in tables.regions() {
        let mut it = SubspaceIterator::new(&tables, region, 0, region.leaves);
        while it.next_into(&mut mapping).is_some() {
            keys.push(mapping.canonical_key());
        }
    }
    keys
}

/// Canonical keys of `draws` sampled mappings with loop orders reset to
/// the defaults, so only the tile-chain structure distinguishes them.
fn sampled_keys(space: &Mapspace, draws: usize, seed: u64) -> HashSet<u64> {
    let defaults: Vec<[Dim; 7]> = {
        let m = default_mapping(space);
        (0..space.arch().num_levels())
            .map(|l| *m.permutation(l))
            .collect()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sampler = space.sampler();
    let mut mapping = default_mapping(space);
    let mut keys = HashSet::new();
    for _ in 0..draws {
        sampler.sample_into(&mut mapping, &mut rng);
        for (l, &perm) in defaults.iter().enumerate() {
            mapping.set_permutation(l, perm);
        }
        keys.insert(mapping.canonical_key());
    }
    keys
}

/// Canonical keys visited by a full permuted walk over the same tables.
fn permuted_keys(space: &Mapspace, seed: u64) -> Vec<u64> {
    let tables = EnumTables::build(space, &EnumLimits::default()).expect("test spaces tabulate");
    let total = tables
        .exact_total_leaves()
        .expect("test spaces count exactly");
    let mut walk =
        PermutedIterator::new(&tables, seed, 0, total).expect("exact totals admit a walk");
    let mut mapping = default_mapping(space);
    let mut keys = Vec::new();
    while walk.next_into(&mut mapping).is_some() {
        keys.push(mapping.canonical_key());
    }
    keys
}

/// The shuffled walk must visit exactly the enumeration's support —
/// same multiset, zero repeats — so a budgeted prefix of it is a
/// uniform duplicate-free sample. Plain asserts: proptest catches the
/// panic and shrinks the case.
fn check_walk_support(d: u64, pes: u64, kind: MapspaceKind, seed: u64) {
    let space = Mapspace::new(
        presets::toy_linear(pes, 1024),
        ProblemShape::rank1("d", d),
        kind,
    );
    let mut in_order = enumerated_keys(&space);
    let mut shuffled = permuted_keys(&space, seed);
    assert_eq!(
        shuffled.len(),
        in_order.len(),
        "{} walk length != leaf count",
        kind.name()
    );
    in_order.sort_unstable();
    shuffled.sort_unstable();
    assert_eq!(shuffled, in_order, "{} walk support diverged", kind.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn permuted_walk_visits_exactly_the_enumeration_support(
        d in 2u64..40,
        pes in 2u64..6,
        kind_idx in 0usize..4,
    ) {
        // Seed derived from the case so walks differ across cases
        // without a fourth generated parameter.
        let seed = d.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (pes << 17) ^ kind_idx as u64;
        check_walk_support(d, pes, MapspaceKind::ALL[kind_idx], seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every kind, random small spaces: the enumeration is duplicate-free
    /// and a superset of whatever the sampler produces.
    #[test]
    fn enumeration_is_deduped_and_misses_no_sample(
        d in 2u64..40,
        pes in 2u64..6,
        kind_idx in 0usize..4,
    ) {
        let kind = MapspaceKind::ALL[kind_idx];
        let space = Mapspace::new(
            presets::toy_linear(pes, 1024),
            ProblemShape::rank1("d", d),
            kind,
        );
        let keys = enumerated_keys(&space);
        let unique: HashSet<u64> = keys.iter().copied().collect();
        prop_assert_eq!(
            unique.len(),
            keys.len(),
            "duplicate canonical chains in {} enumeration",
            kind.name()
        );
        let sampled = sampled_keys(&space, 300, d ^ (pes << 32) ^ (kind_idx as u64) << 40);
        for key in &sampled {
            prop_assert!(
                unique.contains(key),
                "{} sampler produced a chain the enumeration misses",
                kind.name()
            );
        }
    }
}

/// On a space small enough for the sampler to saturate, the two sets are
/// *equal*: the enumeration also produces nothing the sampler cannot.
#[test]
fn tiny_space_sets_are_equal_for_every_kind() {
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(
            presets::toy_linear(3, 1024),
            ProblemShape::rank1("d", 12),
            kind,
        );
        let enumerated: HashSet<u64> = enumerated_keys(&space).into_iter().collect();
        let sampled = sampled_keys(&space, 20_000, 7);
        assert_eq!(
            sampled,
            enumerated,
            "{}: sampler reached {} chains, enumeration holds {}",
            kind.name(),
            sampled.len(),
            enumerated.len()
        );
    }
}
