//! Mapping constraints: which dimensions each spatial axis may
//! parallelize. These play the role of Timeloop's mapspace constraint
//! files (the paper constrains its Eyeriss baseline "to generate mappings
//! that conform to the data access patterns amenable to row-stationary
//! dataflows", and its Simba PEs to C/M parallelism).

use ruby_workload::Dim;

/// A small set of problem dimensions.
///
/// # Examples
///
/// ```
/// use ruby_mapspace::DimSet;
/// use ruby_workload::Dim;
///
/// let set = DimSet::from_dims(&[Dim::C, Dim::M]);
/// assert!(set.contains(Dim::C));
/// assert!(!set.contains(Dim::Q));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimSet(u8);

serde::impl_serde_newtype!(DimSet);

impl DimSet {
    /// The empty set.
    pub const fn empty() -> Self {
        DimSet(0)
    }

    /// The set of all seven dimensions.
    pub const fn all() -> Self {
        DimSet(0x7f)
    }

    /// Builds a set from a dimension slice.
    pub fn from_dims(dims: &[Dim]) -> Self {
        let mut s = DimSet::empty();
        for &d in dims {
            s.insert(d);
        }
        s
    }

    /// Adds a dimension.
    pub fn insert(&mut self, dim: Dim) {
        self.0 |= 1 << dim.index();
    }

    /// Membership test.
    #[inline]
    pub const fn contains(&self, dim: Dim) -> bool {
        self.0 & (1 << dim.index()) != 0
    }

    /// Iterates the members in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Dim> + '_ {
        Dim::ALL.into_iter().filter(|d| self.contains(*d))
    }

    /// Whether the set is empty.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl Default for DimSet {
    fn default() -> Self {
        DimSet::all()
    }
}

/// Per-level spatial-axis dimension filters. A dimension not in the
/// allowed set of an axis cannot receive a spatial factor greater than 1
/// there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraints {
    spatial_x: Vec<DimSet>,
    spatial_y: Vec<DimSet>,
    exclusive_spatial: bool,
}

serde::impl_serde_struct!(Constraints {
    spatial_x,
    spatial_y,
    exclusive_spatial
});

impl Constraints {
    /// No restrictions: every dimension may use every spatial axis.
    pub fn unconstrained(num_levels: usize) -> Self {
        Constraints {
            spatial_x: vec![DimSet::all(); num_levels],
            spatial_y: vec![DimSet::all(); num_levels],
            exclusive_spatial: false,
        }
    }

    /// Requires each spatial axis to parallelize a *single* dimension —
    /// the shape physical accelerator arrays (and Timeloop constraint
    /// files for them) typically impose: one logical dim per physical
    /// axis.
    pub fn with_exclusive_spatial(mut self) -> Self {
        self.exclusive_spatial = true;
        self
    }

    /// Whether each spatial axis is restricted to one dimension.
    pub fn exclusive_spatial(&self) -> bool {
        self.exclusive_spatial
    }

    /// Restricts the spatial-X axis below `level` to `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn with_spatial_x(mut self, level: usize, dims: &[Dim]) -> Self {
        self.spatial_x[level] = DimSet::from_dims(dims);
        self
    }

    /// Restricts the spatial-Y axis below `level` to `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn with_spatial_y(mut self, level: usize, dims: &[Dim]) -> Self {
        self.spatial_y[level] = DimSet::from_dims(dims);
        self
    }

    /// Allowed dims on the spatial-X axis below `level`.
    pub fn spatial_x(&self, level: usize) -> DimSet {
        self.spatial_x[level]
    }

    /// Allowed dims on the spatial-Y axis below `level`.
    pub fn spatial_y(&self, level: usize) -> DimSet {
        self.spatial_y[level]
    }

    /// Number of levels covered.
    pub fn num_levels(&self) -> usize {
        self.spatial_x.len()
    }

    /// The paper's Eyeriss baseline constraints: array columns
    /// parallelize output positions (`Q`, with `M` replication allowed),
    /// array rows parallelize output channels / filter rows / output rows
    /// (`M`, `P`, `R`) — the shapes a row-stationary dataflow supports.
    /// `level` is the index of the level whose fanout is the PE array
    /// (1 for the presets' DRAM/GLB/PE hierarchy).
    pub fn eyeriss_row_stationary(num_levels: usize, level: usize) -> Self {
        Constraints::unconstrained(num_levels)
            .with_spatial_x(level, &[Dim::Q, Dim::M])
            .with_spatial_y(level, &[Dim::M, Dim::P, Dim::R])
            .with_exclusive_spatial()
    }

    /// The paper's Simba constraints: PE-level parallelism across the
    /// input-channel (`C`) and output-channel (`M`) dimensions, both at
    /// the GLB→PE fanout (`glb_level`) and across the vector-MAC lanes
    /// (`pe_level`).
    pub fn simba_cm(num_levels: usize, glb_level: usize, pe_level: usize) -> Self {
        Constraints::unconstrained(num_levels)
            .with_spatial_x(glb_level, &[Dim::C, Dim::M])
            .with_spatial_y(glb_level, &[])
            .with_spatial_x(pe_level, &[Dim::C, Dim::M])
            .with_spatial_y(pe_level, &[])
    }

    /// The Fig. 7c/d toy constraint: only `C` and `M` may map onto the
    /// PEs (the toy has its PE fanout below DRAM, level 0).
    pub fn toy_cm(num_levels: usize) -> Self {
        Constraints::unconstrained(num_levels)
            .with_spatial_x(0, &[Dim::C, Dim::M])
            .with_spatial_y(0, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimset_membership() {
        let mut s = DimSet::empty();
        assert!(s.is_empty());
        s.insert(Dim::P);
        assert!(s.contains(Dim::P));
        assert!(!s.contains(Dim::Q));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Dim::P]);
        assert_eq!(DimSet::all().iter().count(), 7);
    }

    #[test]
    fn unconstrained_allows_everything() {
        let c = Constraints::unconstrained(3);
        for l in 0..3 {
            for d in Dim::ALL {
                assert!(c.spatial_x(l).contains(d));
                assert!(c.spatial_y(l).contains(d));
            }
        }
    }

    #[test]
    fn eyeriss_constraints_shape() {
        let c = Constraints::eyeriss_row_stationary(3, 1);
        assert!(c.spatial_x(1).contains(Dim::Q));
        assert!(c.spatial_x(1).contains(Dim::M));
        assert!(!c.spatial_x(1).contains(Dim::C));
        assert!(c.spatial_y(1).contains(Dim::R));
        assert!(!c.spatial_y(1).contains(Dim::S));
        // Other levels stay unconstrained.
        assert!(c.spatial_x(0).contains(Dim::C));
    }

    #[test]
    fn simba_constraints_shape() {
        let c = Constraints::simba_cm(3, 1, 2);
        for l in [1, 2] {
            assert!(c.spatial_x(l).contains(Dim::C));
            assert!(c.spatial_x(l).contains(Dim::M));
            assert!(!c.spatial_x(l).contains(Dim::Q));
            assert!(c.spatial_y(l).is_empty());
        }
    }
}
