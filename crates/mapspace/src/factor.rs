//! Index-factorization arithmetic: primes, divisors, ordered
//! factorizations (enumeration, counting, uniform-ish sampling).
//!
//! Perfect-factorization mapspaces assign every prime factor of a
//! dimension bound to one loop slot; the helpers here implement that
//! machinery plus the counting used by the Table I mapspace-size study.

use rand::Rng;

/// The prime factorization of `n` as `(prime, multiplicity)` pairs in
/// increasing prime order. `factorize(1)` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(ruby_mapspace::factor::factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    assert!(n > 0, "cannot factorize zero");
    let mut out = Vec::new();
    let mut p = 2u64;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut m = 0;
            while n.is_multiple_of(p) {
                n /= p;
                m += 1;
            }
            out.push((p, m));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// The flattened prime list of `n` (each prime repeated by multiplicity).
pub fn prime_list(n: u64) -> Vec<u64> {
    factorize(n)
        .into_iter()
        .flat_map(|(p, m)| std::iter::repeat_n(p, m as usize))
        .collect()
}

/// All divisors of `n` in increasing order.
///
/// # Examples
///
/// ```
/// assert_eq!(ruby_mapspace::factor::divisors(12), vec![1, 2, 3, 4, 6, 12]);
/// ```
pub fn divisors(n: u64) -> Vec<u64> {
    let mut out = vec![1u64];
    for (p, m) in factorize(n) {
        let base = out.clone();
        let mut pk = 1u64;
        for _ in 0..m {
            pk *= p;
            out.extend(base.iter().map(|d| d * pk));
        }
    }
    out.sort_unstable();
    out
}

/// Number of ordered factorizations of `n` into exactly `k` factors
/// (order matters, factors ≥ 1). This is the size of a `k`-slot
/// perfect-factorization space for one dimension with no caps:
/// multiplicative over prime powers, `C(m + k − 1, k − 1)` per prime of
/// multiplicity `m`.
///
/// # Examples
///
/// ```
/// // 12 = 2²·3 into 2 slots: 3 ways for the 2s × 2 ways for the 3.
/// assert_eq!(ruby_mapspace::factor::count_ordered_factorizations(12, 2), 6);
/// ```
pub fn count_ordered_factorizations(n: u64, k: usize) -> u128 {
    if k == 0 {
        return u128::from(n == 1);
    }
    factorize(n)
        .into_iter()
        .map(|(_, m)| binomial(m as u128 + k as u128 - 1, k as u128 - 1))
        .product()
}

fn binomial(n: u128, k: u128) -> u128 {
    let k = k.min(n - k.min(n));
    let mut acc = 1u128;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// Number of ordered factorizations of `n` over slots with per-slot caps
/// (`None` = uncapped). Exact DP over the divisors of `n`.
pub fn count_capped_factorizations(n: u64, caps: &[Option<u64>]) -> u128 {
    let divs = divisors(n);
    // lint: allow(panics) — only queried with quotients of divisors of
    // `n`, which are themselves divisors and hence always found.
    let index_of = |d: u64| divs.binary_search(&d).expect("divisor");
    // ways[i] = number of ways for the remaining quotient divs[i] using
    // the slots processed so far.
    let mut ways = vec![0u128; divs.len()];
    ways[index_of(n)] = 1;
    for cap in caps {
        let mut next = vec![0u128; divs.len()];
        for (i, &q) in divs.iter().enumerate() {
            if ways[i] == 0 {
                continue;
            }
            for &f in &divs {
                if f > q || q % f != 0 {
                    continue;
                }
                if let Some(c) = cap {
                    if f > *c {
                        continue;
                    }
                }
                next[index_of(q / f)] = next[index_of(q / f)].saturating_add(ways[i]);
            }
        }
        ways = next;
    }
    ways[index_of(1)]
}

/// Number of non-decreasing chains `1 = c_0 ≤ c_1 ≤ … ≤ c_k = n` where
/// step `i` (from `c_i` to `c_{i+1}`) obeys `ceil(c_{i+1}/c_i) ≤ cap_i`
/// (`None` = uncapped). This is the per-dimension size of the fully
/// imperfect (Ruby) tiling space.
pub fn count_free_chains(n: u64, caps: &[Option<u64>]) -> u128 {
    // ways[v] = chains reaching value v (1-indexed).
    let n_us = n as usize;
    let mut ways = vec![0u128; n_us + 1];
    ways[1] = 1;
    for cap in caps {
        // prefix[v] = Σ_{u ≤ v} ways[u]
        let mut prefix = vec![0u128; n_us + 1];
        for v in 1..=n_us {
            prefix[v] = prefix[v - 1].saturating_add(ways[v]);
        }
        let mut next = vec![0u128; n_us + 1];
        for (v, slot) in next.iter_mut().enumerate().skip(1) {
            // Reachable from u where u ≤ v and ceil(v/u) ≤ cap, i.e.
            // u ≥ ceil(v / cap).
            let lo = match cap {
                Some(c) => (v as u64).div_ceil(*c) as usize,
                None => 1,
            };
            if lo <= v {
                *slot = prefix[v].saturating_sub(prefix[lo.saturating_sub(1)]);
            }
        }
        ways = next;
    }
    ways[n_us]
}

/// Assigns the prime factors of `n` to `k` slots uniformly at random,
/// honouring per-slot caps (`None` = uncapped). Returns the per-slot
/// factors (product = `n`), or `None` if the caps cannot absorb a prime.
pub fn sample_factor_assignment<R: Rng + ?Sized>(
    n: u64,
    caps: &[Option<u64>],
    rng: &mut R,
) -> Option<Vec<u64>> {
    let mut slots = vec![1u64; caps.len()];
    let mut primes = prime_list(n);
    // Place large primes first so caps fail fast and fairly.
    primes.sort_unstable_by(|a, b| b.cmp(a));
    for p in primes {
        let feasible: Vec<usize> = (0..slots.len())
            .filter(|&i| match caps[i] {
                Some(c) => slots[i].saturating_mul(p) <= c,
                None => true,
            })
            .collect();
        if feasible.is_empty() {
            return None;
        }
        let pick = feasible[rng.gen_range(0..feasible.len())];
        slots[pick] *= p;
    }
    Some(slots)
}

/// Samples a value log-uniformly from `[1, max]` (inclusive): each
/// binary order of magnitude is roughly equally likely. Used by the
/// imperfect-factorization samplers so tile sizes spread across scales.
pub fn sample_log_uniform<R: Rng + ?Sized>(max: u64, rng: &mut R) -> u64 {
    if max <= 1 {
        return 1;
    }
    let exp = rng.gen_range(0.0..(max as f64).log2() + 1.0);
    (2f64.powf(exp) as u64).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(2), vec![(2, 1)]);
        assert_eq!(factorize(100), vec![(2, 2), (5, 2)]);
        assert_eq!(factorize(113), vec![(113, 1)]);
        assert_eq!(factorize(4096), vec![(2, 12)]);
    }

    #[test]
    fn prime_list_expands_multiplicity() {
        assert_eq!(prime_list(12), vec![2, 2, 3]);
        assert!(prime_list(1).is_empty());
    }

    #[test]
    fn divisors_complete_and_sorted() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(28), vec![1, 2, 4, 7, 14, 28]);
        assert_eq!(divisors(113), vec![1, 113]);
    }

    #[test]
    fn ordered_factorization_counts() {
        // 100 = 2²·5² into 3 slots: C(4,2)² = 36.
        assert_eq!(count_ordered_factorizations(100, 3), 36);
        assert_eq!(count_ordered_factorizations(1, 3), 1);
        assert_eq!(count_ordered_factorizations(7, 1), 1);
        assert_eq!(count_ordered_factorizations(7, 0), 0);
        assert_eq!(count_ordered_factorizations(1, 0), 1);
    }

    #[test]
    fn capped_counts_match_uncapped_when_loose() {
        for n in [12u64, 100, 36] {
            let caps = vec![None, None, None];
            assert_eq!(
                count_capped_factorizations(n, &caps),
                count_ordered_factorizations(n, 3),
                "n={n}"
            );
        }
    }

    #[test]
    fn capped_counts_respect_caps() {
        // 100 into [spatial ≤ 9, free]: spatial ∈ {1,2,4,5} -> 4 ways.
        let caps = vec![Some(9), None];
        assert_eq!(count_capped_factorizations(100, &caps), 4);
        // Prime 113 with a tight cap in every slot: impossible beyond 1.
        assert_eq!(count_capped_factorizations(113, &[Some(9), Some(9)]), 0);
    }

    #[test]
    fn free_chain_counts() {
        // One free step from 1 to n: exactly one chain (1, n).
        assert_eq!(count_free_chains(10, &[None]), 1);
        // Two free steps: c1 ∈ [1, 10] -> 10 chains.
        assert_eq!(count_free_chains(10, &[None, None]), 10);
        // Cap 3 on the last step: c1 ≥ ceil(10/3) = 4 -> 7 chains.
        assert_eq!(count_free_chains(10, &[None, Some(3)]), 7);
        // Cap 1 everywhere: only possible if n == 1.
        assert_eq!(count_free_chains(10, &[Some(1), Some(1)]), 0);
        assert_eq!(count_free_chains(1, &[Some(1)]), 1);
    }

    #[test]
    fn free_chains_grow_quadratically_with_n() {
        let small = count_free_chains(64, &[None, None, None]);
        let large = count_free_chains(256, &[None, None, None]);
        assert!(large > small * 10, "{large} vs {small}");
    }

    #[test]
    fn sampled_assignments_multiply_back() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1u64, 12, 100, 113, 360] {
            for _ in 0..50 {
                let factors =
                    sample_factor_assignment(n, &[None, Some(16), None], &mut rng).unwrap();
                assert_eq!(factors.iter().product::<u64>(), n);
                assert!(factors[1] <= 16);
            }
        }
    }

    #[test]
    fn infeasible_assignment_returns_none() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            sample_factor_assignment(113, &[Some(9), Some(9)], &mut rng),
            None
        );
    }

    #[test]
    fn log_uniform_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = sample_log_uniform(100, &mut rng);
            assert!((1..=100).contains(&v));
        }
        assert_eq!(sample_log_uniform(1, &mut rng), 1);
    }
}
