//! Perfect-permutation sampling: a format-preserving cipher over the
//! enumeration index space.
//!
//! Random search used to draw per-dimension factor vectors and reject
//! duplicates through a memo table; at 15k samples the committed bench
//! showed ~65% of evaluations wasted on invalid or duplicate
//! candidates. This module removes the waste at the source: a seeded
//! **balanced Feistel network** ([`FeistelPermutation`]) is a bijection
//! `shuffle(i) -> j` on `[0, range)` computable in O(1) memory, so
//! "random sampling" becomes *exhaustive enumeration in shuffled
//! order* — zero duplicates by construction, no rejection-sampling
//! retry loops, and no dedup memo on the random path.
//!
//! The cipher works on the smallest even-bit binary domain `2^(2k) >=
//! range` and **cycle-walks**: encryption is iterated until the output
//! lands below `range`. Because the minimal domain is less than
//! `4 * range`, the expected walk is under four rounds. Iterating a
//! bijection from an in-range point always returns to the in-range
//! set (the cycle through `i` contains `i` itself), so the walk
//! terminates, and distinct inputs can never collide (they live on
//! disjoint cycle arcs).
//!
//! [`PermutedIterator`] lifts the cipher onto a mapspace: the
//! [`EnumTables`] regions partition the deduplicated chain space into
//! a single global index range `[0, total_leaves)`, and the iterator
//! walks that range in shuffled order, decoding each visited index
//! through [`SubspaceIterator`]. A permuted walk is still an indexed
//! walk: the cursor is the permutation *position*, so range
//! partitioning across threads and checkpoint/resume work exactly as
//! they do for the exhaustive order.

use ruby_mapping::Mapping;

use crate::enumerate::{EnumTables, SubspaceIterator};

/// Feistel rounds used when none are specified. Four rounds of a
/// strong mixing function is the standard choice for statistical (not
/// cryptographic) format-preserving permutations.
pub const DEFAULT_ROUNDS: usize = 4;

/// A seeded bijection on `[0, range)` with O(1) memory: a balanced
/// Feistel network over the smallest even-bit domain covering the
/// range, cycle-walked back into the range.
#[derive(Debug, Clone)]
pub struct FeistelPermutation {
    range: u64,
    seed: u64,
    /// Bits in each Feistel half; the domain is `2^(2 * half_bits)`.
    half_bits: u32,
    /// `2^half_bits - 1`: the right-half mask.
    mask: u64,
    keys: Vec<u64>,
}

impl FeistelPermutation {
    /// A permutation of `[0, range)` with [`DEFAULT_ROUNDS`] rounds.
    #[must_use]
    pub fn new(range: u64, seed: u64) -> Self {
        Self::with_rounds(range, seed, DEFAULT_ROUNDS)
    }

    /// A permutation of `[0, range)` with an explicit round count
    /// (minimum 2; fewer rounds cannot mix both halves).
    #[must_use]
    pub fn with_rounds(range: u64, seed: u64, rounds: usize) -> Self {
        // Smallest k with 2^(2k) >= range; k = 32 covers all of u64.
        let mut half_bits = 1u32;
        while half_bits < 32 && range > 1u64 << (2 * half_bits) {
            half_bits += 1;
        }
        let mask = (1u64 << half_bits) - 1;
        let mut state = seed;
        let keys = (0..rounds.max(2))
            .map(|_| rand::splitmix64(&mut state))
            .collect();
        FeistelPermutation {
            range,
            seed,
            half_bits,
            mask,
            keys,
        }
    }

    /// The permuted range.
    #[must_use]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The seed the round keys were derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The image of `i` under the permutation. Bijective on
    /// `[0, range)`; out-of-range inputs are a caller bug (checked in
    /// debug builds, identity in release so the walk stays total).
    #[must_use]
    pub fn shuffle(&self, i: u64) -> u64 {
        debug_assert!(
            self.range <= 1 || i < self.range,
            "shuffle index {i} outside range {}",
            self.range
        );
        if self.range <= 1 || i >= self.range {
            return i;
        }
        let mut x = i;
        loop {
            x = self.encrypt(x);
            if x < self.range {
                return x;
            }
        }
    }

    /// One pass of the Feistel network over the full binary domain.
    fn encrypt(&self, x: u64) -> u64 {
        let mut left = x >> self.half_bits;
        let mut right = x & self.mask;
        for &key in &self.keys {
            let next = left ^ self.round(right, key);
            left = right;
            right = next;
        }
        (left << self.half_bits) | right
    }

    /// The round function: a splitmix64-style finalizer over the right
    /// half and the round key, masked back to half width. All-u64
    /// arithmetic — no truncating casts anywhere in the cipher.
    fn round(&self, right: u64, key: u64) -> u64 {
        let mut z = right.wrapping_add(key);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z & self.mask
    }
}

/// A shuffled, resumable walk over the *global* leaf index space of an
/// [`EnumTables`] — every deduplicated mapping exactly once, in an
/// order determined by `seed`. Disjoint position ranges visit disjoint
/// mappings, so threads partition work by index arithmetic alone, and
/// the checkpoint cursor is simply [`PermutedIterator::position`].
#[derive(Debug)]
pub struct PermutedIterator<'a> {
    tables: &'a EnumTables,
    /// `prefix[i]` = leaves in regions `0..i`; length `regions + 1`.
    prefix: Vec<u64>,
    perm: FeistelPermutation,
    pos: u64,
    end: u64,
}

impl<'a> PermutedIterator<'a> {
    /// A walk over permutation positions `start..end` of the global
    /// range `[0, exact_total_leaves)`.
    ///
    /// Returns `None` when the leaf count saturated `u64`
    /// ([`EnumTables::exact_total_leaves`]); callers should fall back
    /// to rejection sampling for such astronomically large spaces.
    ///
    /// # Panics
    ///
    /// Panics if the position range is inverted or exceeds the space.
    #[must_use]
    pub fn new(tables: &'a EnumTables, seed: u64, start: u64, end: u64) -> Option<Self> {
        let total = tables.exact_total_leaves()?;
        assert!(
            start <= end && end <= total,
            "position range {start}..{end} outside space of {total} leaves"
        );
        let regions = tables.regions();
        let mut prefix = Vec::with_capacity(regions.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for region in regions {
            // exact_total_leaves() above proved the sum fits.
            acc += region.leaves;
            prefix.push(acc);
        }
        Some(PermutedIterator {
            tables,
            prefix,
            perm: FeistelPermutation::new(total, seed),
            pos: start,
            end,
        })
    }

    /// The next permutation position to visit — the resume cursor.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// One past the last position this walk will visit.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Decodes the mapping at the next shuffled position into `out`
    /// (permutation loop orders are left untouched, exactly like
    /// [`SubspaceIterator::next_into`]) and returns `(global index,
    /// sequential steps)`, or `None` when the range is exhausted.
    pub fn next_into(&mut self, out: &mut Mapping) -> Option<(u64, u64)> {
        if self.pos >= self.end {
            return None;
        }
        let global = self.perm.shuffle(self.pos);
        self.pos += 1;
        // prefix[0] == 0 <= global, so the partition point is >= 1.
        let ri = self.prefix.partition_point(|&p| p <= global) - 1;
        let region = &self.tables.regions()[ri];
        let leaf = global - self.prefix[ri];
        let steps = SubspaceIterator::new(self.tables, region, leaf, leaf + 1).next_into(out)?;
        Some((global, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Mapspace, MapspaceKind};
    use crate::EnumLimits;
    use ruby_arch::presets;
    use ruby_workload::ProblemShape;
    use std::collections::BTreeSet;

    #[test]
    fn shuffle_is_a_bijection_on_awkward_ranges() {
        for range in [1u64, 2, 3, 5, 16, 17, 100, 255, 256, 257, 1000] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let perm = FeistelPermutation::new(range, seed);
                let mut seen: Vec<u64> = (0..range).map(|i| perm.shuffle(i)).collect();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..range).collect::<Vec<_>>(),
                    "range {range} seed {seed}"
                );
            }
        }
    }

    /// The format-preserving cipher must biject on `[0, range)` for
    /// arbitrary (not just round or power-of-two) ranges and any seed:
    /// every output lands in range and none repeats. Plain asserts so
    /// the proptest macro body stays a single call.
    fn check_bijection(range: u64, seed: u64) {
        let perm = FeistelPermutation::new(range, seed);
        let mut hit = vec![false; range as usize];
        for i in 0..range {
            let j = perm.shuffle(i);
            assert!(j < range, "shuffle({i}) = {j} escaped [0, {range})");
            assert!(!hit[j as usize], "shuffle({i}) = {j} collided");
            hit[j as usize] = true;
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn shuffle_bijects_arbitrary_ranges(range in 1u64..50_000, seed in 0u64..u64::MAX) {
            check_bijection(range, seed);
        }
    }

    #[test]
    fn shuffle_actually_permutes_nontrivially() {
        let perm = FeistelPermutation::new(1000, 7);
        let fixed = (0..1000).filter(|&i| perm.shuffle(i) == i).count();
        assert!(fixed < 50, "{fixed} fixed points is not a shuffle");
    }

    #[test]
    fn same_seed_same_order_different_seed_different_order() {
        let a = FeistelPermutation::new(500, 3);
        let b = FeistelPermutation::new(500, 3);
        let c = FeistelPermutation::new(500, 4);
        let va: Vec<u64> = (0..500).map(|i| a.shuffle(i)).collect();
        let vb: Vec<u64> = (0..500).map(|i| b.shuffle(i)).collect();
        let vc: Vec<u64> = (0..500).map(|i| c.shuffle(i)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn permuted_walk_covers_the_support_exactly_once() {
        for kind in MapspaceKind::ALL {
            let space = Mapspace::new(
                presets::toy_linear(4, 1024),
                ProblemShape::rank1("d", 12),
                kind,
            );
            let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
            let total = tables.exact_total_leaves().unwrap();
            let mut mapping = Mapping::builder(space.arch().num_levels())
                .build_for_bounds(space.shape().bounds())
                .unwrap();

            let mut in_order = BTreeSet::new();
            for region in tables.regions() {
                let mut it = SubspaceIterator::new(&tables, region, 0, region.leaves);
                while it.next_into(&mut mapping).is_some() {
                    in_order.insert(mapping.canonical_key());
                }
            }

            let mut shuffled = BTreeSet::new();
            let mut walk = PermutedIterator::new(&tables, 99, 0, total).unwrap();
            let mut visits = 0u64;
            while walk.next_into(&mut mapping).is_some() {
                shuffled.insert(mapping.canonical_key());
                visits += 1;
            }
            assert_eq!(visits, total, "{kind}: every position visited once");
            assert_eq!(shuffled, in_order, "{kind}: same support");
            assert_eq!(shuffled.len() as u64, total, "{kind}: zero duplicates");
        }
    }

    #[test]
    fn split_ranges_partition_the_walk() {
        let space = Mapspace::new(
            presets::toy_linear(4, 1024),
            ProblemShape::rank1("d", 12),
            MapspaceKind::RubyS,
        );
        let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
        let total = tables.exact_total_leaves().unwrap();
        let mut mapping = Mapping::builder(space.arch().num_levels())
            .build_for_bounds(space.shape().bounds())
            .unwrap();
        let whole: Vec<u64> = {
            let mut it = PermutedIterator::new(&tables, 5, 0, total).unwrap();
            let mut v = Vec::new();
            while let Some((global, _)) = it.next_into(&mut mapping) {
                v.push(global);
            }
            v
        };
        let mid = total / 2;
        let mut split = Vec::new();
        for (a, b) in [(0, mid), (mid, total)] {
            let mut it = PermutedIterator::new(&tables, 5, a, b).unwrap();
            while let Some((global, _)) = it.next_into(&mut mapping) {
                split.push(global);
            }
        }
        assert_eq!(whole, split, "resume mid-walk replays the same order");
    }
}
