//! Mapspace generation for the Ruby reproduction.
//!
//! This crate implements the paper's contribution: alongside the
//! perfect-factorization mapspace (PFM) used by Timeloop, it generates
//! the **imperfect factorization** expansions:
//!
//! * [`MapspaceKind::Ruby`] — remainders anywhere (eq. 5);
//! * [`MapspaceKind::RubyS`] — remainders only at spatial slots, giving
//!   full-array parallelism with a moderate space expansion;
//! * [`MapspaceKind::RubyT`] — remainders only at temporal slots.
//!
//! A [`Mapspace`] couples an architecture, a workload and
//! [`Constraints`] (Timeloop-style spatial dimension filters) and
//! supports random sampling, exhaustive perfect-space enumeration and
//! tiling-count estimation (the Table I study). [`padding`] implements
//! the pad-to-array baseline compared against Ruby-S in Fig. 8.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(9, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mapping = space.sample(&mut rng);
//! assert_eq!(mapping.tile_chain(ruby_workload::Dim::M).last(), Some(&113));
//! ```

pub mod constraints;
pub mod enumerate;
pub mod factor;
pub mod heuristic;
pub mod padding;
pub mod permute;
pub mod space;

pub use constraints::{Constraints, DimSet};
pub use enumerate::{EnumError, EnumLimits, EnumTables, Region, SubspaceIterator};
pub use permute::{FeistelPermutation, PermutedIterator};
pub use space::{Mapspace, MapspaceKind, Sampler};
