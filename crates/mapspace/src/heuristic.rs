//! A deterministic, search-free Ruby-S mapper.
//!
//! Ruby-S's wins come from one move: fill every spatial axis completely,
//! accepting a residual final iteration. This module turns that intuition
//! into a constructive algorithm — useful as a fast starting point for
//! search, as a sanity baseline in tests, and as an existence proof that
//! the imperfect mapspace contains near-full-utilization mappings without
//! any exploration.
//!
//! [`utilization_first`] emits a small family of candidates (one per
//! assignment of allowed dimensions to spatial axes); callers evaluate
//! them and keep the best.
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{heuristic, Constraints};
//! use ruby_workload::ProblemShape;
//!
//! let arch = presets::toy_linear(16, 1024);
//! let shape = ProblemShape::rank1("d", 113);
//! let candidates =
//!     heuristic::utilization_first(&arch, &shape, &Constraints::unconstrained(2));
//! assert!(!candidates.is_empty());
//! assert_eq!(candidates[0].compute_cycles(), 8); // ceil(113/16)
//! ```

use ruby_arch::Architecture;
use ruby_mapping::{Mapping, SlotKind};
use ruby_workload::{Dim, ProblemShape};

use crate::constraints::Constraints;

/// One spatial axis of the architecture, with its constraint set.
#[derive(Debug, Clone)]
struct Axis {
    level: usize,
    kind: SlotKind,
    extent: u64,
    candidates: Vec<Dim>,
}

/// Builds utilization-first Ruby-S candidates: every assignment of one
/// allowed dimension per non-unit spatial axis, each axis loaded to its
/// full extent (imperfectly if needed), with reduction dimensions kept
/// innermost temporally so partial sums stay put.
///
/// Candidates are deduplicated and returned in a deterministic order;
/// the list is empty only if some axis has no usable dimension and no
/// all-temporal fallback is requested (the fallback default mapping is
/// always appended).
pub fn utilization_first(
    arch: &Architecture,
    shape: &ProblemShape,
    constraints: &Constraints,
) -> Vec<Mapping> {
    let axes: Vec<Axis> = arch
        .levels()
        .iter()
        .enumerate()
        .flat_map(|(level, mem)| {
            let fan = mem.fanout();
            [
                (SlotKind::SpatialX, fan.x(), constraints.spatial_x(level)),
                (SlotKind::SpatialY, fan.y(), constraints.spatial_y(level)),
            ]
            .into_iter()
            .filter(|&(_, extent, _)| extent > 1)
            .map(move |(kind, extent, allowed)| Axis {
                level,
                kind,
                extent,
                candidates: allowed.iter().filter(|&d| shape.bound(d) > 1).collect(),
            })
            .collect::<Vec<_>>()
        })
        .collect();

    let mut out = Vec::new();
    let mut assignment: Vec<Option<Dim>> = vec![None; axes.len()];
    build(arch, shape, &axes, 0, &mut assignment, &mut out);
    // Always include the all-temporal fallback (valid on any hierarchy
    // whose innermost buffers hold one element).
    if let Ok(serial) = Mapping::builder(arch.num_levels()).build_for_bounds(shape.bounds()) {
        out.push(serial);
    }
    out.dedup();
    out
}

fn build(
    arch: &Architecture,
    shape: &ProblemShape,
    axes: &[Axis],
    idx: usize,
    assignment: &mut Vec<Option<Dim>>,
    out: &mut Vec<Mapping>,
) {
    if idx == axes.len() {
        if let Some(m) = realize(arch, shape, axes, assignment) {
            out.push(m);
        }
        return;
    }
    if axes[idx].candidates.is_empty() {
        assignment[idx] = None;
        build(arch, shape, axes, idx + 1, assignment, out);
        return;
    }
    for &d in &axes[idx].candidates {
        assignment[idx] = Some(d);
        build(arch, shape, axes, idx + 1, assignment, out);
    }
    assignment[idx] = None;
}

/// Materializes one assignment into a mapping: each axis takes the full
/// extent along its dimension (capped by what remains of the bound after
/// inner axes along the same dimension), reduction dims are ordered
/// innermost at every temporal block, and mid-level buffers are then
/// greedily filled with temporal tiles (doubling each dimension while
/// the stored tensors still fit) so intermediate levels actually capture
/// reuse instead of streaming everything from DRAM.
fn realize(
    arch: &Architecture,
    shape: &ProblemShape,
    axes: &[Axis],
    assignment: &[Option<Dim>],
) -> Option<Mapping> {
    let num_levels = arch.num_levels();
    let mut builder = Mapping::builder(num_levels);
    // Track the spatial product already assigned per dim so stacked axes
    // along one dim never overshoot the bound.
    let mut used = [1u64; 7];
    let mut spatial: Vec<(Dim, usize, SlotKind, u64)> = Vec::new();
    // Axes are built innermost-level-last in `axes`; walk from the
    // innermost (highest level index) outward so inner fanouts grab the
    // dimension first.
    let mut order: Vec<usize> = (0..axes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(axes[i].level));
    for &i in &order {
        let Some(d) = assignment[i] else { continue };
        let remaining = shape.bound(d).div_ceil(used[d.index()]);
        let factor = axes[i].extent.min(remaining);
        if factor <= 1 {
            continue;
        }
        builder.set_tile(d, axes[i].level, axes[i].kind, factor);
        spatial.push((d, axes[i].level, axes[i].kind, factor));
        used[d.index()] = used[d.index()].saturating_mul(factor);
    }
    // Reduction-innermost permutation keeps partial sums resident.
    let perm = [Dim::S, Dim::R, Dim::C, Dim::Q, Dim::P, Dim::M, Dim::N];
    for level in 0..num_levels {
        builder.set_permutation(level, perm);
    }

    // Greedy capacity filling: for every level below DRAM, innermost
    // first, double each dimension's temporal tile while everything the
    // level stores still fits. Growth is capped by the extent left after
    // the spatial factors (and other levels' tiles) so parallelism is
    // never traded away for buffering. Reduction dims first (psum
    // locality).
    let mut temporal = vec![[1u64; 7]; num_levels];
    let priority = [Dim::C, Dim::S, Dim::R, Dim::Q, Dim::P, Dim::M, Dim::N];
    for level in (1..num_levels).rev() {
        for d in priority {
            loop {
                let current = temporal[level][d.index()];
                let others: u64 = used[d.index()].saturating_mul(
                    temporal
                        .iter()
                        .enumerate()
                        .filter(|&(l, _)| l != level)
                        .map(|(_, t)| t[d.index()])
                        .product(),
                );
                let remaining = shape.bound(d).div_ceil(others.max(1));
                let grown = (current * 2).min(remaining);
                if grown == current {
                    break;
                }
                temporal[level][d.index()] = grown;
                if !fits(arch, shape, &spatial, &temporal, level) {
                    temporal[level][d.index()] = current;
                    break;
                }
            }
            if temporal[level][d.index()] > 1 {
                builder.set_tile(d, level, SlotKind::Temporal, temporal[level][d.index()]);
            }
        }
    }
    builder.build_for_bounds(shape.bounds()).ok()
}

/// Whether every tensor stored at `level` (and at every level inside it)
/// still fits with the candidate spatial + temporal factors.
fn fits(
    arch: &Architecture,
    shape: &ProblemShape,
    spatial: &[(Dim, usize, SlotKind, u64)],
    temporal: &[[u64; 7]],
    _level: usize,
) -> bool {
    let num_levels = arch.num_levels();
    let mut builder = Mapping::builder(num_levels);
    for &(d, lvl, kind, f) in spatial {
        builder.set_tile(d, lvl, kind, f);
    }
    for (lvl, factors) in temporal.iter().enumerate() {
        for d in Dim::ALL {
            if factors[d.index()] > 1 {
                builder.set_tile(d, lvl, SlotKind::Temporal, factors[d.index()]);
            }
        }
    }
    let Ok(mapping) = builder.build_for_bounds(shape.bounds()) else {
        return false;
    };
    for lvl in 1..num_levels {
        let tile = mapping.tile_at_level(lvl);
        let mut shared = 0u64;
        for op in ruby_workload::Operand::ALL {
            let mem = arch.level(lvl);
            if !mem.stores(op) {
                continue;
            }
            let fp = shape.tensor(op).footprint(&tile);
            match mem.capacity() {
                ruby_arch::Capacity::Unbounded => {}
                ruby_arch::Capacity::Shared(limit) => {
                    shared = shared.saturating_add(fp);
                    if shared > limit {
                        return false;
                    }
                }
                ruby_arch::Capacity::PerOperand(_) => {
                    if fp > mem.capacity_for(op).unwrap_or(u64::MAX) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_model::{evaluate, ModelOptions};

    #[test]
    fn rank1_candidate_fills_the_array() {
        let arch = presets::toy_linear(16, 1024);
        let shape = ProblemShape::rank1("d", 113);
        let c = utilization_first(&arch, &shape, &Constraints::unconstrained(2));
        let best = c
            .iter()
            .filter_map(|m| evaluate(&arch, &shape, m, &ModelOptions::default()).ok())
            .min_by(|a, b| a.edp().total_cmp(&b.edp()))
            .expect("some candidate is valid");
        assert_eq!(best.cycles(), 8);
        assert!(best.utilization() > 0.85);
    }

    #[test]
    fn eyeriss_alexnet_candidates_reach_high_utilization() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("alex2", 1, 96, 48, 27, 27, 5, 5, (1, 1));
        let constraints = Constraints::eyeriss_row_stationary(3, 1);
        let candidates = utilization_first(&arch, &shape, &constraints);
        assert!(candidates.len() > 2, "expected several assignments");
        let best_util = candidates
            .iter()
            .filter_map(|m| evaluate(&arch, &shape, m, &ModelOptions::default()).ok())
            .map(|r| r.utilization())
            .fold(0.0f64, f64::max);
        assert!(best_util > 0.9, "best heuristic utilization {best_util}");
    }

    #[test]
    fn serial_fallback_always_present() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 7);
        let c = utilization_first(
            &arch,
            &shape,
            // Disallow everything spatially: only the fallback survives.
            &Constraints::unconstrained(2).with_spatial_x(0, &[]),
        );
        assert!(c.iter().any(|m| m.compute_cycles() == 7));
    }

    #[test]
    fn stacked_axes_share_one_dimension() {
        // Both axes allowed only M: inner axis takes 12, outer the rest.
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::gemm("g", 100, 1, 1);
        let constraints = Constraints::unconstrained(3)
            .with_spatial_x(1, &[Dim::M])
            .with_spatial_y(1, &[Dim::M]);
        let candidates = utilization_first(&arch, &shape, &constraints);
        let ok = candidates.iter().any(|m| {
            let (x, y) = m.spatial_extent(1);
            x <= 14 && y <= 12 && x * y >= 100
        });
        assert!(
            ok,
            "expected a candidate covering the bound across both axes"
        );
    }
}
