//! Deterministic enumeration of a mapspace's tile-chain support.
//!
//! Random sampling (the paper's search) draws per-dimension factor
//! vectors; many distinct draws collapse to the *same* tile chains after
//! clamping and outer-tile stretching, and most of their joint
//! combinations violate shared fanout. This module enumerates the
//! deduplicated chain support directly:
//!
//! 1. **Per-dimension tables** ([`EnumTables::build`]): for each
//!    dimension, every tile chain the [`crate::Sampler`] can produce
//!    under the mapspace's factorization rules, deduplicated and grouped
//!    by *spatial signature* — the chain's loop count at every spatial
//!    slot. Chains are exactly the sampler's support: every chain is
//!    reproducible with spatial factors equal to its own loop counts
//!    (clamped slots have `count = ceil(bound/cum)`, the largest factor
//!    the sampler may draw there), so signature-level bookkeeping loses
//!    nothing.
//! 2. **Regions** ([`EnumTables::regions`]): joint combinations of one
//!    signature group per dimension that satisfy shared fanout (the
//!    per-slot product of counts fits the axis extent — equivalent to
//!    the sampler's sequential floor-division capacity splitting, in any
//!    dimension order) and spatial exclusivity. Each full mapping lies
//!    in exactly one region, so regions partition the space with no
//!    duplicates. Regions are sorted by their *cycle floor* (product of
//!    per-dimension minimal sequential steps), cheapest-possible first.
//! 3. **[`SubspaceIterator`]**: a resumable mixed-radix walk over one
//!    region's leaf index range `[start, end)`. Disjoint ranges touch
//!    disjoint mappings, so threads split work by index arithmetic
//!    alone; the same `(region, index)` always denotes the same mapping,
//!    making enumeration order deterministic across runs and threads.
//!
//! Permutations are *not* enumerated (the iterator leaves the reused
//! mapping's permutations untouched); search backends polish them
//! separately.

use std::collections::{BTreeMap, BTreeSet};

use ruby_mapping::{profile, Mapping, SlotLayout};
use ruby_workload::Dim;

use crate::factor;
use crate::space::{enumerate_capped_factorizations, Mapspace, MapspaceKind, SlotRule};

/// Size guards for table construction. Enumeration is only worthwhile
/// when the deduplicated per-dimension support is modest; past these
/// limits [`EnumTables::build`] returns an error and callers fall back
/// to random sampling.
#[derive(Debug, Clone, Copy)]
pub struct EnumLimits {
    /// Maximum deduplicated chains per dimension.
    pub max_entries_per_dim: usize,
    /// Maximum fanout-feasible signature combinations (regions).
    pub max_regions: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_entries_per_dim: 200_000,
            max_regions: 250_000,
        }
    }
}

/// Why table construction refused a mapspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumError {
    /// One dimension's deduplicated chain table exceeded the limit.
    DimTooLarge {
        /// The offending dimension.
        dim: Dim,
        /// The configured entry limit.
        limit: usize,
    },
    /// The number of feasible regions exceeded the limit.
    TooManyRegions {
        /// The configured region limit.
        limit: usize,
    },
}

impl std::fmt::Display for EnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumError::DimTooLarge { dim, limit } => {
                write!(f, "dimension {dim:?} has more than {limit} tile chains")
            }
            EnumError::TooManyRegions { limit } => {
                write!(f, "more than {limit} fanout-feasible regions")
            }
        }
    }
}

impl std::error::Error for EnumError {}

/// One deduplicated tile chain of one dimension, with its sequential
/// step count (the dimension's contribution to compute cycles).
#[derive(Debug, Clone)]
struct DimEntry {
    chain: Vec<u64>,
    steps: u64,
}

/// All chains of one dimension sharing a spatial signature (loop counts
/// at every spatial slot, innermost first).
#[derive(Debug, Clone)]
struct SigGroup {
    counts: Vec<u64>,
    min_steps: u64,
    entries: Vec<DimEntry>,
}

#[derive(Debug, Clone)]
struct DimTable {
    groups: Vec<SigGroup>,
}

/// One fanout-feasible combination of signature groups (one per
/// dimension). Regions partition the enumerable space: every mapping's
/// chain tuple belongs to exactly one region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Per-dimension group index (by [`Dim::ALL`] order).
    group: [usize; 7],
    /// Mappings in this region (saturating; only indices below the true
    /// product are ever decoded).
    pub leaves: u64,
    /// Product of per-dimension minimal sequential steps — a lower bound
    /// on the compute cycles of every mapping in the region.
    pub min_steps: u64,
}

/// Deduplicated per-dimension chain tables plus the sorted feasible
/// regions of one [`Mapspace`].
#[derive(Debug, Clone)]
pub struct EnumTables {
    layout: SlotLayout,
    /// Slot indices of every spatial slot, innermost first — the index
    /// space of each [`SigGroup::counts`] vector.
    spatial_slots: Vec<usize>,
    tables: Vec<DimTable>,
    regions: Vec<Region>,
    total_leaves: u64,
}

impl EnumTables {
    /// Builds the tables and regions, or reports why the space is too
    /// large to enumerate within `limits`.
    ///
    /// # Errors
    ///
    /// Returns [`EnumError`] when a per-dimension table or the region
    /// set exceeds `limits`; callers should fall back to sampling.
    pub fn build(space: &Mapspace, limits: &EnumLimits) -> Result<Self, EnumError> {
        let layout = SlotLayout::new(space.arch().num_levels());
        let spatial_slots: Vec<usize> = layout
            .iter()
            .filter(|&s| layout.kind_of(s).is_spatial())
            .map(|s| s.index())
            .collect();

        let mut tables = Vec::with_capacity(7);
        for dim in Dim::ALL {
            let bound = space.shape().bound(dim);
            let rules = space.slot_rules_full(dim);
            let chains =
                enumerate_dim_chains(space.kind(), bound, &rules, limits).map_err(|()| {
                    EnumError::DimTooLarge {
                        dim,
                        limit: limits.max_entries_per_dim,
                    }
                })?;
            let mut by_sig: BTreeMap<Vec<u64>, Vec<DimEntry>> = BTreeMap::new();
            for chain in chains {
                let sig: Vec<u64> = spatial_slots
                    .iter()
                    .map(|&s| chain[s + 1].div_ceil(chain[s]))
                    .collect();
                let steps = profile::sequential_steps(&chain, &layout);
                by_sig
                    .entry(sig)
                    .or_default()
                    .push(DimEntry { chain, steps });
            }
            let groups = by_sig
                .into_iter()
                .map(|(counts, mut entries)| {
                    // Cheapest sequential steps first: leaf 0 of every
                    // region is then its fastest member, and lexicographic
                    // enumeration reaches low-latency leaves early.
                    entries.sort_by(|a, b| (a.steps, &a.chain).cmp(&(b.steps, &b.chain)));
                    SigGroup {
                        counts,
                        // lint: allow(panics) — groups are created from
                        // at least one entry, never empty.
                        min_steps: entries.first().expect("non-empty").steps,
                        entries,
                    }
                })
                .collect();
            tables.push(DimTable { groups });
        }

        let regions = build_regions(space, &layout, &spatial_slots, &tables, limits)?;
        let total_leaves = regions
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.leaves));
        Ok(EnumTables {
            layout,
            spatial_slots,
            tables,
            regions,
            total_leaves,
        })
    }

    /// The spatial fanout `region` actually uses at each level: per
    /// level, the product over its spatial slots of the joint (over all
    /// dimensions) spatial loop counts. Every mapping in the region
    /// shares this signature exactly, so cost models can specialize
    /// their bounds to it.
    pub fn region_spatial_utilization(&self, region: &Region) -> Vec<u64> {
        let mut utilized = vec![1u64; self.layout.num_levels()];
        for (j, &s) in self.spatial_slots.iter().enumerate() {
            let level = self.layout.level_of(ruby_mapping::SlotId::new(s));
            for (di, table) in self.tables.iter().enumerate() {
                let count = table.groups[region.group[di]].counts[j];
                utilized[level] = utilized[level].saturating_mul(count);
            }
        }
        utilized
    }

    /// Feasible regions, cheapest cycle floor first (ties broken by
    /// group indices, so the order is deterministic).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total mappings across all regions (saturating).
    pub fn total_leaves(&self) -> u64 {
        self.total_leaves
    }

    /// Total mappings across all regions, or `None` when any region's
    /// leaf product or the sum saturated `u64` (such a space cannot be
    /// addressed by a single global index and callers must fall back
    /// to sampling). `u64::MAX` region counts are treated as saturated:
    /// `saturating_mul` collapses every overflow to exactly that value.
    pub fn exact_total_leaves(&self) -> Option<u64> {
        let mut acc = 0u64;
        for region in &self.regions {
            if region.leaves == u64::MAX {
                return None;
            }
            acc = acc.checked_add(region.leaves)?;
        }
        Some(acc)
    }

    /// The slot layout the chains were built for.
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }
}

/// Resumable mixed-radix iterator over one region's leaf index range.
/// Disjoint `[start, end)` ranges yield disjoint mappings; the mapping
/// at a given index is independent of how the range was partitioned.
#[derive(Debug)]
pub struct SubspaceIterator<'a> {
    tables: &'a EnumTables,
    region: &'a Region,
    pos: u64,
    end: u64,
}

impl<'a> SubspaceIterator<'a> {
    /// An iterator over `region`'s leaves `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or exceeds the region.
    pub fn new(tables: &'a EnumTables, region: &'a Region, start: u64, end: u64) -> Self {
        assert!(
            start <= end && end <= region.leaves,
            "leaf range {start}..{end} outside region of {} leaves",
            region.leaves
        );
        SubspaceIterator {
            tables,
            region,
            pos: start,
            end,
        }
    }

    /// Writes the next mapping's tile chains into `out` (permutations
    /// are left untouched) and returns its exact sequential step count,
    /// or `None` when the range is exhausted.
    pub fn next_into(&mut self, out: &mut Mapping) -> Option<u64> {
        if self.pos >= self.end {
            return None;
        }
        let mut idx = self.pos;
        self.pos += 1;
        let mut steps = 1u64;
        for (di, dim) in Dim::ALL.into_iter().enumerate() {
            let group = &self.tables.tables[di].groups[self.region.group[di]];
            let radix = group.entries.len() as u64;
            let entry = &group.entries[(idx % radix) as usize];
            idx /= radix;
            out.set_tile_chain(dim, &entry.chain);
            steps = steps.saturating_mul(entry.steps);
        }
        Some(steps)
    }
}

/// Enumerates the deduplicated chain support of one dimension under one
/// mapspace kind's factorization rules, mirroring the sampler's factor
/// ranges exactly. `Err(())` means the table outgrew the entry limit.
fn enumerate_dim_chains(
    kind: MapspaceKind,
    bound: u64,
    rules: &[SlotRule],
    limits: &EnumLimits,
) -> Result<BTreeSet<Vec<u64>>, ()> {
    let mut out = BTreeSet::new();
    let limit = limits.max_entries_per_dim;
    match kind {
        MapspaceKind::Pfm => {
            let caps: Vec<Option<u64>> = rules.iter().map(|r| r.cap).collect();
            for factors in enumerate_capped_factorizations(bound, &caps) {
                insert_chain(&mut out, bound, &factors, limit)?;
            }
        }
        MapspaceKind::Ruby | MapspaceKind::RubyT => {
            let spatial_free = kind == MapspaceKind::Ruby;
            let divs = if spatial_free {
                Vec::new()
            } else {
                factor::divisors(bound)
            };
            let mut factors = Vec::with_capacity(rules.len());
            recurse_free(
                bound,
                rules,
                &divs,
                spatial_free,
                1,
                &mut factors,
                &mut out,
                limit,
            )?;
        }
        MapspaceKind::RubyS => {
            let spatial_positions: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| r.spatial)
                .map(|(i, _)| i)
                .collect();
            let num_temporal = rules.len() - spatial_positions.len();
            let mut spatial = Vec::with_capacity(spatial_positions.len());
            recurse_ruby_s(
                bound,
                rules,
                &spatial_positions,
                num_temporal,
                1,
                &mut spatial,
                &mut out,
                limit,
            )?;
        }
    }
    Ok(out)
}

/// Builds a chain from a per-slot factor vector the way
/// [`ruby_mapping::MappingBuilder`] does: cumulative product, clamped to
/// the bound, with the outermost entry stretched to the bound.
fn insert_chain(
    out: &mut BTreeSet<Vec<u64>>,
    bound: u64,
    factors: &[u64],
    limit: usize,
) -> Result<(), ()> {
    let mut chain = Vec::with_capacity(factors.len() + 1);
    chain.push(1u64);
    let mut cum = 1u64;
    for &f in factors {
        cum = cum.saturating_mul(f).min(bound);
        chain.push(cum);
    }
    // lint: allow(panics) — `chain` starts with a pushed 1 and grows,
    // so it always has a last element.
    *chain.last_mut().expect("non-empty chain") = bound;
    out.insert(chain);
    if out.len() > limit {
        return Err(());
    }
    Ok(())
}

/// Ruby / Ruby-T: walk slots innermost-first. Spatial factors range over
/// `[1, min(cap, ceil(bound/cum))]` (Ruby) or the divisors of the bound
/// within that cap (Ruby-T); temporal factors over `[1, ceil(bound/cum)]`.
/// The outermost slot is skipped: its chain entry is stretched to the
/// bound regardless of the factor drawn there, so all its choices alias.
#[allow(clippy::too_many_arguments)]
fn recurse_free(
    bound: u64,
    rules: &[SlotRule],
    divs: &[u64],
    spatial_free: bool,
    cum: u64,
    factors: &mut Vec<u64>,
    out: &mut BTreeSet<Vec<u64>>,
    limit: usize,
) -> Result<(), ()> {
    let slot = factors.len();
    if slot == rules.len() - 1 {
        factors.push(1);
        let r = insert_chain(out, bound, factors, limit);
        factors.pop();
        return r;
    }
    let rule = &rules[slot];
    let needed = bound.div_ceil(cum);
    let step = |f: u64, factors: &mut Vec<u64>, out: &mut BTreeSet<Vec<u64>>| {
        factors.push(f);
        let r = recurse_free(
            bound,
            rules,
            divs,
            spatial_free,
            cum.saturating_mul(f).min(bound),
            factors,
            out,
            limit,
        );
        factors.pop();
        r
    };
    if rule.spatial {
        let cap = rule.cap.unwrap_or(u64::MAX).min(needed);
        if spatial_free {
            for f in 1..=cap {
                step(f, factors, out)?;
            }
        } else {
            for &f in divs.iter().filter(|&&f| f <= cap) {
                step(f, factors, out)?;
            }
        }
    } else {
        for f in 1..=needed {
            step(f, factors, out)?;
        }
    }
    Ok(())
}

/// Ruby-S: choose spatial factors (each in `[1, min(cap,
/// ceil(bound/Πs))]`, the sampler's range over the spatial-only
/// product), then perfectly factorize the residual `ceil(bound/Πs)`
/// across the temporal slots and interleave in slot order.
#[allow(clippy::too_many_arguments)]
fn recurse_ruby_s(
    bound: u64,
    rules: &[SlotRule],
    spatial_positions: &[usize],
    num_temporal: usize,
    spatial_product: u64,
    spatial: &mut Vec<u64>,
    out: &mut BTreeSet<Vec<u64>>,
    limit: usize,
) -> Result<(), ()> {
    if spatial.len() == spatial_positions.len() {
        let residual = bound.div_ceil(spatial_product);
        let temporal_caps = vec![None; num_temporal];
        for temporal in enumerate_capped_factorizations(residual, &temporal_caps) {
            let mut t = temporal.into_iter();
            let mut s = spatial.iter().copied();
            let factors: Vec<u64> = rules
                .iter()
                .map(|r| {
                    // lint: allow(panics) — both iterators were built
                    // with exactly one factor per slot of their kind.
                    if r.spatial {
                        s.next().expect("one factor per spatial slot")
                    } else {
                        t.next().expect("one factor per temporal slot")
                    }
                })
                .collect();
            insert_chain(out, bound, &factors, limit)?;
        }
        return Ok(());
    }
    let rule = &rules[spatial_positions[spatial.len()]];
    let needed = bound.div_ceil(spatial_product);
    let cap = rule.cap.unwrap_or(u64::MAX).min(needed);
    for f in 1..=cap {
        spatial.push(f);
        let r = recurse_ruby_s(
            bound,
            rules,
            spatial_positions,
            num_temporal,
            spatial_product.saturating_mul(f),
            spatial,
            out,
            limit,
        );
        spatial.pop();
        r?;
    }
    Ok(())
}

/// Depth-first search over one signature group per dimension, keeping
/// per-spatial-slot remaining capacity (sequential floor division — the
/// same arithmetic as the sampler's shared [`crate::space`] axis states)
/// and exclusivity ownership.
fn build_regions(
    space: &Mapspace,
    layout: &SlotLayout,
    spatial_slots: &[usize],
    tables: &[DimTable],
    limits: &EnumLimits,
) -> Result<Vec<Region>, EnumError> {
    use ruby_mapping::SlotKind;
    let exclusive = space.constraints().exclusive_spatial();
    let mut remaining: Vec<u64> = spatial_slots
        .iter()
        .map(|&s| {
            let slot = ruby_mapping::SlotId::new(s);
            let fanout = space.arch().levels()[layout.level_of(slot)].fanout();
            match layout.kind_of(slot) {
                SlotKind::SpatialX => fanout.x(),
                SlotKind::SpatialY => fanout.y(),
                // lint: allow(panics) — this closure is only applied to
                // the spatial slots of the layout.
                SlotKind::Temporal => unreachable!("spatial slots only"),
            }
        })
        .collect();
    let mut taken = vec![false; spatial_slots.len()];
    let mut group = [0usize; 7];
    let mut regions = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        tables: &[DimTable],
        exclusive: bool,
        depth: usize,
        remaining: &mut Vec<u64>,
        taken: &mut Vec<bool>,
        group: &mut [usize; 7],
        regions: &mut Vec<Region>,
        max_regions: usize,
    ) -> Result<(), EnumError> {
        if depth == 7 {
            let leaves = group
                .iter()
                .enumerate()
                .map(|(di, &g)| tables[di].groups[g].entries.len() as u64)
                .fold(1u64, u64::saturating_mul);
            let min_steps = group
                .iter()
                .enumerate()
                .map(|(di, &g)| tables[di].groups[g].min_steps)
                .fold(1u64, u64::saturating_mul);
            regions.push(Region {
                group: *group,
                leaves,
                min_steps,
            });
            if regions.len() > max_regions {
                return Err(EnumError::TooManyRegions { limit: max_regions });
            }
            return Ok(());
        }
        'groups: for (gi, g) in tables[depth].groups.iter().enumerate() {
            for (j, &c) in g.counts.iter().enumerate() {
                if c > 1 && ((exclusive && taken[j]) || c > remaining[j]) {
                    continue 'groups;
                }
            }
            let mut changed = Vec::new();
            for (j, &c) in g.counts.iter().enumerate() {
                if c > 1 {
                    changed.push((j, remaining[j], taken[j]));
                    remaining[j] /= c;
                    taken[j] = true;
                }
            }
            group[depth] = gi;
            let r = dfs(
                tables,
                exclusive,
                depth + 1,
                remaining,
                taken,
                group,
                regions,
                max_regions,
            );
            for (j, rem, tk) in changed.into_iter().rev() {
                remaining[j] = rem;
                taken[j] = tk;
            }
            r?;
        }
        Ok(())
    }

    dfs(
        tables,
        exclusive,
        0,
        &mut remaining,
        &mut taken,
        &mut group,
        &mut regions,
        limits.max_regions,
    )?;
    regions.sort_by_key(|a| (a.min_steps, a.group));
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_workload::ProblemShape;

    fn toy(kind: MapspaceKind, pes: u64, d: u64) -> Mapspace {
        Mapspace::new(
            presets::toy_linear(pes, 1024),
            ProblemShape::rank1("d", d),
            kind,
        )
    }

    fn enumerate_all(tables: &EnumTables, space: &Mapspace) -> Vec<Mapping> {
        let mut out = Vec::new();
        let mut mapping = Mapping::builder(space.arch().num_levels())
            .build_for_bounds(space.shape().bounds())
            .unwrap();
        for region in tables.regions() {
            let mut it = SubspaceIterator::new(tables, region, 0, region.leaves);
            while it.next_into(&mut mapping).is_some() {
                out.push(mapping.clone());
            }
        }
        out
    }

    #[test]
    fn enumeration_has_no_duplicate_chains() {
        for kind in MapspaceKind::ALL {
            let space = toy(kind, 4, 12);
            let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
            let all = enumerate_all(&tables, &space);
            assert_eq!(all.len() as u64, tables.total_leaves(), "{kind}");
            let keys: BTreeSet<Vec<u64>> =
                all.iter().map(|m| m.tile_chain(Dim::M).to_vec()).collect();
            assert_eq!(keys.len(), all.len(), "{kind}: duplicate chains");
        }
    }

    #[test]
    fn iterator_ranges_partition_the_region() {
        let space = toy(MapspaceKind::RubyS, 4, 12);
        let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
        let region = &tables.regions()[0];
        let mut mapping = space.sample(&mut {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(0)
        });
        let whole: Vec<Vec<u64>> = {
            let mut it = SubspaceIterator::new(&tables, region, 0, region.leaves);
            let mut v = Vec::new();
            while it.next_into(&mut mapping).is_some() {
                v.push(mapping.tile_chain(Dim::M).to_vec());
            }
            v
        };
        let mid = region.leaves / 2;
        let mut split = Vec::new();
        for (a, b) in [(0, mid), (mid, region.leaves)] {
            let mut it = SubspaceIterator::new(&tables, region, a, b);
            while it.next_into(&mut mapping).is_some() {
                split.push(mapping.tile_chain(Dim::M).to_vec());
            }
        }
        assert_eq!(whole, split);
    }

    #[test]
    fn regions_are_sorted_by_cycle_floor() {
        let space = toy(MapspaceKind::Ruby, 4, 24);
        let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
        let floors: Vec<u64> = tables.regions().iter().map(|r| r.min_steps).collect();
        assert!(floors.windows(2).all(|w| w[0] <= w[1]));
        assert!(!floors.is_empty());
    }

    #[test]
    fn region_floor_bounds_every_leaf() {
        let space = toy(MapspaceKind::RubyS, 4, 30);
        let tables = EnumTables::build(&space, &EnumLimits::default()).unwrap();
        let mut mapping = Mapping::builder(2)
            .build_for_bounds(space.shape().bounds())
            .unwrap();
        for region in tables.regions() {
            let mut it = SubspaceIterator::new(&tables, region, 0, region.leaves);
            while let Some(steps) = it.next_into(&mut mapping) {
                assert!(steps >= region.min_steps);
                assert_eq!(steps, mapping.compute_cycles());
            }
        }
    }

    #[test]
    fn tiny_entry_limit_is_reported() {
        let space = toy(MapspaceKind::Ruby, 4, 100);
        let limits = EnumLimits {
            max_entries_per_dim: 3,
            ..EnumLimits::default()
        };
        assert!(matches!(
            EnumTables::build(&space, &limits),
            Err(EnumError::DimTooLarge { dim: Dim::M, .. })
        ));
    }
}
