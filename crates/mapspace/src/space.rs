//! The four mapspaces: PFM (perfect factorization, Timeloop-style) and
//! the paper's imperfect expansions Ruby, Ruby-S and Ruby-T.

use rand::seq::SliceRandom;
use rand::Rng;
use ruby_arch::Architecture;
use ruby_mapping::{Mapping, MappingBuilder, SlotKind};
use ruby_telemetry::LazyCounter;
use ruby_workload::{Dim, ProblemShape};

use std::sync::OnceLock;

use crate::constraints::Constraints;
use crate::enumerate::{EnumLimits, EnumTables};
use crate::factor;

/// Sampler draw counter; a no-op unless the `telemetry` feature is on.
static SAMPLES: LazyCounter = LazyCounter::new("mapspace.samples");

/// Which factorization rules the mapspace admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapspaceKind {
    /// Perfect factorization everywhere (the Timeloop baseline, eq. 1).
    Pfm,
    /// Imperfect factorization at every slot (the unconstrained Ruby
    /// space, eq. 5).
    Ruby,
    /// Imperfect factorization only at *spatial* slots; the surviving
    /// temporal extent (`ceil(D / spatial)`) is factorized perfectly.
    RubyS,
    /// Imperfect factorization only at *temporal* slots; spatial factors
    /// must divide the dimension bound.
    RubyT,
}

serde::impl_serde_unit_enum!(MapspaceKind {
    Pfm,
    Ruby,
    RubyS,
    RubyT
});

impl MapspaceKind {
    /// All four kinds, in presentation order.
    pub const ALL: [MapspaceKind; 4] = [
        MapspaceKind::Pfm,
        MapspaceKind::Ruby,
        MapspaceKind::RubyS,
        MapspaceKind::RubyT,
    ];

    /// Display name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            MapspaceKind::Pfm => "PFM",
            MapspaceKind::Ruby => "Ruby",
            MapspaceKind::RubyS => "Ruby-S",
            MapspaceKind::RubyT => "Ruby-T",
        }
    }
}

impl std::fmt::Display for MapspaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A mapspace: architecture + workload + constraints + factorization
/// rules. Supports random sampling (the generation half of Timeloop's
/// random-pruned search), exhaustive perfect-space enumeration for toy
/// studies, and tiling-count estimation (Table I).
#[derive(Debug, Clone)]
pub struct Mapspace {
    arch: Architecture,
    shape: ProblemShape,
    constraints: Constraints,
    kind: MapspaceKind,
    /// Enumeration tables, built lazily on first use and shared by
    /// every strategy run against this space (the build walks the full
    /// factorization lattice, so it is milliseconds — far too expensive
    /// to repeat per search phase). `None` inside the cell records a
    /// build failure (limits exceeded), so callers fall back to the
    /// sampler without retrying the doomed build.
    tables: OnceLock<Option<EnumTables>>,
}

/// Internal per-slot sampling rule for one dimension. Shared with the
/// enumeration backend in [`crate::enumerate`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotRule {
    pub(crate) spatial: bool,
    /// Capacity for this dim at this slot: fanout extent if spatial and
    /// allowed, 1 if spatial and disallowed, `None` (unbounded) if
    /// temporal.
    pub(crate) cap: Option<u64>,
    pub(crate) level: usize,
    pub(crate) kind: SlotKind,
}

/// Remaining spatial capacity of one level's fanout, with the owning
/// dimension per axis when exclusivity is enforced.
#[derive(Debug, Clone, Copy)]
struct AxisState {
    x: u64,
    y: u64,
    x_owner: Option<Dim>,
    y_owner: Option<Dim>,
}

impl Mapspace {
    /// Creates an unconstrained mapspace.
    pub fn new(arch: Architecture, shape: ProblemShape, kind: MapspaceKind) -> Self {
        let levels = arch.num_levels();
        Mapspace {
            arch,
            shape,
            constraints: Constraints::unconstrained(levels),
            kind,
            tables: OnceLock::new(),
        }
    }

    /// The enumeration tables for this space, built on first call and
    /// cached for the lifetime of the value. Returns `None` when the
    /// space exceeds [`EnumLimits::default`] (callers fall back to the
    /// rejection sampler).
    pub fn enum_tables(&self) -> Option<&EnumTables> {
        self.tables
            .get_or_init(|| EnumTables::build(self, &EnumLimits::default()).ok())
            .as_ref()
    }

    /// Replaces the constraints.
    ///
    /// # Panics
    ///
    /// Panics if the constraints cover a different number of levels.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        assert_eq!(
            constraints.num_levels(),
            self.arch.num_levels(),
            "constraints must cover every architecture level"
        );
        self.constraints = constraints;
        // The tables encode the constraints; drop any cached build.
        self.tables = OnceLock::new();
        self
    }

    /// The architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The workload.
    pub fn shape(&self) -> &ProblemShape {
        &self.shape
    }

    /// The constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The factorization rules.
    pub fn kind(&self) -> MapspaceKind {
        self.kind
    }

    /// The per-dimension slot rules, innermost slot first, with spatial
    /// caps taken from the per-level axis states (remaining capacity and,
    /// under exclusivity, axis ownership).
    fn slot_rules(&self, dim: Dim, states: &[AxisState]) -> Vec<SlotRule> {
        let layout = ruby_mapping::SlotLayout::new(self.arch.num_levels());
        let exclusive = self.constraints.exclusive_spatial();
        layout
            .iter()
            .map(|slot| {
                let level = layout.level_of(slot);
                let kind = layout.kind_of(slot);
                match kind {
                    SlotKind::Temporal => SlotRule {
                        spatial: false,
                        cap: None,
                        level,
                        kind,
                    },
                    SlotKind::SpatialX => {
                        let allowed = self.constraints.spatial_x(level).contains(dim)
                            && (!exclusive || states[level].x_owner.is_none_or(|o| o == dim));
                        let cap = if allowed { states[level].x } else { 1 };
                        SlotRule {
                            spatial: true,
                            cap: Some(cap),
                            level,
                            kind,
                        }
                    }
                    SlotKind::SpatialY => {
                        let allowed = self.constraints.spatial_y(level).contains(dim)
                            && (!exclusive || states[level].y_owner.is_none_or(|o| o == dim));
                        let cap = if allowed { states[level].y } else { 1 };
                        SlotRule {
                            spatial: true,
                            cap: Some(cap),
                            level,
                            kind,
                        }
                    }
                }
            })
            .collect()
    }

    /// The per-dimension slot rules against *full* (unconsumed) fanouts:
    /// the caps a dimension would see if it were sampled first. The
    /// enumeration backend uses these as per-dimension upper bounds and
    /// re-applies joint fanout sharing (and exclusivity) when combining
    /// dimensions into regions.
    pub(crate) fn slot_rules_full(&self, dim: Dim) -> Vec<SlotRule> {
        let states: Vec<AxisState> = self
            .arch
            .levels()
            .iter()
            .map(|l| AxisState {
                x: l.fanout().x(),
                y: l.fanout().y(),
                x_owner: None,
                y_owner: None,
            })
            .collect();
        self.slot_rules(dim, &states)
    }

    /// Draws one mapping uniformly-ish at random. Sampled mappings always
    /// respect spatial fanout limits and constraints; buffer capacities
    /// are checked later by the cost model, mirroring Timeloop's
    /// generate-then-filter flow.
    ///
    /// Allocates a fresh [`Mapping`] (and sampling scratch) per call;
    /// hot loops should hold a [`Sampler`] and call
    /// [`Sampler::sample_into`] instead.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Mapping {
        // lint: allow(panics) — the all-ones default factorization is
        // valid for every architecture/shape pair by construction.
        let mut out = Mapping::builder(self.arch.num_levels())
            .build_for_bounds(self.shape.bounds())
            .expect("default builder output is always valid");
        self.sampler().sample_into(&mut out, rng);
        out
    }

    /// Creates a reusable sampling scratch bound to this mapspace. One
    /// [`Sampler`] plus one reused [`Mapping`] makes the sampling half of
    /// a search loop allocation-free apart from per-dimension factor
    /// draws.
    pub fn sampler(&self) -> Sampler<'_> {
        Sampler {
            space: self,
            builder: Mapping::builder(self.arch.num_levels()),
            states: Vec::with_capacity(self.arch.num_levels()),
        }
    }

    /// PFM: assign the prime factors of `bound` to slots uniformly.
    fn sample_pfm<R: Rng + ?Sized>(&self, bound: u64, rules: &[SlotRule], rng: &mut R) -> Vec<u64> {
        let caps: Vec<Option<u64>> = rules.iter().map(|r| r.cap).collect();
        // lint: allow(panics) — assignment only fails when every slot is
        // capped below a prime factor; temporal slots are never capped.
        factor::sample_factor_assignment(bound, &caps, rng)
            .expect("temporal slots are uncapped, so assignment always succeeds")
    }

    /// Ruby / Ruby-T: walk slots innermost-first choosing log-uniform
    /// factors. `spatial_free`: spatial factors may be non-divisors
    /// (Ruby); otherwise they are drawn from the divisors of `bound`
    /// (Ruby-T). `temporal_free` is always true here.
    fn sample_free<R: Rng + ?Sized>(
        &self,
        bound: u64,
        rules: &[SlotRule],
        rng: &mut R,
        spatial_free: bool,
        _temporal_free: bool,
    ) -> Vec<u64> {
        let divs = if spatial_free {
            Vec::new()
        } else {
            factor::divisors(bound)
        };
        let mut cum = 1u64;
        let mut out = Vec::with_capacity(rules.len());
        for rule in rules {
            let needed = bound.div_ceil(cum);
            let f = if rule.spatial {
                let cap = rule.cap.unwrap_or(u64::MAX).min(needed);
                if spatial_free {
                    sample_spatial_imperfect(cap, rng)
                } else {
                    // Divisor of the bound, within the cap.
                    let feasible: Vec<u64> = divs.iter().copied().filter(|&v| v <= cap).collect();
                    feasible[rng.gen_range(0..feasible.len())]
                }
            } else {
                factor::sample_log_uniform(needed, rng)
            };
            cum = cum.saturating_mul(f).min(bound);
            out.push(f);
        }
        out
    }

    /// Ruby-S: free spatial factors, then a perfect factorization of the
    /// residual temporal extent `ceil(bound / Πs)`.
    fn sample_ruby_s<R: Rng + ?Sized>(
        &self,
        bound: u64,
        rules: &[SlotRule],
        rng: &mut R,
    ) -> Vec<u64> {
        let mut spatial_product = 1u64;
        let mut factors = vec![1u64; rules.len()];
        for (i, rule) in rules.iter().enumerate() {
            if !rule.spatial {
                continue;
            }
            let needed = bound.div_ceil(spatial_product);
            let cap = rule.cap.unwrap_or(u64::MAX).min(needed);
            let f = sample_spatial_imperfect(cap, rng);
            factors[i] = f;
            spatial_product = spatial_product.saturating_mul(f);
        }
        let residual = bound.div_ceil(spatial_product);
        let temporal_caps: Vec<Option<u64>> =
            rules.iter().filter(|r| !r.spatial).map(|_| None).collect();
        // lint: allow(panics) — all-`None` caps cannot reject, and the
        // assignment yields exactly one factor per temporal slot.
        let temporal = factor::sample_factor_assignment(residual, &temporal_caps, rng)
            .expect("uncapped assignment always succeeds");
        let mut it = temporal.into_iter();
        for (i, rule) in rules.iter().enumerate() {
            if !rule.spatial {
                // lint: allow(panics) — same-length iterators, as above.
                factors[i] = it.next().expect("one factor per temporal slot");
            }
        }
        factors
    }

    /// The number of distinct tilings per dimension, multiplied across
    /// dimensions (permutations excluded; spatial caps applied per-dim,
    /// so joint fanout sharing across dims is not deducted). This is the
    /// Table I mapspace-size metric.
    pub fn count_tilings(&self) -> u128 {
        let remaining: Vec<AxisState> = self
            .arch
            .levels()
            .iter()
            .map(|l| AxisState {
                x: l.fanout().x(),
                y: l.fanout().y(),
                x_owner: None,
                y_owner: None,
            })
            .collect();
        Dim::ALL
            .iter()
            .map(|&d| {
                let bound = self.shape.bound(d);
                let rules = self.slot_rules(d, &remaining);
                self.count_dim(bound, &rules)
            })
            .fold(1u128, u128::saturating_mul)
    }

    fn count_dim(&self, bound: u64, rules: &[SlotRule]) -> u128 {
        let caps: Vec<Option<u64>> = rules.iter().map(|r| r.cap).collect();
        match self.kind {
            MapspaceKind::Pfm => factor::count_capped_factorizations(bound, &caps),
            MapspaceKind::Ruby => factor::count_free_chains(bound, &caps),
            MapspaceKind::RubyS => {
                let spatial_caps: Vec<u64> = rules
                    .iter()
                    .filter(|r| r.spatial)
                    .map(|r| r.cap.unwrap_or(1).min(bound))
                    .collect();
                let num_temporal = rules.iter().filter(|r| !r.spatial).count();
                count_ruby_s(bound, &spatial_caps, num_temporal, 1)
            }
            MapspaceKind::RubyT => {
                let temporal_nones: Vec<Option<u64>> =
                    rules.iter().filter(|r| !r.spatial).map(|_| None).collect();
                let spatial_caps: Vec<u64> = rules
                    .iter()
                    .filter(|r| r.spatial)
                    .map(|r| r.cap.unwrap_or(1).min(bound))
                    .collect();
                count_ruby_t(bound, &spatial_caps, &temporal_nones, 1)
            }
        }
    }

    /// Exhaustively enumerates the perfect-factorization tilings (default
    /// permutations), up to `limit` mappings. Intended for toy problems;
    /// the count grows combinatorially with the number of prime factors.
    pub fn enumerate_perfect(&self, limit: usize) -> Vec<Mapping> {
        let remaining: Vec<AxisState> = self
            .arch
            .levels()
            .iter()
            .map(|l| AxisState {
                x: l.fanout().x(),
                y: l.fanout().y(),
                x_owner: None,
                y_owner: None,
            })
            .collect();
        let per_dim: Vec<Vec<Vec<u64>>> = Dim::ALL
            .iter()
            .map(|&d| {
                let rules = self.slot_rules(d, &remaining);
                let caps: Vec<Option<u64>> = rules.iter().map(|r| r.cap).collect();
                enumerate_capped_factorizations(self.shape.bound(d), &caps)
            })
            .collect();
        let mut out = Vec::new();
        let mut indices = [0usize; 7];
        'outer: loop {
            let mut builder = Mapping::builder(self.arch.num_levels());
            for (di, &d) in Dim::ALL.iter().enumerate() {
                let rules = self.slot_rules(d, &remaining);
                for (si, rule) in rules.iter().enumerate() {
                    let f = per_dim[di][indices[di]][si];
                    if f > 1 {
                        builder.set_tile(d, rule.level, rule.kind, f);
                    }
                }
            }
            out.push(
                // lint: allow(panics) — enumerated factors come from the
                // bound's own divisors, which always build a valid chain.
                builder
                    .build_for_bounds(self.shape.bounds())
                    .expect("enumerated factors build valid chains"),
            );
            if out.len() >= limit {
                break;
            }
            // Odometer increment.
            for di in 0..7 {
                indices[di] += 1;
                if indices[di] < per_dim[di].len() {
                    continue 'outer;
                }
                indices[di] = 0;
            }
            break;
        }
        out
    }
}

/// Reusable sampling scratch for one [`Mapspace`] — the builder and
/// per-level fanout states survive across samples, so a hot search loop
/// avoids rebuilding them for every draw.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use ruby_arch::presets;
/// use ruby_mapspace::{Mapspace, MapspaceKind};
/// use ruby_workload::ProblemShape;
///
/// let space = Mapspace::new(
///     presets::toy_linear(4, 1024),
///     ProblemShape::rank1("d", 100),
///     MapspaceKind::RubyS,
/// );
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut sampler = space.sampler();
/// let mut mapping = space.sample(&mut rng);
/// for _ in 0..10 {
///     sampler.sample_into(&mut mapping, &mut rng);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Sampler<'a> {
    space: &'a Mapspace,
    builder: MappingBuilder,
    states: Vec<AxisState>,
}

impl Sampler<'_> {
    /// The mapspace this sampler draws from.
    pub fn space(&self) -> &Mapspace {
        self.space
    }

    /// Draws one mapping into `out`, reusing both `out`'s and the
    /// sampler's allocations. Produces the same mapping (and consumes the
    /// same RNG stream) as [`Mapspace::sample`].
    pub fn sample_into<R: Rng + ?Sized>(&mut self, out: &mut Mapping, rng: &mut R) {
        SAMPLES.inc();
        let space = self.space;
        let num_levels = space.arch.num_levels();
        self.builder.reset();
        for level in 0..num_levels {
            let mut perm = Dim::ALL;
            perm.shuffle(rng);
            self.builder.set_permutation(level, perm);
        }
        // Remaining spatial capacity per level, shared across dims.
        self.states.clear();
        self.states
            .extend(space.arch.levels().iter().map(|l| AxisState {
                x: l.fanout().x(),
                y: l.fanout().y(),
                x_owner: None,
                y_owner: None,
            }));
        let mut dims = Dim::ALL;
        dims.shuffle(rng);
        for d in dims {
            let bound = space.shape.bound(d);
            let rules = space.slot_rules(d, &self.states);
            let factors = match space.kind {
                MapspaceKind::Pfm => space.sample_pfm(bound, &rules, rng),
                MapspaceKind::Ruby => space.sample_free(bound, &rules, rng, true, true),
                MapspaceKind::RubyS => space.sample_ruby_s(bound, &rules, rng),
                MapspaceKind::RubyT => space.sample_free(bound, &rules, rng, false, true),
            };
            for (rule, &f) in rules.iter().zip(&factors) {
                if f > 1 {
                    self.builder.set_tile(d, rule.level, rule.kind, f);
                }
                if rule.spatial && f > 1 {
                    let state = &mut self.states[rule.level];
                    match rule.kind {
                        SlotKind::SpatialX => {
                            state.x /= f;
                            state.x_owner = Some(d);
                        }
                        SlotKind::SpatialY => {
                            state.y /= f;
                            state.y_owner = Some(d);
                        }
                        // lint: allow(panics) — the enclosing loop
                        // iterates spatial slots only.
                        SlotKind::Temporal => unreachable!(),
                    }
                }
            }
        }
        // lint: allow(panics) — sampled factors multiply back to the
        // dimension bound by construction, so the chain always builds.
        self.builder
            .build_into_for_bounds(space.shape.bounds(), out)
            .expect("sampled factors always build a valid chain");
    }
}

/// Samples an imperfect spatial factor in `[1, cap]`: half the time the
/// full fanout (the utilization-maximizing choice that motivates Ruby-S),
/// otherwise log-uniform across scales.
fn sample_spatial_imperfect<R: Rng + ?Sized>(cap: u64, rng: &mut R) -> u64 {
    if cap <= 1 {
        return 1;
    }
    if rng.gen_bool(0.5) {
        cap
    } else {
        factor::sample_log_uniform(cap, rng)
    }
}

/// Counts Ruby-S tilings: Σ over spatial factor combos of the perfect
/// factorizations of the residual extent.
fn count_ruby_s(bound: u64, spatial_caps: &[u64], num_temporal: usize, product: u64) -> u128 {
    match spatial_caps.split_first() {
        None => {
            let residual = bound.div_ceil(product);
            factor::count_ordered_factorizations(residual, num_temporal)
        }
        Some((&cap, rest)) => {
            let mut total = 0u128;
            for f in 1..=cap.min(bound.div_ceil(product)) {
                total = total.saturating_add(count_ruby_s(
                    bound,
                    rest,
                    num_temporal,
                    product.saturating_mul(f),
                ));
            }
            total
        }
    }
}

/// Counts Ruby-T tilings: Σ over spatial divisor combos (whose product
/// divides the bound) of the free temporal chains over the quotient.
fn count_ruby_t(
    bound: u64,
    spatial_caps: &[u64],
    temporal_nones: &[Option<u64>],
    product: u64,
) -> u128 {
    match spatial_caps.split_first() {
        None => factor::count_free_chains(bound / product, temporal_nones),
        Some((&cap, rest)) => {
            let quotient = bound / product;
            factor::divisors(quotient)
                .into_iter()
                .filter(|&f| f <= cap)
                .map(|f| count_ruby_t(bound, rest, temporal_nones, product * f))
                .fold(0u128, u128::saturating_add)
        }
    }
}

/// Enumerates every assignment of the factors of `n` to capped slots.
pub(crate) fn enumerate_capped_factorizations(n: u64, caps: &[Option<u64>]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut current = vec![1u64; caps.len()];
    fn recurse(
        remaining: u64,
        slot: usize,
        caps: &[Option<u64>],
        current: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
    ) {
        if slot == caps.len() {
            if remaining == 1 {
                out.push(current.clone());
            }
            return;
        }
        for f in factor::divisors(remaining) {
            if let Some(c) = caps[slot] {
                if f > c {
                    continue;
                }
            }
            current[slot] = f;
            recurse(remaining / f, slot + 1, caps, current, out);
        }
        current[slot] = 1;
    }
    recurse(n, 0, caps, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ruby_arch::presets;

    fn toy_space(kind: MapspaceKind, pes: u64, d: u64) -> Mapspace {
        Mapspace::new(
            presets::toy_linear(pes, 1024),
            ProblemShape::rank1("d", d),
            kind,
        )
    }

    #[test]
    fn pfm_samples_are_perfect() {
        let space = toy_space(MapspaceKind::Pfm, 9, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = space.sample(&mut rng);
            assert!(!m.is_imperfect(), "PFM must never produce remainders");
            // Spatial extent within the 9-PE fanout.
            let (x, y) = m.spatial_extent(0);
            assert!(x <= 9 && y <= 1, "spatial {x}x{y}");
        }
    }

    #[test]
    fn ruby_s_spatial_factors_obey_fanout() {
        let space = toy_space(MapspaceKind::RubyS, 9, 113);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut saw_imperfect = false;
        for _ in 0..200 {
            let m = space.sample(&mut rng);
            let (x, _) = m.spatial_extent(0);
            assert!(x <= 9);
            saw_imperfect |= m.is_imperfect();
        }
        assert!(saw_imperfect, "Ruby-S on a prime bound must use remainders");
    }

    #[test]
    fn ruby_t_spatial_factors_divide_bound() {
        let space = toy_space(MapspaceKind::RubyT, 9, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let m = space.sample(&mut rng);
            let sx = m.layout().spatial_x_slot(0);
            let count = m.loop_count(ruby_workload::Dim::M, sx);
            assert!(count <= 9);
            assert_eq!(
                100 % count.max(1),
                0,
                "spatial factor {count} must divide 100"
            );
        }
    }

    #[test]
    fn sampled_mappings_cover_bound() {
        let mut rng = SmallRng::seed_from_u64(4);
        for kind in MapspaceKind::ALL {
            let space = toy_space(kind, 9, 100);
            for _ in 0..50 {
                let m = space.sample(&mut rng);
                let chain = m.tile_chain(ruby_workload::Dim::M);
                assert_eq!(*chain.last().unwrap(), 100, "{kind}");
                assert_eq!(chain[0], 1);
            }
        }
    }

    #[test]
    fn counts_reproduce_table1_ordering() {
        // Table I: Ruby and Ruby-T explode, Ruby-S stays moderate, PFM is
        // smallest (9-PE fanout, 2-level toy).
        for d in [100u64, 1000, 4096] {
            let pfm = toy_space(MapspaceKind::Pfm, 9, d).count_tilings();
            let ruby = toy_space(MapspaceKind::Ruby, 9, d).count_tilings();
            let ruby_s = toy_space(MapspaceKind::RubyS, 9, d).count_tilings();
            let ruby_t = toy_space(MapspaceKind::RubyT, 9, d).count_tilings();
            assert!(pfm < ruby_s, "d={d}: pfm {pfm} < ruby_s {ruby_s}");
            assert!(ruby_s < ruby_t, "d={d}: ruby_s {ruby_s} < ruby_t {ruby_t}");
            assert!(ruby_t <= ruby, "d={d}: ruby_t {ruby_t} <= ruby {ruby}");
        }
    }

    #[test]
    fn pfm_count_matches_enumeration() {
        let space = toy_space(MapspaceKind::Pfm, 9, 100);
        let count = space.count_tilings();
        let enumerated = space.enumerate_perfect(usize::MAX);
        assert_eq!(enumerated.len() as u128, count);
    }

    #[test]
    fn constraints_zero_out_disallowed_spatial_dims() {
        let arch = presets::toy_linear(9, 1024);
        let shape = ProblemShape::gemm("g", 12, 1, 12);
        let constraints = Constraints::unconstrained(2).with_spatial_x(0, &[ruby_workload::Dim::C]);
        let space = Mapspace::new(arch, shape, MapspaceKind::Ruby).with_constraints(constraints);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let m = space.sample(&mut rng);
            let sx = m.layout().spatial_x_slot(0);
            assert_eq!(
                m.loop_count(ruby_workload::Dim::M, sx),
                1,
                "M is not allowed on X"
            );
        }
    }

    #[test]
    fn shared_fanout_never_oversubscribed() {
        // Two dims competing for one 12-wide axis must share it.
        let arch = presets::toy_linear(12, 65536);
        let shape = ProblemShape::gemm("g", 8, 1, 8);
        for kind in MapspaceKind::ALL {
            let space = Mapspace::new(arch.clone(), shape.clone(), kind);
            let mut rng = SmallRng::seed_from_u64(6);
            for _ in 0..200 {
                let m = space.sample(&mut rng);
                let (x, _) = m.spatial_extent(0);
                assert!(x <= 12, "{kind}: spatial extent {x} exceeds fanout");
            }
        }
    }
}
