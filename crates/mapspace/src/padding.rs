//! The padding baseline of Fig. 8 and Figs. 13–14: pad tensor dimensions
//! up to a multiple of the PE-array extents so perfect factorization can
//! fill the array, at the cost of ineffectual (zero) work.

use ruby_arch::Architecture;
use ruby_workload::{Dim, ProblemShape};

use crate::constraints::Constraints;

/// Pads `shape` for perfect-factorization mapping on `arch`: every
/// non-unit spatial axis is assigned one of its allowed dimensions, and
/// each assigned dimension is padded up to the next multiple of its
/// axis extent (the LCM, if one dimension serves several axes). The
/// assignment minimizing total padded work is chosen exhaustively —
/// e.g. on a 14×12 Eyeriss array with `Q = 27`, `M = 96`, padding
/// `Q → 28` and leaving `M` (already a multiple of 12) beats padding `M`.
///
/// Padded work is counted as real work (no datapath gating or zero
/// skipping), matching the paper's padding strategy.
///
/// # Examples
///
/// ```
/// use ruby_arch::presets;
/// use ruby_mapspace::{padding, Constraints};
/// use ruby_workload::{Dim, ProblemShape};
///
/// let arch = presets::toy_linear(16, 1024);
/// let shape = ProblemShape::rank1("d", 113);
/// let padded = padding::pad_to_array(&shape, &arch, &Constraints::unconstrained(2));
/// assert_eq!(padded.bound(Dim::M), 128);
/// ```
pub fn pad_to_array(
    shape: &ProblemShape,
    arch: &Architecture,
    constraints: &Constraints,
) -> ProblemShape {
    // Collect non-unit axes with their candidate dims (bound > 1).
    let mut axes: Vec<(u64, Vec<Dim>)> = Vec::new();
    for (level, mem) in arch.levels().iter().enumerate() {
        let fan = mem.fanout();
        for (extent, allowed) in [
            (fan.x(), constraints.spatial_x(level)),
            (fan.y(), constraints.spatial_y(level)),
        ] {
            if extent <= 1 {
                continue;
            }
            let candidates: Vec<Dim> = allowed.iter().filter(|&d| shape.bound(d) > 1).collect();
            if !candidates.is_empty() {
                axes.push((extent, candidates));
            }
        }
    }
    if axes.is_empty() {
        return shape.clone();
    }

    // Exhaustively assign a dim to every axis, merging repeated dims via
    // LCM, and keep the assignment with the least padded work.
    let mut best: Option<(f64, [u64; 7])> = None;
    let mut assignment = vec![0usize; axes.len()];
    loop {
        let mut required = [1u64; 7]; // per-dim LCM of assigned extents
        for (axis, &pick) in axes.iter().zip(&assignment) {
            let d = axis.1[pick];
            required[d.index()] = lcm(required[d.index()], axis.0);
        }
        let mut cost = 1.0f64;
        for d in Dim::ALL {
            let b = shape.bound(d);
            let r = required[d.index()];
            let padded = b.div_ceil(r) * r;
            cost *= padded as f64 / b as f64;
        }
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, required));
        }
        // Odometer over assignments.
        let mut i = 0;
        loop {
            if i == axes.len() {
                // lint: allow(panics) — the odometer body runs at least
                // once before reaching this arm, setting `best`.
                let (_, required) = best.expect("at least one assignment evaluated");
                let mut padded = shape.clone();
                for d in Dim::ALL {
                    if required[d.index()] > 1 {
                        padded = padded.padded_to_multiple(d, required[d.index()]);
                    }
                }
                return padded;
            }
            assignment[i] += 1;
            if assignment[i] < axes[i].1.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Ratio of padded to original MACs: 1.0 means no padding was needed.
pub fn padding_overhead(original: &ProblemShape, padded: &ProblemShape) -> f64 {
    padded.macs() as f64 / original.macs() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;

    #[test]
    fn rank1_pads_to_array_multiple() {
        let arch = presets::toy_linear(16, 1024);
        let c = Constraints::unconstrained(2);
        let padded = pad_to_array(&ProblemShape::rank1("d", 127), &arch, &c);
        assert_eq!(padded.bound(Dim::M), 128);
        let aligned = pad_to_array(&ProblemShape::rank1("d", 128), &arch, &c);
        assert_eq!(aligned.bound(Dim::M), 128);
        assert_eq!(aligned.name(), "d");
    }

    #[test]
    fn eyeriss_picks_the_cheap_joint_assignment() {
        let arch = presets::eyeriss_like(14, 12);
        let c = Constraints::eyeriss_row_stationary(3, 1);
        let shape = ProblemShape::conv("l", 1, 96, 48, 27, 27, 5, 5, (1, 1));
        let padded = pad_to_array(&shape, &arch, &c);
        // Best assignment: Q -> 28 on the 14-wide axis; M (96, already a
        // multiple of 12) covers the 12-wide axis for free.
        assert_eq!(padded.bound(Dim::Q), 28);
        assert_eq!(padded.bound(Dim::M), 96);
        assert_eq!(padded.bound(Dim::P), 27);
        let overhead = padding_overhead(&shape, &padded);
        assert!((1.0..1.05).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn overhead_of_unpadded_is_one() {
        let s = ProblemShape::rank1("d", 64);
        assert_eq!(padding_overhead(&s, &s), 1.0);
    }

    #[test]
    fn no_spatial_axes_returns_clone() {
        let arch = presets::toy_linear(1, 1024);
        let c = Constraints::unconstrained(2);
        let s = ProblemShape::rank1("d", 113);
        assert_eq!(pad_to_array(&s, &arch, &c), s);
    }
}
