//! Durable best-mapping store: the storage layer of the mapper service.
//!
//! A [`MappingStore`] remembers the best mapping found for every config
//! it has ever been asked about, keyed by the canonical semantic
//! fingerprint of the config ([`store_key`]). A repeat query for the
//! same (architecture, workload, mapspace, objective) — however it is
//! spelled — becomes an index lookup instead of a fresh search.
//!
//! Durability model:
//!
//! - **Append-only log.** Every accepted [`StoreRecord`] is appended as
//!   a CRC-framed pair of lines (see `log`), then fsynced. Appends
//!   never rewrite earlier bytes, so a crash can only damage the tail.
//! - **In-memory index.** [`MappingStore::open`] replays the log,
//!   keeping the cheapest record per key; a torn tail (interrupted
//!   append) is detected by its CRC frame and truncated away.
//! - **Compaction.** Superseded records accumulate in the log;
//!   [`MappingStore::compact`] rewrites it to one record per key via
//!   [`ruby_telemetry::write_atomic`] (tmp + fsync + rename), so a
//!   crash mid-compaction leaves the previous log intact. `open`
//!   removes any `.tmp` such a crash left behind.
//! - **Versioned schema.** Both the frame headers and the records carry
//!   `"schema":` [`STORE_SCHEMA`]; a log written by a different format
//!   generation is refused, not misread.

mod fingerprint;
mod log;

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use ruby_mapping::Mapping;
use ruby_model::CostReport;
use ruby_telemetry::LazyCounter;

pub use fingerprint::{config_key, store_key};

static SCRUB_QUARANTINED: LazyCounter = LazyCounter::new("store.scrub.quarantined");

/// On-disk schema version: frame headers and record payloads.
pub const STORE_SCHEMA: u64 = 1;

/// Superseded records tolerated in the log before [`MappingStore::put`]
/// compacts it in passing.
const COMPACT_SLACK: usize = 64;

/// One stored best-mapping: the search result for one store key.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// The canonical config fingerprint ([`store_key`]).
    pub key: u64,
    /// The objective the cost was scored under.
    pub objective: String,
    /// Scalar cost of `mapping` under `objective`.
    pub cost: f64,
    /// Evaluations the producing search spent (provenance, not
    /// identity: a deeper search may later replace this record).
    pub evaluations: u64,
    /// The winning mapping.
    pub mapping: Mapping,
    /// Its full cost report.
    pub report: CostReport,
}

impl serde::Serialize for StoreRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(STORE_SCHEMA)),
            ("key".to_owned(), serde::Value::U64(self.key)),
            (
                "objective".to_owned(),
                serde::Value::Str(self.objective.clone()),
            ),
            ("cost".to_owned(), serde::Value::F64(self.cost)),
            (
                "evaluations".to_owned(),
                serde::Value::U64(self.evaluations),
            ),
            ("mapping".to_owned(), self.mapping.to_value()),
            ("report".to_owned(), self.report.to_value()),
        ])
    }
}

impl serde::Deserialize for StoreRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let schema = value.field("schema")?.as_u64()?;
        if schema != STORE_SCHEMA {
            return Err(serde::Error::custom(format!(
                "store record schema {schema} (this build reads {STORE_SCHEMA})"
            )));
        }
        Ok(StoreRecord {
            key: value.field("key")?.as_u64()?,
            objective: value.field("objective")?.as_str()?.to_owned(),
            cost: value.field("cost")?.as_f64()?,
            evaluations: value.field("evaluations")?.as_u64()?,
            mapping: serde::Deserialize::from_value(value.field("mapping")?)?,
            report: serde::Deserialize::from_value(value.field("report")?)?,
        })
    }
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (open/append/fsync/rename).
    Io(std::io::Error),
    /// A record refused to encode or decode.
    Corrupt(String),
    /// The log was written by a different on-disk schema generation.
    Schema {
        /// The version the log announced.
        found: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store I/O: {err}"),
            StoreError::Corrupt(what) => write!(f, "store corruption: {what}"),
            StoreError::Schema { found } => write!(
                f,
                "store log has on-disk schema {found}; this build reads {STORE_SCHEMA}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// What a scrubbing open ([`MappingStore::open_scrubbed`]) found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Frames that CRC-verified and decoded.
    pub frames_ok: u64,
    /// Damaged stretches moved to the quarantine sidecar (each is one
    /// resync event: a bad frame, a run of unframed garbage lines, or a
    /// torn tail).
    pub frames_quarantined: u64,
    /// Bytes moved to the quarantine sidecar.
    pub bytes_quarantined: u64,
}

/// The quarantine sidecar next to a store log: damaged byte ranges the
/// scrub carved out, preserved for post-mortem instead of deleted.
pub fn quarantine_path(log_path: &Path) -> PathBuf {
    let mut name = log_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".quarantine");
    log_path.with_file_name(name)
}

/// The durable best-mapping store: append-only log + in-memory index.
#[derive(Debug)]
pub struct MappingStore {
    path: PathBuf,
    /// Best record per key (ties keep the incumbent).
    index: HashMap<u64, StoreRecord>,
    /// Physical records in the log, including superseded ones.
    log_records: usize,
    /// Torn-tail bytes discarded by the last [`MappingStore::open`].
    recovered_bytes: usize,
    /// Bytes of intact log on disk; everything past it is a torn tail
    /// from a failed append.
    valid_len: u64,
    /// Whether a failed append left a torn tail that the next append
    /// must truncate away first (lazy self-heal: a process that dies
    /// instead leaves the tail for `open` to recover).
    dirty_tail: bool,
}

impl MappingStore {
    /// Opens (or creates) the store at `path`, replaying the log into
    /// the index.
    ///
    /// Recovery happens here: a stale `<path>.tmp` from a crashed
    /// compaction is deleted (the rename never happened, so the log
    /// itself is the previous, intact generation), and a torn tail from
    /// a crashed append is truncated away.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Schema`] when the log belongs to a different
    /// format generation.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let tmp = ruby_telemetry::tmp_path(&path);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        let scan = log::scan(&bytes)?;
        let recovered_bytes = bytes.len() - scan.valid_len;
        if recovered_bytes > 0 {
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(scan.valid_len as u64)?;
            file.sync_all()?;
        }
        let log_records = scan.records.len();
        let mut index = HashMap::new();
        for record in scan.records {
            insert_if_better(&mut index, record);
        }
        Ok(MappingStore {
            path,
            index,
            log_records,
            recovered_bytes,
            valid_len: scan.valid_len as u64,
            dirty_tail: false,
        })
    }

    /// Opens the store at `path` with a full-log scrub: every frame is
    /// CRC-verified, damaged stretches are *quarantined* — appended to
    /// the `.quarantine` sidecar ([`quarantine_path`]) for post-mortem
    /// rather than silently discarded — and intact records *past* the
    /// damage are recovered (a plain [`MappingStore::open`] truncates at
    /// the first damaged frame instead). When anything was quarantined
    /// the log is atomically rewritten to just the intact frames.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Schema`] when the log's *first* frame belongs to a
    /// different format generation (foreign-schema frames later in the
    /// log are quarantined, not fatal).
    pub fn open_scrubbed(path: impl AsRef<Path>) -> Result<(Self, ScrubReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let tmp = ruby_telemetry::tmp_path(&path);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        let scrub = log::scrub_scan(&bytes)?;
        let report = ScrubReport {
            frames_ok: scrub.records.len() as u64,
            frames_quarantined: scrub.quarantined.len() as u64,
            bytes_quarantined: scrub
                .quarantined
                .iter()
                .map(|&(start, end)| (end - start) as u64)
                .sum(),
        };
        let mut valid_len = bytes.len() as u64;
        if !scrub.quarantined.is_empty() {
            SCRUB_QUARANTINED.add(report.frames_quarantined);
            let mut sidecar = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(quarantine_path(&path))?;
            for &(start, end) in &scrub.quarantined {
                sidecar.write_all(&bytes[start..end])?;
                if !bytes[start..end].ends_with(b"\n") {
                    sidecar.write_all(b"\n")?;
                }
            }
            sidecar.sync_all()?;
            // Splice the damage out of the image verbatim (intact
            // frames keep their exact bytes) and swap it in atomically.
            let mut image = Vec::with_capacity(bytes.len() - report.bytes_quarantined as usize);
            let mut cursor = 0usize;
            for &(start, end) in &scrub.quarantined {
                image.extend_from_slice(&bytes[cursor..start]);
                cursor = end;
            }
            image.extend_from_slice(&bytes[cursor..]);
            ruby_telemetry::write_atomic(&path, &image)?;
            valid_len = image.len() as u64;
        }
        let log_records = scrub.records.len();
        let mut index = HashMap::new();
        for record in scrub.records {
            insert_if_better(&mut index, record);
        }
        Ok((
            MappingStore {
                path,
                index,
                log_records,
                recovered_bytes: report.bytes_quarantined as usize,
                valid_len,
                dirty_tail: false,
            },
            report,
        ))
    }

    /// The best known record for `key`.
    pub fn get(&self, key: u64) -> Option<&StoreRecord> {
        self.index.get(&key)
    }

    /// Offers a record. It is kept — appended to the log and indexed —
    /// only when its key is new or its cost strictly beats the
    /// incumbent; returns whether it was kept.
    ///
    /// A kept record is durable when this returns: the append is
    /// fsynced before the index is updated, so the in-memory view never
    /// claims more than the disk holds.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the append fails; the index is
    /// left unchanged (the log may carry a torn tail for the next
    /// `open` to truncate).
    pub fn put(&mut self, record: StoreRecord) -> Result<bool, StoreError> {
        if let Some(best) = self.index.get(&record.key) {
            if best.cost <= record.cost {
                return Ok(false);
            }
        }
        self.append(&record)?;
        self.log_records += 1;
        insert_if_better(&mut self.index, record);
        if self.log_records > self.index.len() + COMPACT_SLACK {
            self.compact()?;
        }
        Ok(true)
    }

    /// Live entries (distinct keys) in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no mappings.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Physical records in the log, superseded ones included; exceeds
    /// [`MappingStore::len`] until the next compaction.
    pub fn log_records(&self) -> usize {
        self.log_records
    }

    /// Torn-tail bytes the last [`MappingStore::open`] truncated away.
    pub fn recovered_bytes(&self) -> usize {
        self.recovered_bytes
    }

    /// The log path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the log to one record per key (atomically: the previous
    /// log survives a crash mid-rewrite).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the rewrite fails; the previous
    /// log generation is still on disk and the index still matches it.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        let mut image = String::new();
        for key in keys {
            // justified: every key in `keys` was just copied out of the index
            let record = self.index.get(&key).expect("index key vanished");
            image.push_str(&log::encode(record)?);
        }
        ruby_telemetry::write_atomic(&self.path, image.as_bytes())?;
        self.log_records = self.index.len();
        self.valid_len = image.len() as u64;
        self.dirty_tail = false;
        Ok(())
    }

    /// Appends one framed record and fsyncs it. The `store.append`
    /// failpoint (feature `failpoints`) simulates a crash mid-append:
    /// `torn:N` writes only the first `N` bytes of the frame and fails,
    /// leaving exactly the torn tail a power loss would.
    fn append(&mut self, record: &StoreRecord) -> Result<(), StoreError> {
        let frame = log::encode(record)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if self.dirty_tail {
            // Lazy self-heal: a previous failed append left a torn tail
            // (this process survived what would have been a crash);
            // truncate it before writing anything after it, or the next
            // frame's header would merge into the garbage.
            file.set_len(self.valid_len)?;
            file.sync_all()?;
            self.dirty_tail = false;
        }
        match ruby_failpoints::hit("store.append") {
            ruby_failpoints::Action::Torn(n) => {
                file.write_all(&frame.as_bytes()[..n.min(frame.len())])?;
                file.sync_all()?;
                // The simulated kill leaves the torn tail on disk for
                // `open` to recover; if this process lives on, the next
                // append repairs it first.
                self.dirty_tail = true;
                return Err(StoreError::Io(std::io::Error::other(
                    "failpoint store.append: torn write",
                )));
            }
            ruby_failpoints::Action::Err => {
                return Err(StoreError::Io(std::io::Error::other(
                    "failpoint store.append: injected error",
                )));
            }
            _ => {}
        }
        if let Err(err) = file
            .write_all(frame.as_bytes())
            .and_then(|()| file.sync_all())
        {
            // Best-effort self-heal: roll the half-written frame back so
            // the live file stays clean without waiting for the next
            // open's recovery pass; if even the rollback fails, the next
            // append retries it.
            if file
                .set_len(self.valid_len)
                .and_then(|()| file.sync_all())
                .is_err()
            {
                self.dirty_tail = true;
            }
            return Err(err.into());
        }
        self.valid_len += frame.len() as u64;
        Ok(())
    }
}

fn insert_if_better(index: &mut HashMap<u64, StoreRecord>, record: StoreRecord) {
    match index.entry(record.key) {
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(record);
        }
        std::collections::hash_map::Entry::Occupied(mut slot) => {
            if record.cost < slot.get().cost {
                slot.insert(record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_workload::{Dim, ProblemShape};
    use serde::Serialize;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ruby-store-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(key: u64, cost: f64) -> StoreRecord {
        let arch = presets::toy_linear(4, 4096);
        let shape = ProblemShape::rank1("d", 100);
        let mut b = ruby_mapping::Mapping::builder(arch.num_levels());
        b.set_tile(Dim::M, 0, ruby_mapping::SlotKind::SpatialX, 4);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let report = ruby_model::evaluate(
            &arch,
            &shape,
            &mapping,
            &ruby_model::ModelOptions::default(),
        )
        .unwrap();
        StoreRecord {
            key,
            objective: "edp".to_owned(),
            cost,
            evaluations: 17,
            mapping,
            report,
        }
    }

    #[test]
    fn record_serde_round_trips() {
        let record = sample_record(42, 1.5);
        let json = serde_json::to_string(&record.to_value()).unwrap();
        let back: StoreRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn record_serde_rejects_other_schemas() {
        let mut value = serde::Serialize::to_value(&sample_record(1, 1.0));
        let serde::Value::Obj(ref mut fields) = value else {
            panic!("record must serialize as an object");
        };
        fields[0].1 = serde::Value::U64(STORE_SCHEMA + 1);
        let json = serde_json::to_string(&value).unwrap();
        assert!(serde_json::from_str::<StoreRecord>(&json).is_err());
    }

    #[test]
    fn put_get_and_reopen_round_trip() {
        let path = test_dir("roundtrip").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert!(store.put(sample_record(1, 10.0)).unwrap());
        assert!(store.put(sample_record(2, 20.0)).unwrap());
        assert_eq!(store.len(), 2);

        let reopened = MappingStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.recovered_bytes(), 0);
        assert_eq!(reopened.get(1), store.get(1));
        assert_eq!(reopened.get(2), store.get(2));
        assert_eq!(reopened.get(3), None);
    }

    #[test]
    fn put_keeps_only_strict_improvements() {
        let path = test_dir("improve").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        assert!(store.put(sample_record(1, 10.0)).unwrap());
        assert!(!store.put(sample_record(1, 10.0)).unwrap());
        assert!(!store.put(sample_record(1, 11.0)).unwrap());
        assert!(store.put(sample_record(1, 9.0)).unwrap());
        assert_eq!(store.get(1).unwrap().cost, 9.0);
        assert_eq!(store.log_records(), 2);
        assert_eq!(MappingStore::open(&path).unwrap().get(1).unwrap().cost, 9.0);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = test_dir("torn").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        store.put(sample_record(1, 10.0)).unwrap();
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"schema\":1,\"crc\":7,\"bytes\":999}\n{\"key\"")
            .unwrap();
        drop(file);

        let recovered = MappingStore::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.recovered_bytes() > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        assert_eq!(MappingStore::open(&path).unwrap().recovered_bytes(), 0);
    }

    #[test]
    fn compaction_drops_superseded_records() {
        let path = test_dir("compact").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        for i in 0..5 {
            store.put(sample_record(1, 10.0 - f64::from(i))).unwrap();
        }
        assert_eq!(store.log_records(), 5);
        store.compact().unwrap();
        assert_eq!(store.log_records(), 1);
        let reopened = MappingStore::open(&path).unwrap();
        assert_eq!(reopened.log_records(), 1);
        assert_eq!(reopened.get(1).unwrap().cost, 6.0);
    }

    #[test]
    fn other_schema_generations_are_refused() {
        let path = test_dir("schema").join("store.log");
        std::fs::write(&path, "{\"schema\":999,\"crc\":0,\"bytes\":2}\n{}\n").unwrap();
        match MappingStore::open(&path) {
            Err(StoreError::Schema { found: 999 }) => {}
            other => panic!("expected a schema refusal, got {other:?}"),
        }
    }

    #[test]
    fn scrub_of_a_clean_log_reports_zeros() {
        let path = test_dir("scrubclean").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        store.put(sample_record(1, 10.0)).unwrap();
        store.put(sample_record(2, 20.0)).unwrap();
        drop(store);

        let (scrubbed, report) = MappingStore::open_scrubbed(&path).unwrap();
        assert_eq!(scrubbed.len(), 2);
        assert_eq!(report.frames_ok, 2);
        assert_eq!(report.frames_quarantined, 0);
        assert_eq!(report.bytes_quarantined, 0);
        assert!(!quarantine_path(&path).exists());
    }

    #[test]
    fn scrub_quarantines_mid_log_damage_and_recovers_records_past_it() {
        let path = test_dir("scrubmid").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        store.put(sample_record(1, 10.0)).unwrap();
        store.put(sample_record(2, 20.0)).unwrap();
        store.put(sample_record(3, 30.0)).unwrap();
        drop(store);

        // Flip a payload byte inside the *middle* frame: its CRC fails
        // while the frames before and after stay intact.
        let mut bytes = std::fs::read(&path).unwrap();
        let lines: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i))
            .collect();
        let middle_payload = lines[2] + 2;
        bytes[middle_payload] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();

        // A plain open truncates at the damage and loses record 3…
        let truncated = MappingStore::open(&path).unwrap();
        assert_eq!(truncated.len(), 1);
        std::fs::write(&path, &bytes).unwrap();

        // …a scrub quarantines only the damaged frame.
        let (scrubbed, report) = MappingStore::open_scrubbed(&path).unwrap();
        assert_eq!(scrubbed.len(), 2);
        assert!(scrubbed.get(1).is_some());
        assert!(scrubbed.get(2).is_none());
        assert!(scrubbed.get(3).is_some());
        assert_eq!(report.frames_ok, 2);
        assert_eq!(report.frames_quarantined, 1);
        assert!(report.bytes_quarantined > 0);
        let sidecar = std::fs::read(quarantine_path(&path)).unwrap();
        assert_eq!(sidecar.len() as u64, report.bytes_quarantined);

        // The rewritten log is clean: reopening finds nothing to fix.
        let (reopened, clean) = MappingStore::open_scrubbed(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(clean.frames_quarantined, 0);
    }

    #[test]
    fn scrub_quarantines_spliced_garbage_and_torn_tails() {
        let path = test_dir("scrubgarbage").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        store.put(sample_record(1, 10.0)).unwrap();
        let frame_len = std::fs::metadata(&path).unwrap().len();
        drop(store);

        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.clone();
        bytes.extend_from_slice(b"not a frame header at all\n");
        bytes.extend_from_slice(&intact);
        bytes.extend_from_slice(b"{\"schema\":1,\"crc\":7,\"bytes\":999}\n{\"torn");
        std::fs::write(&path, &bytes).unwrap();

        let (scrubbed, report) = MappingStore::open_scrubbed(&path).unwrap();
        assert_eq!(scrubbed.len(), 1);
        assert_eq!(report.frames_ok, 2);
        assert_eq!(report.frames_quarantined, 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            frame_len * 2,
            "the rewritten log holds exactly the two intact frames"
        );
    }

    #[test]
    fn scrub_still_refuses_foreign_schema_generations() {
        let path = test_dir("scrubschema").join("store.log");
        std::fs::write(&path, "{\"schema\":999,\"crc\":0,\"bytes\":2}\n{}\n").unwrap();
        match MappingStore::open_scrubbed(&path) {
            Err(StoreError::Schema { found: 999 }) => {}
            other => panic!("expected a schema refusal, got {other:?}"),
        }
    }

    #[test]
    fn stale_compaction_tmp_is_removed_on_open() {
        let path = test_dir("staletmp").join("store.log");
        let mut store = MappingStore::open(&path).unwrap();
        store.put(sample_record(1, 10.0)).unwrap();
        let tmp = ruby_telemetry::tmp_path(&path);
        std::fs::write(&tmp, b"half-written compaction image").unwrap();

        let reopened = MappingStore::open(&path).unwrap();
        assert!(!tmp.exists());
        assert_eq!(reopened.len(), 1);
    }
}
