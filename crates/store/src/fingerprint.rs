//! Canonical config fingerprint: the store key.
//!
//! The checkpoint fingerprint (`ruby-search`) deliberately folds the
//! *run* identity — seed, thread count, strategy, budgets — because a
//! checkpoint is only resumable by the exact run that wrote it. A store
//! key is the opposite: two runs that searched the same *problem* must
//! collide so the second one becomes a warm hit. The key therefore
//! folds only the semantic identity of a query:
//!
//! - the architecture (every level's capacities, stores flags, access
//!   and NoC energies, fanout, bandwidth, plus MAC energy and the
//!   technology model),
//! - the workload (dimension bounds, stride, dilation),
//! - the mapspace kind and its constraints,
//! - the objective.
//!
//! Seeds, budgets, thread counts and strategies are excluded: they
//! change how hard we look, not what we are looking for. Labels are
//! excluded too — `name` fields anywhere in the config are
//! documentation, so `gemm:256,256,256` and the same shape loaded from
//! a differently-named JSON file hash identically.
//!
//! Canonicalization comes from folding the *typed* values' serde trees
//! rather than any JSON text: field order, whitespace and
//! default-filled options in an input file all normalize when the file
//! is parsed into `Architecture`/`ProblemShape`, whose `to_value()`
//! emits fields in a fixed declaration order.

use ruby_arch::Architecture;
use ruby_mapspace::{Constraints, Mapspace, MapspaceKind};
use ruby_workload::ProblemShape;
use serde::{Serialize, Value};

/// The store key for a mapspace/objective pair.
pub fn store_key(space: &Mapspace, objective: &str) -> u64 {
    config_key(
        space.arch(),
        space.shape(),
        space.constraints(),
        space.kind(),
        objective,
    )
}

/// The store key from the individual config parts.
pub fn config_key(
    arch: &Architecture,
    shape: &ProblemShape,
    constraints: &Constraints,
    kind: MapspaceKind,
    objective: &str,
) -> u64 {
    let mut fold = Fold::new();
    fold.push_value(&arch.to_value());
    fold.push_value(&shape.to_value());
    fold.push_value(&constraints.to_value());
    fold.push_str(kind.name());
    fold.push_str(objective);
    fold.state
}

/// Order-sensitive streaming fold (the checkpoint fingerprint idiom):
/// xor-multiply by the golden-ratio constant, then a full SplitMix64
/// round so every input bit diffuses before the next value lands.
struct Fold {
    state: u64,
}

impl Fold {
    fn new() -> Self {
        // "RubySTOR" — a fixed non-zero starting point, distinct from
        // the checkpoint fingerprint's so the two keyspaces never
        // collide by construction.
        Fold {
            state: 0x5275_6279_5354_4F52,
        }
    }

    fn push(&mut self, v: u64) {
        self.state ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        rand::splitmix64(&mut self.state);
    }

    fn push_str(&mut self, s: &str) {
        self.push(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut le = [0u8; 8];
            le[..chunk.len()].copy_from_slice(chunk);
            self.push(u64::from_le_bytes(le));
        }
    }

    /// Folds a serde value tree. Every variant is tagged before its
    /// contents and every length is folded, so `[["a"],[]]` and
    /// `[[],["a"]]` cannot collide. Object entries keyed `name` are
    /// skipped at every depth: labels are not semantics.
    fn push_value(&mut self, value: &Value) {
        match value {
            Value::Null => self.push(0),
            Value::Bool(b) => {
                self.push(1);
                self.push(u64::from(*b));
            }
            Value::U64(x) => {
                self.push(2);
                self.push(*x);
            }
            Value::I64(x) => {
                self.push(3);
                self.push(*x as u64);
            }
            Value::F64(x) => {
                self.push(4);
                self.push(x.to_bits());
            }
            Value::Str(s) => {
                self.push(5);
                self.push_str(s);
            }
            Value::Arr(items) => {
                self.push(6);
                self.push(items.len() as u64);
                for item in items {
                    self.push_value(item);
                }
            }
            Value::Obj(fields) => {
                let live = fields.iter().filter(|(k, _)| k != "name");
                self.push(7);
                self.push(live.clone().count() as u64);
                for (key, field) in live {
                    self.push_str(key);
                    self.push_value(field);
                }
            }
        }
    }
}
