//! On-disk record framing: the append-only log's byte format.
//!
//! Each record is two newline-terminated lines, mirroring the
//! checkpoint file format so both share one recovery story:
//!
//! ```text
//! {"schema":1,"crc":3632233996,"bytes":123}
//! {"schema":1,"key":…,…}
//! ```
//!
//! The header carries the on-disk schema version, the CRC-32 (IEEE) of
//! the payload bytes, and the payload length; the payload is the
//! [`StoreRecord`] JSON. A reader walks header/payload pairs from the
//! start and stops at the first frame that is incomplete or fails its
//! CRC — everything before that point is intact by construction
//! (appends never rewrite earlier bytes), everything after is the torn
//! tail of an interrupted append and is discarded.

use serde::Serialize;

use crate::{StoreError, StoreRecord, STORE_SCHEMA};

/// Encodes one record as its two-line frame.
pub(crate) fn encode(record: &StoreRecord) -> Result<String, StoreError> {
    let payload = serde_json::to_string(&record.to_value())
        .map_err(|err| StoreError::Corrupt(format!("unserializable record: {err}")))?;
    let header = format!(
        "{{\"schema\":{},\"crc\":{},\"bytes\":{}}}",
        STORE_SCHEMA,
        crc32(payload.as_bytes()),
        payload.len()
    );
    Ok(format!("{header}\n{payload}\n"))
}

/// The result of scanning a log image.
pub(crate) struct Scan {
    /// Every intact record, in append order.
    pub records: Vec<StoreRecord>,
    /// Byte length of the intact prefix; anything past it is a torn
    /// tail to truncate away.
    pub valid_len: usize,
}

/// Scans `bytes` (a whole log file) into intact records plus the length
/// of the intact prefix.
///
/// # Errors
///
/// Returns [`StoreError::Schema`] when the *first* record announces a
/// different on-disk schema version — the file belongs to another
/// format generation and silently dropping it would lose data. Damage
/// anywhere later is treated as a torn tail, not an error.
pub(crate) fn scan(bytes: &[u8]) -> Result<Scan, StoreError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some((frame, end)) = scan_frame(bytes, offset) else {
            break;
        };
        match frame {
            Frame::Record(record) => records.push(*record),
            Frame::WrongSchema(found) if offset == 0 => {
                return Err(StoreError::Schema { found });
            }
            Frame::WrongSchema(_) | Frame::Damaged => break,
        }
        offset = end;
    }
    Ok(Scan {
        records,
        valid_len: offset,
    })
}

/// The result of a full-log scrub: intact records plus the byte ranges
/// that must be quarantined.
pub(crate) struct Scrub {
    /// Every intact record, in append order.
    pub records: Vec<StoreRecord>,
    /// Damaged byte ranges (`start..end`), in file order,
    /// non-overlapping. Splicing them out of the image leaves exactly
    /// the intact frames.
    pub quarantined: Vec<(usize, usize)>,
}

/// Scrubs `bytes` (a whole log image): CRC-verifies every frame and,
/// unlike [`scan`], *resynchronizes past damage* instead of stopping at
/// it — mid-log corruption costs only the damaged frames, not every
/// record after them.
///
/// Resync is line-based. A damaged frame's declared payload length is
/// not trusted (the header itself may be the corrupt part): the header
/// line and the line after it are quarantined up to their actual
/// newlines, and scanning resumes there. Bytes that do not parse as a
/// frame header at all are quarantined one line at a time, and an
/// unterminated tail (a torn append) is quarantined whole.
///
/// # Errors
///
/// Returns [`StoreError::Schema`] when the first frame announces a
/// different on-disk schema version, same as [`scan`]: that log belongs
/// to another format generation and must not be rewritten. A foreign
/// schema *later* in the log (spliced garbage) is quarantined instead.
pub(crate) fn scrub_scan(bytes: &[u8]) -> Result<Scrub, StoreError> {
    let mut records = Vec::new();
    let mut quarantined: Vec<(usize, usize)> = Vec::new();
    let quarantine =
        |ranges: &mut Vec<(usize, usize)>, start: usize, end: usize| match ranges.last_mut() {
            Some(last) if last.1 == start => last.1 = end,
            _ => ranges.push((start, end)),
        };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(header_end) = find_newline(bytes, offset) else {
            // Unterminated tail: a torn append (or torn quarantinable
            // garbage) with no newline to resync on.
            quarantine(&mut quarantined, offset, bytes.len());
            break;
        };
        let Some(header) = parse_header(&bytes[offset..header_end]) else {
            quarantine(&mut quarantined, offset, header_end + 1);
            offset = header_end + 1;
            continue;
        };
        if header.schema != STORE_SCHEMA {
            if offset == 0 {
                return Err(StoreError::Schema {
                    found: header.schema,
                });
            }
            quarantine(&mut quarantined, offset, header_end + 1);
            offset = header_end + 1;
            continue;
        }
        let payload_start = header_end + 1;
        let frame_ok = header
            .bytes
            .checked_add(payload_start)
            .filter(|&end| end < bytes.len() && bytes[end] == b'\n')
            .and_then(|payload_end| {
                let payload = &bytes[payload_start..payload_end];
                if crc32(payload) != header.crc {
                    return None;
                }
                let text = std::str::from_utf8(payload).ok()?;
                serde_json::from_str::<StoreRecord>(text)
                    .ok()
                    .map(|record| (record, payload_end + 1))
            });
        match frame_ok {
            Some((record, end)) => {
                records.push(record);
                offset = end;
            }
            None => {
                // Damaged frame. The declared length may itself be the
                // lie, so resync on the payload line's *actual* newline.
                let end = match find_newline(bytes, payload_start) {
                    Some(newline) => newline + 1,
                    None => bytes.len(),
                };
                quarantine(&mut quarantined, offset, end);
                offset = end;
            }
        }
    }
    Ok(Scrub {
        records,
        quarantined,
    })
}

enum Frame {
    Record(Box<StoreRecord>),
    WrongSchema(u64),
    Damaged,
}

/// Decodes the frame starting at `offset`; `None` when the bytes end
/// mid-frame (torn tail).
fn scan_frame(bytes: &[u8], offset: usize) -> Option<(Frame, usize)> {
    let header_end = find_newline(bytes, offset)?;
    let header = parse_header(&bytes[offset..header_end])?;
    if header.schema != STORE_SCHEMA {
        return Some((Frame::WrongSchema(header.schema), bytes.len()));
    }
    let payload_start = header_end + 1;
    let payload_end = payload_start.checked_add(header.bytes)?;
    if payload_end >= bytes.len() || bytes[payload_end] != b'\n' {
        return None;
    }
    let payload = &bytes[payload_start..payload_end];
    if crc32(payload) != header.crc {
        return Some((Frame::Damaged, payload_end + 1));
    }
    let text = std::str::from_utf8(payload).ok()?;
    match serde_json::from_str::<StoreRecord>(text) {
        Ok(record) => Some((Frame::Record(Box::new(record)), payload_end + 1)),
        Err(_) => Some((Frame::Damaged, payload_end + 1)),
    }
}

struct Header {
    schema: u64,
    crc: u32,
    bytes: usize,
}

fn parse_header(line: &[u8]) -> Option<Header> {
    let text = std::str::from_utf8(line).ok()?;
    let value: serde::Value = serde_json::from_str(text).ok()?;
    Some(Header {
        schema: value.get("schema")?.as_u64().ok()?,
        crc: u32::try_from(value.get("crc")?.as_u64().ok()?).ok()?,
        bytes: usize::try_from(value.get("bytes")?.as_u64().ok()?).ok()?,
    })
}

fn find_newline(bytes: &[u8], from: usize) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| from + i)
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
/// checksum the checkpoint frames use, computed bitwise because the
/// payloads are small.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
