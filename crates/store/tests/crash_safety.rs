//! Crash safety under injected failures (`--features failpoints`).
//!
//! A kill mid-append must lose at most the record being appended: the
//! next `open` truncates the torn tail, rebuilds the index from the
//! intact prefix, and leaves no `.tmp` litter behind. A kill
//! mid-compaction must lose nothing: the rename never happened, so the
//! previous log generation is still the store.

#![cfg(feature = "failpoints")]

use std::path::PathBuf;

use ruby_arch::presets;
use ruby_store::{store_key, MappingStore, StoreRecord};
use ruby_workload::{Dim, ProblemShape};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruby-store-crash-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(key: u64, cost: f64) -> StoreRecord {
    let arch = presets::toy_linear(4, 4096);
    let shape = ProblemShape::rank1("d", 100);
    let mut b = ruby_mapping::Mapping::builder(arch.num_levels());
    b.set_tile(Dim::M, 0, ruby_mapping::SlotKind::SpatialX, 4);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = ruby_model::evaluate(
        &arch,
        &shape,
        &mapping,
        &ruby_model::ModelOptions::default(),
    )
    .unwrap();
    StoreRecord {
        key,
        objective: "edp".to_owned(),
        cost,
        evaluations: 17,
        mapping,
        report,
    }
}

/// No stray `.tmp` files anywhere in the store's directory.
fn assert_no_tmp_litter(dir: &std::path::Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        assert!(
            path.extension().map(|e| e != "tmp").unwrap_or(true),
            "stale tmp file leaked: {}",
            path.display()
        );
    }
}

#[test]
fn torn_append_loses_only_the_record_in_flight() {
    let dir = test_dir("append");
    let path = dir.join("store.log");
    let mut store = MappingStore::open(&path).unwrap();
    store.put(record(1, 10.0)).unwrap();
    let intact_len = std::fs::metadata(&path).unwrap().len();

    ruby_failpoints::reset();
    assert!(ruby_failpoints::arm("store.append", "torn:25"));
    assert!(store.put(record(2, 20.0)).is_err());
    ruby_failpoints::disarm("store.append");

    // The simulated kill left a 25-byte torn frame on disk.
    assert!(std::fs::metadata(&path).unwrap().len() > intact_len);

    // Reopen: the index rebuilds from the intact prefix, the tail is
    // truncated away, and no `.tmp` files leak.
    let mut recovered = MappingStore::open(&path).unwrap();
    assert_eq!(recovered.len(), 1);
    assert!(recovered.get(1).is_some());
    assert!(recovered.get(2).is_none());
    assert!(recovered.recovered_bytes() > 0);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
    assert_no_tmp_litter(&dir);

    // The store is fully usable again: the lost record can be re-put.
    assert!(recovered.put(record(2, 20.0)).unwrap());
    let reopened = MappingStore::open(&path).unwrap();
    assert_eq!(reopened.len(), 2);
    assert_eq!(reopened.recovered_bytes(), 0);
}

#[test]
fn a_surviving_store_self_heals_the_torn_tail_before_its_next_append() {
    let dir = test_dir("selfheal");
    let path = dir.join("store.log");
    let mut store = MappingStore::open(&path).unwrap();
    store.put(record(1, 10.0)).unwrap();

    ruby_failpoints::reset();
    assert!(ruby_failpoints::arm("store.append", "torn:25"));
    assert!(store.put(record(2, 20.0)).is_err());
    ruby_failpoints::disarm("store.append");

    // The process did NOT crash: the same store keeps accepting puts,
    // truncating the torn tail before the next frame lands so later
    // acknowledged records are never corrupted by the garbage.
    assert!(store.put(record(3, 30.0)).unwrap());
    assert!(store.put(record(2, 20.0)).unwrap());

    let reopened = MappingStore::open(&path).unwrap();
    assert_eq!(reopened.len(), 3);
    assert_eq!(reopened.recovered_bytes(), 0, "no torn tail survived");
}

#[test]
fn torn_compaction_loses_nothing() {
    let dir = test_dir("compact");
    let path = dir.join("store.log");
    let mut store = MappingStore::open(&path).unwrap();
    for i in 0..3 {
        store.put(record(1, 10.0 - f64::from(i))).unwrap();
    }

    ruby_failpoints::reset();
    assert!(ruby_failpoints::arm("artifact.write", "torn:10"));
    assert!(store.compact().is_err());
    ruby_failpoints::disarm("artifact.write");

    // The rename never happened: the previous log generation survives
    // in full, and the next open clears the torn `.tmp`.
    let recovered = MappingStore::open(&path).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered.get(1).unwrap().cost, 8.0);
    assert_eq!(recovered.log_records(), 3);
    assert_no_tmp_litter(&dir);
}

/// The sanity check behind the recovery story: the fingerprint of a
/// freshly parsed config finds records written under the same config
/// before the crash.
#[test]
fn keys_survive_a_crash_round_trip() {
    let dir = test_dir("keys");
    let path = dir.join("store.log");
    let arch = presets::toy_linear(4, 4096);
    let shape = ProblemShape::rank1("d", 100);
    let space = ruby_mapspace::Mapspace::new(arch, shape, ruby_mapspace::MapspaceKind::RubyS);
    let key = store_key(&space, "edp");

    let mut store = MappingStore::open(&path).unwrap();
    store.put(record(key, 3.5)).unwrap();
    ruby_failpoints::reset();
    assert!(ruby_failpoints::arm("store.append", "torn:5"));
    assert!(store.put(record(key ^ 1, 1.0)).is_err());
    ruby_failpoints::disarm("store.append");

    let recovered = MappingStore::open(&path).unwrap();
    assert_eq!(recovered.get(store_key(&space, "edp")).unwrap().cost, 3.5);
}
