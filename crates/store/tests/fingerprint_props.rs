//! Canonicalization properties of the store key.
//!
//! Two spellings of the same config — JSON field order, pretty-printed
//! whitespace, different labels — must hash to the same key; any
//! semantic change (a bound, an arch parameter, the objective, the
//! mapspace kind) must change it.

use proptest::prelude::*;
use ruby_arch::{presets, Architecture};
use ruby_mapspace::{Constraints, MapspaceKind};
use ruby_store::config_key;
use ruby_workload::ProblemShape;
use serde::{Deserialize, Serialize, Value};

/// Recursively reverses every object's field order: a different but
/// semantically identical spelling of the same JSON document.
fn reversed(value: &Value) -> Value {
    match value {
        Value::Arr(items) => Value::Arr(items.iter().map(reversed).collect()),
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), reversed(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Round-trips `value` through a scrambled spelling: reversed field
/// order, pretty-printed (whitespace everywhere), reparsed into `T`.
fn respelled<T: Serialize + Deserialize>(value: &T) -> T {
    let scrambled = serde_json::to_string_pretty(&reversed(&value.to_value())).unwrap();
    serde_json::from_str(&scrambled).unwrap()
}

fn key_of(arch: &Architecture, shape: &ProblemShape, kind: MapspaceKind, objective: &str) -> u64 {
    let constraints = Constraints::unconstrained(arch.num_levels());
    config_key(arch, shape, &constraints, kind, objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn respelled_configs_hash_identically(
        m in 1u64..64,
        n in 1u64..64,
        k in 1u64..64,
        pes in 1u64..8,
        scratch in 1u64..16,
    ) {
        let arch = presets::toy_linear(pes, scratch * 256);
        let shape = ProblemShape::gemm("g", m, n, k);
        let key = key_of(&arch, &shape, MapspaceKind::RubyS, "edp");

        // Field order, whitespace, and a full serde round trip are all
        // spelling; the key must not see them.
        let respelled_arch: Architecture = respelled(&arch);
        let respelled_shape: ProblemShape = respelled(&shape);
        prop_assert_eq!(key_of(&respelled_arch, &respelled_shape, MapspaceKind::RubyS, "edp"), key);

        // Labels are spelling too.
        let renamed = ProblemShape::gemm("an_unrelated_label", m, n, k);
        prop_assert_eq!(key_of(&arch, &renamed, MapspaceKind::RubyS, "edp"), key);
    }

    #[test]
    fn semantic_changes_change_the_key(
        m in 1u64..64,
        n in 1u64..64,
        k in 1u64..64,
        pes in 2u64..8,
        scratch in 2u64..16,
    ) {
        let arch = presets::toy_linear(pes, scratch * 256);
        let shape = ProblemShape::gemm("g", m, n, k);
        let key = key_of(&arch, &shape, MapspaceKind::RubyS, "edp");

        // A workload bound.
        let wider = ProblemShape::gemm("g", m + 1, n, k);
        prop_assert_ne!(key_of(&arch, &wider, MapspaceKind::RubyS, "edp"), key);

        // An architecture parameter (fanout via PE count, capacity via
        // scratchpad size).
        let more_pes = presets::toy_linear(pes + 1, scratch * 256);
        prop_assert_ne!(key_of(&more_pes, &shape, MapspaceKind::RubyS, "edp"), key);
        let bigger_spad = presets::toy_linear(pes, (scratch + 1) * 256);
        prop_assert_ne!(key_of(&bigger_spad, &shape, MapspaceKind::RubyS, "edp"), key);

        // The objective and the mapspace kind.
        prop_assert_ne!(key_of(&arch, &shape, MapspaceKind::RubyS, "energy"), key);
        prop_assert_ne!(key_of(&arch, &shape, MapspaceKind::Pfm, "edp"), key);

        // The constraint set.
        let constrained = Constraints::unconstrained(arch.num_levels()).with_exclusive_spatial();
        prop_assert_ne!(
            config_key(&arch, &shape, &constrained, MapspaceKind::RubyS, "edp"),
            key
        );
    }
}
