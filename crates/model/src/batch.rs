//! Batched, data-oriented candidate evaluation.
//!
//! The search hot path rejects most candidates on one of two cheap
//! validity walls (spatial fanout, then buffer capacity) before any
//! real modeling happens. Scalar [`evaluate_with`](crate::evaluate_with)
//! pays pointer-chasing and branchy control flow per candidate for
//! those walls; [`BatchEvalContext`] instead gathers the wall inputs for
//! up to [`BATCH`] candidates into struct-of-arrays scratch (per-level
//! contiguous rows of spatial extents and tile footprints) and runs the
//! rejection ladder as branchless mask passes the autovectorizer can
//! chew on. Only survivors reach the full per-candidate cost model.
//!
//! The ladder mirrors the scalar screens *exactly*: the same per-level
//! predicates, the same `Operand::ALL` accumulation order, the same
//! saturating pressure arithmetic — so verdicts, pressures, and (via
//! [`cost_core`](crate::context)) costs are bit-identical to the scalar
//! path. The differential test in `tests/batch_differential.rs` proves
//! it over tens of thousands of mappings per preset.

use ruby_arch::Capacity;
use ruby_mapping::Mapping;
use ruby_telemetry::LazyCounter;
use ruby_workload::Operand;

use crate::context::{
    evaluate_unchecked, summarize_unchecked, EvalContext, EVAL_VALID, REJECT_CAPACITY,
    REJECT_FANOUT,
};
use crate::report::{CostReport, CostSummary};
use crate::validity::InvalidMapping;

/// Candidates per batch. 64 keeps every scratch row inside one or two
/// cache lines per level while giving the vectorizer full-width lanes.
pub const BATCH: usize = 64;

/// Batch-shape instrumentation: how full the batches run and which
/// ladder stage kills how much. No-ops unless the `telemetry` cargo
/// feature is on.
static BATCH_CHUNKS: LazyCounter = LazyCounter::new("model.batch.chunks");
static BATCH_LANES: LazyCounter = LazyCounter::new("model.batch.lanes");
static BATCH_KILL_FANOUT: LazyCounter = LazyCounter::new("model.batch.kill.fanout");
static BATCH_KILL_CAPACITY: LazyCounter = LazyCounter::new("model.batch.kill.capacity");
static BATCH_SURVIVORS: LazyCounter = LazyCounter::new("model.batch.survivors");

/// Outcome of the rejection ladder for one lane of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchVerdict {
    /// Both walls passed; `pressure` is exactly what
    /// [`EvalContext::precheck`] would have returned.
    Valid {
        /// Summed tile footprint over capacity-bounded levels.
        pressure: u64,
    },
    /// Some level's spatial fanout is exceeded (the scalar path's first
    /// wall, so it wins over capacity when both are violated).
    RejectFanout,
    /// Some level's buffer capacity is exceeded.
    RejectCapacity,
}

/// One capacity-bounded level of the ladder plan, precomputed at
/// construction: which operands the level stores, their budgets, and
/// where each operand's footprint row lives in the scratch.
#[derive(Debug)]
struct CapEntry {
    /// Architecture level index.
    level: usize,
    /// `Some(words)` for a shared buffer (stored footprints are summed
    /// before the comparison), `None` for per-operand buffers.
    shared: Option<u64>,
    /// Stored operands as `(operand, per-operand budget, scratch row)`;
    /// the budget is meaningless for shared levels.
    ops: Vec<(Operand, u64, usize)>,
}

/// Struct-of-arrays batch evaluator over a prepared [`EvalContext`].
///
/// Usage: decode candidates into [`Self::slot`] / [`Self::commit`]
/// until [`Self::is_full`], run [`Self::screen`] for per-lane
/// verdicts, cost the valid lanes ([`Self::summary`], or
/// [`Self::report`] for keepers), then [`Self::clear`] and refill. All
/// scratch is allocated once and reused across batches.
///
/// # Examples
///
/// ```
/// use ruby_arch::presets;
/// use ruby_mapping::SlotKind;
/// use ruby_model::{BatchEvalContext, BatchVerdict, EvalContext, ModelOptions};
/// use ruby_workload::{Dim, ProblemShape};
///
/// let arch = presets::toy_linear(16, 1024);
/// let shape = ProblemShape::rank1("d113", 113);
/// let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
/// let mut batch = BatchEvalContext::new(&ctx);
/// batch.commit(); // lane 0: the default (all-ones) mapping
/// let verdicts = batch.screen();
/// assert!(matches!(verdicts[0], BatchVerdict::Valid { .. }));
/// assert_eq!(batch.summary(0).cycles(), 113);
/// ```
#[derive(Debug)]
pub struct BatchEvalContext<'c, 'a> {
    ctx: &'c EvalContext<'a>,
    /// Candidate mappings, built once for the context's bounds and
    /// overwritten in place by the decoder.
    slots: Vec<Mapping>,
    len: usize,
    /// Per-level fanout budgets (`x`, `y`).
    fan_x: Vec<u64>,
    fan_y: Vec<u64>,
    caps: Vec<CapEntry>,
    /// Level-major spatial extents: `sx[level * BATCH + lane]`.
    sx: Vec<u64>,
    sy: Vec<u64>,
    /// Row-major tile footprints: `foot[row * BATCH + lane]`, one row
    /// per `(capacity level, stored operand)` pair.
    foot: Vec<u64>,
    verdicts: Vec<BatchVerdict>,
}

impl<'c, 'a> BatchEvalContext<'c, 'a> {
    /// Builds the ladder plan and scratch for `ctx`. All allocation
    /// happens here; the per-batch loop is allocation-free.
    pub fn new(ctx: &'c EvalContext<'a>) -> Self {
        let arch = ctx.arch();
        let num_levels = arch.num_levels();
        let template = Mapping::builder(num_levels)
            // lint: allow(panics) — the builder only rejects zero-level
            // architectures, which EvalContext construction already
            // rules out; dying at setup beats corrupting every batch.
            .build_for_bounds(ctx.shape().bounds())
            .expect("default mapping is always buildable for the context's bounds");
        let mut fan_x = Vec::with_capacity(num_levels);
        let mut fan_y = Vec::with_capacity(num_levels);
        let mut caps = Vec::new();
        let mut rows = 0usize;
        for (i, level) in arch.levels().iter().enumerate() {
            fan_x.push(level.fanout().x());
            fan_y.push(level.fanout().y());
            // Mirror `validity::check_capacity`: level 0 (DRAM) and
            // unbounded levels never reject and contribute no pressure.
            if i == 0 || level.capacity() == Capacity::Unbounded {
                continue;
            }
            let shared = match level.capacity() {
                Capacity::Shared(words) => Some(words),
                _ => None,
            };
            let mut ops = Vec::new();
            for op in Operand::ALL {
                if !level.stores(op) {
                    continue;
                }
                ops.push((op, level.capacity_for(op).unwrap_or(0), rows));
                rows += 1;
            }
            caps.push(CapEntry {
                level: i,
                shared,
                ops,
            });
        }
        BatchEvalContext {
            ctx,
            slots: vec![template; BATCH],
            len: 0,
            fan_x,
            fan_y,
            caps,
            sx: vec![0; num_levels * BATCH],
            sy: vec![0; num_levels * BATCH],
            foot: vec![0; rows * BATCH],
            verdicts: vec![BatchVerdict::RejectFanout; BATCH],
        }
    }

    /// The evaluation context the batch screens against.
    pub fn context(&self) -> &'c EvalContext<'a> {
        self.ctx
    }

    /// Lanes currently committed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no lane is committed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when every lane is committed; [`Self::screen`] and refill.
    pub fn is_full(&self) -> bool {
        self.len == BATCH
    }

    /// Drops all committed lanes (scratch is reused, nothing shrinks).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The next free lane's mapping, for the decoder to overwrite in
    /// place. Call [`Self::commit`] once it holds the candidate.
    ///
    /// # Panics
    ///
    /// Panics when the batch is full.
    pub fn slot(&mut self) -> &mut Mapping {
        assert!(
            self.len < BATCH,
            "batch is full; screen() and clear() first"
        );
        &mut self.slots[self.len]
    }

    /// Commits the candidate in [`Self::slot`]: gathers its per-level
    /// spatial extents and tile footprints into the SoA scratch.
    ///
    /// # Panics
    ///
    /// Panics when the batch is full.
    pub fn commit(&mut self) {
        let lane = self.len;
        assert!(lane < BATCH, "batch is full; screen() and clear() first");
        let mapping = &self.slots[lane];
        for level in 0..self.fan_x.len() {
            let (x, y) = mapping.spatial_extent(level);
            self.sx[level * BATCH + lane] = x;
            self.sy[level * BATCH + lane] = y;
        }
        let tensors = self.ctx.tensors();
        for entry in &self.caps {
            let tile = mapping.tile_at_level(entry.level);
            for &(op, _, row) in &entry.ops {
                self.foot[row * BATCH + lane] = tensors[op.index()].footprint(&tile);
            }
        }
        self.len = lane + 1;
    }

    /// A committed lane's mapping.
    pub fn mapping(&self, lane: usize) -> &Mapping {
        assert!(lane < self.len, "lane {lane} not committed");
        &self.slots[lane]
    }

    /// Runs the rejection ladder over every committed lane: a
    /// branchless fanout pass, then a branchless capacity pass, both as
    /// contiguous per-level sweeps over the gathered scratch. Verdicts
    /// classify each lane exactly as [`EvalContext::precheck`] would —
    /// fanout failures win over capacity failures, and valid lanes
    /// carry the identical buffer pressure.
    ///
    /// Feeds the scalar rejection counters (`model.reject.*`,
    /// `model.eval.valid`) plus the batch-shape counters
    /// (`model.batch.*`), so batched and scalar runs stay comparable.
    pub fn screen(&mut self) -> &[BatchVerdict] {
        let n = self.len;
        let mut fan_ok = [true; BATCH];
        for level in 0..self.fan_x.len() {
            let fx = self.fan_x[level];
            let fy = self.fan_y[level];
            let sx = &self.sx[level * BATCH..level * BATCH + n];
            let sy = &self.sy[level * BATCH..level * BATCH + n];
            for lane in 0..n {
                fan_ok[lane] &= (sx[lane] <= fx) & (sy[lane] <= fy);
            }
        }

        let mut cap_ok = [true; BATCH];
        let mut pressure = [0u64; BATCH];
        let mut shared = [0u64; BATCH];
        for entry in &self.caps {
            match entry.shared {
                Some(available) => {
                    shared[..n].fill(0);
                    for &(_, _, row) in &entry.ops {
                        let foot = &self.foot[row * BATCH..row * BATCH + n];
                        for lane in 0..n {
                            shared[lane] = shared[lane].saturating_add(foot[lane]);
                        }
                    }
                    for lane in 0..n {
                        cap_ok[lane] &= shared[lane] <= available;
                        pressure[lane] = pressure[lane].saturating_add(shared[lane]);
                    }
                }
                None => {
                    for &(_, available, row) in &entry.ops {
                        let foot = &self.foot[row * BATCH..row * BATCH + n];
                        for lane in 0..n {
                            cap_ok[lane] &= foot[lane] <= available;
                            pressure[lane] = pressure[lane].saturating_add(foot[lane]);
                        }
                    }
                }
            }
        }

        let mut killed_fanout = 0u64;
        let mut killed_capacity = 0u64;
        let mut survivors = 0u64;
        for lane in 0..n {
            self.verdicts[lane] = if !fan_ok[lane] {
                killed_fanout += 1;
                BatchVerdict::RejectFanout
            } else if !cap_ok[lane] {
                killed_capacity += 1;
                BatchVerdict::RejectCapacity
            } else {
                survivors += 1;
                BatchVerdict::Valid {
                    pressure: pressure[lane],
                }
            };
        }
        BATCH_CHUNKS.inc();
        BATCH_LANES.add(killed_fanout + killed_capacity + survivors);
        BATCH_KILL_FANOUT.add(killed_fanout);
        BATCH_KILL_CAPACITY.add(killed_capacity);
        BATCH_SURVIVORS.add(survivors);
        REJECT_FANOUT.add(killed_fanout);
        REJECT_CAPACITY.add(killed_capacity);
        EVAL_VALID.add(survivors);
        &self.verdicts[..n]
    }

    /// Lean cost of a lane [`Self::screen`] declared valid —
    /// bit-identical to the corresponding [`CostReport`] fields (see
    /// [`crate::summarize_with`]). Costing a rejected lane is a logic
    /// error: the result would describe an unrunnable mapping.
    pub fn summary(&self, lane: usize) -> CostSummary {
        assert!(lane < self.len, "lane {lane} not committed");
        summarize_unchecked(self.ctx, &self.slots[lane])
    }

    /// Full cost report of a lane [`Self::screen`] declared valid —
    /// bit-identical to `evaluate_with` on the same mapping. Intended
    /// for the rare candidates worth keeping; the hot path sticks to
    /// [`Self::summary`].
    pub fn report(&self, lane: usize) -> CostReport {
        assert!(lane < self.len, "lane {lane} not committed");
        evaluate_unchecked(self.ctx, &self.slots[lane])
    }

    /// Full-parity batched evaluation: screens every committed lane and
    /// returns, per lane, exactly what
    /// [`evaluate_with`](crate::evaluate_with) returns on that mapping —
    /// the identical `CostReport` for valid lanes, the identical
    /// first-failure [`InvalidMapping`] for rejected ones (recovered by
    /// re-running the scalar screen on the cold rejected lanes).
    pub fn evaluate(&mut self) -> Vec<Result<CostReport, InvalidMapping>> {
        self.screen();
        (0..self.len)
            .map(|lane| match self.verdicts[lane] {
                BatchVerdict::Valid { .. } => Ok(evaluate_unchecked(self.ctx, &self.slots[lane])),
                _ => Err(self
                    .ctx
                    .precheck(&self.slots[lane])
                    .expect_err("ladder rejected a lane the scalar screen accepts")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_with, ModelOptions};
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;
    use ruby_workload::{Dim, ProblemShape};

    #[test]
    fn ladder_matches_scalar_precheck_on_handmade_candidates() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 16, 4, 8, 8, 3, 3, (1, 1));
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut batch = BatchEvalContext::new(&ctx);
        let mut builder = Mapping::builder(3);
        let mut expected = Vec::new();
        for sx in [1u64, 7, 15, 28] {
            for t in [1u64, 3, 32, 96] {
                builder.reset();
                builder.set_tile(Dim::Q, 1, SlotKind::SpatialX, sx);
                builder.set_tile(Dim::M, 2, SlotKind::Temporal, t);
                builder.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
                let m = builder.build_for_bounds(shape.bounds()).unwrap();
                expected.push(ctx.precheck(&m));
                batch.slot().clone_from(&m);
                batch.commit();
            }
        }
        let verdicts = batch.screen().to_vec();
        assert_eq!(verdicts.len(), expected.len());
        for (lane, want) in expected.iter().enumerate() {
            match (verdicts[lane], want) {
                (BatchVerdict::Valid { pressure }, Ok(p)) => assert_eq!(pressure, *p),
                (BatchVerdict::RejectFanout, Err(InvalidMapping::FanoutExceeded { .. })) => {}
                (BatchVerdict::RejectCapacity, Err(InvalidMapping::CapacityExceeded { .. })) => {}
                (got, want) => panic!("lane {lane}: batch {got:?} vs scalar {want:?}"),
            }
        }
    }

    #[test]
    fn full_parity_evaluate_matches_scalar_bitwise() {
        let arch = presets::toy_linear(9, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut batch = BatchEvalContext::new(&ctx);
        let mut builder = Mapping::builder(2);
        let mut mappings = Vec::new();
        for s in [1u64, 3, 9, 10] {
            builder.reset();
            builder.set_tile(Dim::M, 0, SlotKind::SpatialX, s);
            let m = builder.build_for_bounds(shape.bounds()).unwrap();
            batch.slot().clone_from(&m);
            batch.commit();
            mappings.push(m);
        }
        let got = batch.evaluate();
        for (lane, m) in mappings.iter().enumerate() {
            assert_eq!(got[lane], evaluate_with(&ctx, m), "lane {lane}");
        }
    }

    #[test]
    fn batch_refills_after_clear() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 12);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut batch = BatchEvalContext::new(&ctx);
        while !batch.is_full() {
            batch.commit(); // all-ones default mapping in every lane
        }
        assert_eq!(batch.screen().len(), BATCH);
        batch.clear();
        assert!(batch.is_empty());
        batch.commit();
        assert_eq!(batch.screen().len(), 1);
        assert!(matches!(batch.screen()[0], BatchVerdict::Valid { .. }));
    }
}
