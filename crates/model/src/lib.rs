//! Analytical cost model for the Ruby reproduction — the stand-in for
//! Timeloop's model + Accelergy.
//!
//! Given an [`ruby_arch::Architecture`], a [`ruby_workload::ProblemShape`]
//! and a [`ruby_mapping::Mapping`], [`evaluate`] either rejects the
//! mapping (capacity or fanout violation) or produces a [`CostReport`]
//! with cycles, energy, EDP, utilization and per-level per-tensor access
//! counts.
//!
//! # Modeling rules (Timeloop-conformant, remainder-exact where it counts)
//!
//! * **Temporal reuse**: a tile resident at level `l` is not refetched
//!   across the innermost contiguous run of loops *irrelevant* to the
//!   tensor above `l`; every loop outside that run multiplies refetches.
//! * **Remainders**: data volumes along relevant dimensions use exact
//!   tile partitions (they telescope to the dimension bound); halo sums
//!   use the closed form over the exact tile multisets; cycle counts run
//!   residual tiles for exactly their residual trip counts.
//! * **Multicast**: spatial children that need the same data (spatial
//!   loops irrelevant to the tensor) receive one parent read fanned out
//!   over the network; disable with [`ModelOptions::multicast`].
//! * **Spatial reduction**: partial sums from spatial children merge
//!   in-network before updating the parent; disable with
//!   [`ModelOptions::spatial_reduction`].
//! * **Outputs**: reduction iterations outside a level spill and refetch
//!   partial sums; the first pass initializes without a read.
//!
//! Irrelevant-loop *repeat multipliers* use nominal (ceiling) loop counts;
//! on residual branches the true repeat count can be slightly lower, so
//! refetch traffic is counted conservatively (within a few percent).
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapping::{Mapping, SlotKind};
//! use ruby_model::{evaluate, ModelOptions};
//! use ruby_workload::{Dim, ProblemShape};
//!
//! let arch = presets::toy_linear(16, 1024);
//! let shape = ProblemShape::rank1("d113", 113);
//! let mut b = Mapping::builder(2);
//! b.set_tile(Dim::M, 0, SlotKind::SpatialX, 16);
//! let mapping = b.build_for_bounds(shape.bounds()).unwrap();
//! let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
//! assert_eq!(report.cycles(), 8); // ceil(113 / 16)
//! ```

mod access;
mod batch;
mod bound;
mod context;
mod latency;
mod report;
mod validity;

use ruby_arch::Architecture;
use ruby_mapping::Mapping;
use ruby_workload::ProblemShape;

pub use batch::{BatchEvalContext, BatchVerdict, BATCH};
pub use context::{evaluate_with, summarize_with, EvalContext};
pub use report::{AccessCounts, CostReport, CostSummary, LevelStats};
pub use validity::InvalidMapping;

/// Toggles for the cost model's network behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelOptions {
    /// Parent reads fan identical data out to spatial children in one
    /// access (on by default; both Eyeriss and Simba NoCs multicast).
    pub multicast: bool,
    /// Partial sums from spatial children reduce in-network before
    /// reaching the parent (on by default).
    pub spatial_reduction: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            multicast: true,
            spatial_reduction: true,
        }
    }
}

/// Evaluates `mapping` for `shape` on `arch`.
///
/// Builds a fresh [`EvalContext`] per call; when evaluating many
/// mappings against one `(arch, shape)` pair, build the context once
/// and call [`evaluate_with`] instead — the results are bit-identical.
///
/// # Errors
///
/// Returns [`InvalidMapping`] when the mapping needs more buffer capacity
/// or spatial fanout than the architecture provides.
pub fn evaluate(
    arch: &Architecture,
    shape: &ProblemShape,
    mapping: &Mapping,
    opts: &ModelOptions,
) -> Result<CostReport, InvalidMapping> {
    evaluate_with(&EvalContext::new(arch, shape, *opts), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::{Architecture, Capacity, Fanout, MemLevel};
    use ruby_energy::TechnologyModel;
    use ruby_mapping::SlotKind;
    use ruby_workload::{Dim, ProblemShape};

    fn toy(noc_hop: Option<f64>) -> Architecture {
        let tech = TechnologyModel::default();
        let mut dram = MemLevel::new(
            "DRAM",
            Capacity::Unbounded,
            [true; 3],
            tech.dram_access_energy(),
            Fanout::linear(4),
        );
        if let Some(hop) = noc_hop {
            dram = dram.with_noc_energy(hop);
        }
        let spad = MemLevel::new(
            "SPAD",
            Capacity::Shared(512),
            [true; 3],
            1.0,
            Fanout::unit(),
        );
        Architecture::new("noc_toy", vec![dram, spad], tech)
    }

    #[test]
    fn noc_energy_adds_network_cost() {
        let shape = ProblemShape::rank1("d", 100);
        let mut b = ruby_mapping::Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let opts = ModelOptions::default();
        let base = evaluate(&toy(None), &shape, &mapping, &opts).unwrap();
        let with_noc = evaluate(&toy(Some(2.0)), &shape, &mapping, &opts).unwrap();
        // Network words below DRAM: weights 100 + input copies 4 +
        // psum returns 100 = 204, at 2.0 each.
        let expected = base.energy() + 2.0 * 204.0;
        assert!(
            (with_noc.energy() - expected).abs() < 1e-6,
            "{}",
            with_noc.energy()
        );
        assert_eq!(with_noc.cycles(), base.cycles());
    }

    #[test]
    fn zero_hop_energy_is_free() {
        let shape = ProblemShape::rank1("d", 16);
        let mapping = ruby_mapping::Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let opts = ModelOptions::default();
        let base = evaluate(&toy(None), &shape, &mapping, &opts).unwrap();
        let zero = evaluate(&toy(Some(0.0)), &shape, &mapping, &opts).unwrap();
        assert!((zero.energy() - base.energy()).abs() < 1e-9);
    }
}
