//! Per-level per-tensor access counting.
//!
//! See the crate docs for the modeling rules. The central quantities, for
//! a tensor `t` stored at level `l` with boundary `b` (the chain boundary
//! of the tile stored at `l`):
//!
//! * `sweep(t, b)` — data words delivered across boundary `b` in one full
//!   pass over the counted relevant loops. Along simple ranks the tile
//!   partition telescopes to the dimension bound; sliding-window ranks
//!   use the exact halo closed form over the tile multisets.
//! * `A(t, b)` — the repeat multiplier from *counted* irrelevant temporal
//!   loops outside `b` (everything above the innermost contiguous
//!   irrelevant run, which is reused from the resident tile).
//! * `S_irr(t, range)` — the product of irrelevant spatial loop counts in
//!   a slot range: multicast copies (inputs/weights) or spatially reduced
//!   partial-sum copies (outputs).

use ruby_arch::Architecture;
use ruby_mapping::{Mapping, ProfileScratch, SlotId};
use ruby_workload::{Dim, Operand, ProblemShape, Rank, TensorDef};

use crate::report::AccessCounts;
use crate::ModelOptions;

/// Counts accesses for every level (outermost first) and operand
/// (indexed by [`Operand::index`]). `tensors` and `chains` are the
/// operand projections and storage chains precomputed by
/// [`crate::EvalContext`], indexed by [`Operand::index`].
pub(crate) fn count_accesses(
    arch: &Architecture,
    shape: &ProblemShape,
    tensors: &[TensorDef; 3],
    chains: &[Vec<usize>; 3],
    mapping: &Mapping,
    opts: &ModelOptions,
) -> Vec<[AccessCounts; 3]> {
    let analyzer = Analyzer::new(shape, mapping);
    let mut acc = vec![[AccessCounts::default(); 3]; arch.num_levels()];
    let macs = shape.macs() as f64;

    for op in Operand::ALL {
        let tensor = &tensors[op.index()];
        let chain = &chains[op.index()];
        debug_assert!(!chain.is_empty(), "DRAM stores everything");
        for (pos, &parent) in chain.iter().enumerate() {
            let b_parent = mapping.layout().storage_boundary(parent);
            match chain.get(pos + 1) {
                Some(&child) => {
                    let b_child = mapping.layout().storage_boundary(child);
                    let a = analyzer.counted_irrelevant_temporal(tensor, b_child);
                    let sweep = analyzer.sweep(tensor, b_child);
                    let s_all = analyzer.irrelevant_spatial(tensor, b_child, usize::MAX);
                    let s_outer = analyzer.irrelevant_spatial(tensor, b_parent, usize::MAX);
                    if op == Operand::Output {
                        // Reduction passes outside the child force psum
                        // spills: A passes drain, A−1 refetch.
                        let refetch = (a - 1.0).max(0.0);
                        acc[child][op.index()].fills += refetch * sweep * s_all;
                        let read_mult = if opts.multicast { s_outer } else { s_all };
                        acc[parent][op.index()].reads += refetch * sweep * read_mult;
                        acc[child][op.index()].reads += a * sweep * s_all;
                        let upd_mult = if opts.spatial_reduction {
                            s_outer
                        } else {
                            s_all
                        };
                        acc[parent][op.index()].updates += a * sweep * upd_mult;
                        // Refetched psums go down, drained psums come up.
                        acc[parent][op.index()].network += (refetch + a) * sweep * s_all;
                    } else {
                        acc[child][op.index()].fills += a * sweep * s_all;
                        let read_mult = if opts.multicast { s_outer } else { s_all };
                        acc[parent][op.index()].reads += a * sweep * read_mult;
                        acc[parent][op.index()].network += a * sweep * s_all;
                    }
                }
                None => {
                    // The compute (MAC) units are this level's child.
                    let s_below = analyzer.irrelevant_spatial(tensor, 0, b_parent);
                    if op == Operand::Output {
                        let updates = if opts.spatial_reduction {
                            macs / s_below
                        } else {
                            macs
                        };
                        acc[parent][op.index()].updates += updates;
                        acc[parent][op.index()].network += macs;
                        // Read-modify-write: every update except the first
                        // write of each fresh psum-tile establishment.
                        let a = analyzer.counted_irrelevant_temporal(tensor, b_parent);
                        let fresh = analyzer.sweep(tensor, b_parent)
                            * a
                            * analyzer.irrelevant_spatial(tensor, b_parent, usize::MAX);
                        acc[parent][op.index()].reads += (updates - fresh).max(0.0);
                    } else {
                        let reads = if opts.multicast { macs / s_below } else { macs };
                        acc[parent][op.index()].reads += reads;
                        acc[parent][op.index()].network += macs;
                    }
                }
            }
        }
    }
    acc
}

/// Precomputed per-dimension tile counts plus the loop-walking helpers.
struct Analyzer<'a> {
    shape: &'a ProblemShape,
    mapping: &'a Mapping,
    /// Tile count of dimension `d` at chain boundary `b`, flattened as
    /// `tiles_at[d.index() * boundaries + b]` (one allocation instead of
    /// a profile multiset per dim × boundary — this constructor runs
    /// once per costed candidate).
    tiles_at: Vec<u64>,
    /// Boundaries per dimension (`num_slots + 1`, identical for all).
    boundaries: usize,
}

impl<'a> Analyzer<'a> {
    fn new(shape: &'a ProblemShape, mapping: &'a Mapping) -> Self {
        let boundaries = mapping.layout().num_slots() + 1;
        let mut tiles_at = Vec::with_capacity(Dim::ALL.len() * boundaries);
        let mut scratch = ProfileScratch::new();
        let mut counts = Vec::with_capacity(boundaries);
        for d in Dim::ALL {
            mapping.boundary_tile_counts_into(d, &mut scratch, &mut counts);
            tiles_at.extend_from_slice(&counts);
        }
        Analyzer {
            shape,
            mapping,
            tiles_at,
            boundaries,
        }
    }

    /// Exact number of tiles of `d` at chain boundary `b`.
    fn tiles(&self, d: Dim, b: usize) -> u64 {
        self.tiles_at[d.index() * self.boundaries + b]
    }

    /// Nontrivial temporal loops outside boundary `b`, innermost first
    /// (dims within a block follow the block's permutation).
    fn temporal_loops_outside(&self, b: usize) -> impl Iterator<Item = (Dim, u64)> + '_ {
        let layout = self.mapping.layout();
        layout
            .slots_outside(b)
            .filter(move |&s| !layout.kind_of(s).is_spatial())
            .flat_map(move |s| {
                let level = layout.level_of(s);
                self.mapping
                    .permutation(level)
                    .iter()
                    .map(move |&d| (d, self.mapping.loop_count(d, s)))
            })
            .filter(|&(_, c)| c > 1)
    }

    /// The repeat multiplier from counted irrelevant temporal loops
    /// outside `b` (the innermost contiguous irrelevant run is reused).
    fn counted_irrelevant_temporal(&self, tensor: &TensorDef, b: usize) -> f64 {
        let mut mult = 1.0;
        let mut in_reuse_run = true;
        for (d, count) in self.temporal_loops_outside(b) {
            if tensor.is_relevant(d) {
                in_reuse_run = false;
            } else if !in_reuse_run {
                mult *= count as f64;
            }
        }
        mult
    }

    /// Product of irrelevant spatial loop counts at slots in
    /// `[from, to)` (clamped to the layout).
    fn irrelevant_spatial(&self, tensor: &TensorDef, from: usize, to: usize) -> f64 {
        let layout = self.mapping.layout();
        let to = to.min(layout.num_slots());
        let mut mult = 1.0;
        for s in from..to {
            let slot = SlotId::new(s);
            if !layout.kind_of(slot).is_spatial() {
                continue;
            }
            for d in Dim::ALL {
                if tensor.is_relevant(d) {
                    continue;
                }
                let c = self.mapping.loop_count(d, slot);
                if c > 1 {
                    mult *= c as f64;
                }
            }
        }
        mult
    }

    /// Words delivered across boundary `b` per full pass of the counted
    /// relevant loops.
    fn sweep(&self, tensor: &TensorDef, b: usize) -> f64 {
        tensor
            .ranks()
            .iter()
            .map(|rank| match *rank {
                Rank::Simple(d) => self.shape.bound(d) as f64,
                Rank::Strided {
                    pos,
                    win,
                    stride,
                    dilation,
                } => {
                    // Σ over the (pos, win) tile grid of
                    // (tp−1)·s + (tw−1)·e + 1, separable because tile
                    // sizes along each dim sum to the dim bound.
                    let np = self.tiles(pos, b) as f64;
                    let nw = self.tiles(win, b) as f64;
                    let dp = self.shape.bound(pos) as f64;
                    let dw = self.shape.bound(win) as f64;
                    let s = stride as f64;
                    let e = dilation as f64;
                    s * nw * dp + e * np * dw + np * nw * (1.0 - s - e)
                }
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;

    /// Builds the operand projections and storage chains the way
    /// `EvalContext` does, then counts.
    fn count(
        arch: &Architecture,
        shape: &ProblemShape,
        mapping: &Mapping,
        opts: &ModelOptions,
    ) -> Vec<[AccessCounts; 3]> {
        let tensors = Operand::ALL.map(|op| shape.tensor(op));
        let chains = Operand::ALL.map(|op| arch.storage_chain(op));
        count_accesses(arch, shape, &tensors, &chains, mapping, opts)
    }

    fn rank1_mapping(d: u64, spatial: u64) -> (ProblemShape, Mapping) {
        let shape = ProblemShape::rank1("d", d);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, spatial);
        (shape.clone(), b.build_for_bounds(shape.bounds()).unwrap())
    }

    #[test]
    fn rank1_counts_match_hand_calculation() {
        let arch = presets::toy_linear(4, 1024);
        let (shape, mapping) = rank1_mapping(100, 4);
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let w = Operand::Weight.index();
        let i = Operand::Input.index();
        let o = Operand::Output.index();
        // Weights: each of the 100 elements lands in one PE once.
        assert_eq!(acc[1][w].fills, 100.0);
        assert_eq!(acc[0][w].reads, 100.0);
        assert_eq!(acc[1][w].reads, 100.0); // one read per MAC
                                            // Input: one element, broadcast to 4 PEs.
        assert_eq!(acc[1][i].fills, 4.0);
        assert_eq!(acc[0][i].reads, 1.0); // multicast
        assert_eq!(acc[1][i].reads, 100.0);
        // Output: no reduction loops -> written once, drained once.
        assert_eq!(acc[1][o].updates, 100.0);
        assert_eq!(acc[1][o].reads, 100.0); // drain
        assert_eq!(acc[1][o].fills, 0.0);
        assert_eq!(acc[0][o].updates, 100.0);
    }

    #[test]
    fn network_words_counted_at_parent() {
        let arch = presets::toy_linear(4, 1024);
        let (shape, mapping) = rank1_mapping(100, 4);
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        // Weights: 100 words delivered over the DRAM→PE network.
        assert_eq!(acc[0][Operand::Weight.index()].network, 100.0);
        // Input: the single element is copied to all 4 PEs (per-receiver
        // wire traffic, even though the DRAM port is read once).
        assert_eq!(acc[0][Operand::Input.index()].network, 4.0);
        // Outputs: 100 partial sums return over the network.
        assert_eq!(acc[0][Operand::Output.index()].network, 100.0);
        // The PE level's own (unit) fanout carries the MAC operands.
        assert_eq!(acc[1][Operand::Weight.index()].network, 100.0);
    }

    #[test]
    fn multicast_off_multiplies_parent_reads() {
        let arch = presets::toy_linear(4, 1024);
        let (shape, mapping) = rank1_mapping(100, 4);
        let opts = ModelOptions {
            multicast: false,
            spatial_reduction: true,
        };
        let acc = count(&arch, &shape, &mapping, &opts);
        let i = Operand::Input.index();
        assert_eq!(acc[0][i].reads, 4.0); // one DRAM read per PE copy
    }

    #[test]
    fn temporal_reuse_skips_innermost_irrelevant_run() {
        // GEMM 8x8x8 on the 2-level toy, everything temporal at DRAM.
        // Default permutation [S,R,Q,P,C,M,N] puts P (irrelevant to
        // weights) inside C and M: weights enjoy temporal reuse over P.
        let arch = presets::toy_linear(4, 65536);
        let shape = ProblemShape::gemm("g", 8, 8, 8);
        let mapping = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let w = Operand::Weight.index();
        let i = Operand::Input.index();
        // Weight spad tile is a single element; P iterations (innermost
        // irrelevant run) are reused, so each weight is fetched once.
        assert_eq!(acc[1][w].fills, 64.0);
        // Inputs: M loops sit outside C; every M iteration refetches the
        // K×N input: 8 × 64 = 512.
        assert_eq!(acc[1][i].fills, 512.0);
    }

    #[test]
    fn permutation_changes_reuse() {
        // Same GEMM, but put M innermost: now weights refetch per M-sweep
        // of... M is relevant to weights, so weights still fetch 64; the
        // INPUT becomes the reused tensor (M innermost = irrelevant run
        // for inputs).
        let arch = presets::toy_linear(4, 65536);
        let shape = ProblemShape::gemm("g", 8, 8, 8);
        let mut b = Mapping::builder(2);
        b.set_permutation(0, [Dim::M, Dim::S, Dim::R, Dim::Q, Dim::P, Dim::C, Dim::N]);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let i = Operand::Input.index();
        let w = Operand::Weight.index();
        assert_eq!(acc[1][i].fills, 64.0); // inputs reused across M
                                           // Weights refetched for every P iteration outside C/M: 8 × 64.
        assert_eq!(acc[1][w].fills, 512.0);
    }

    #[test]
    fn output_reduction_spills() {
        // GEMM with reduction dim C outside the output's storage level.
        // Default perm [.., P, C, M, N]: C sits outside P... relative to
        // outputs, C is irrelevant; with C *not* innermost (P is inside),
        // partial sums spill once per C tile.
        let arch = presets::toy_linear(4, 65536);
        let shape = ProblemShape::gemm("g", 4, 4, 8);
        let mut b = Mapping::builder(2);
        // Put C outermost at DRAM so outputs cannot keep partials inside.
        b.set_permutation(0, [Dim::S, Dim::R, Dim::Q, Dim::P, Dim::M, Dim::N, Dim::C]);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let o = Operand::Output.index();
        // |O| = 16, A = 8 reduction passes: drains 128, refetches 112.
        assert_eq!(acc[1][o].reads, 128.0);
        assert_eq!(acc[1][o].fills, 112.0);
        assert_eq!(acc[0][o].updates, 128.0);
        assert_eq!(acc[0][o].reads, 112.0);
    }

    #[test]
    fn output_kept_stationary_never_spills() {
        // Same GEMM but C innermost (inside all output-relevant loops):
        // partials accumulate in the spad and drain once.
        let arch = presets::toy_linear(4, 65536);
        let shape = ProblemShape::gemm("g", 4, 4, 8);
        let mut b = Mapping::builder(2);
        b.set_permutation(0, [Dim::C, Dim::S, Dim::R, Dim::Q, Dim::P, Dim::M, Dim::N]);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let o = Operand::Output.index();
        assert_eq!(acc[1][o].fills, 0.0);
        // 112 read-modify-write reads (7 per element) + 16 drain reads.
        assert_eq!(acc[1][o].reads, 128.0);
        assert_eq!(acc[0][o].updates, 16.0);
        assert_eq!(acc[0][o].reads, 0.0);
    }

    #[test]
    fn input_halo_sweep_exact() {
        // Conv P=4, R=3, stride 1 (input height 6), tiled into 2 P-tiles
        // at DRAM: each P-tile of 2 rows needs (2−1)+3 = 4 input rows;
        // 2 tiles × 4 = 8 rows fetched (halo overlap of 2 rows refetched).
        let shape = ProblemShape::conv("c", 1, 1, 1, 4, 1, 3, 1, (1, 1));
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::P, 1, SlotKind::Temporal, 2);
        b.set_tile(Dim::R, 1, SlotKind::Temporal, 3);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let analyzer = Analyzer::new(&shape, &mapping);
        let input = shape.tensor(Operand::Input);
        let b_spad = mapping.layout().storage_boundary(1);
        assert_eq!(analyzer.sweep(&input, b_spad), 8.0);
        // At the innermost boundary (unit tiles) the sweep equals MACs
        // along the coupled pair: 4 × 3 = 12.
        assert_eq!(analyzer.sweep(&input, 0), 12.0);
    }

    #[test]
    fn weight_sweep_is_tensor_size_at_any_boundary() {
        let shape = ProblemShape::conv("c", 1, 8, 4, 10, 10, 3, 3, (1, 1));
        let mapping = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let analyzer = Analyzer::new(&shape, &mapping);
        let w = shape.tensor(Operand::Weight);
        for b in [0, 3, 6] {
            assert_eq!(analyzer.sweep(&w, b), (8 * 4 * 3 * 3) as f64);
        }
    }

    #[test]
    fn bypass_routes_traffic_around_glb() {
        // Eyeriss-like: weights bypass the GLB, so GLB weight accesses
        // must be zero and DRAM serves PE weight fills directly.
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("c", 1, 12, 4, 14, 14, 3, 3, (1, 1));
        let mut b = Mapping::builder(3);
        b.set_tile(Dim::M, 1, SlotKind::SpatialY, 12);
        b.set_tile(Dim::Q, 1, SlotKind::SpatialX, 14);
        b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
        b.set_tile(Dim::S, 2, SlotKind::Temporal, 3);
        b.set_tile(Dim::C, 2, SlotKind::Temporal, 4);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        let w = Operand::Weight.index();
        assert_eq!(acc[1][w].total(), 0.0, "weights must bypass the GLB");
        assert!(acc[0][w].reads > 0.0);
        assert!(acc[2][w].fills > 0.0);
    }

    #[test]
    fn total_sums_are_finite_and_positive() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("c", 1, 64, 32, 28, 28, 3, 3, (1, 1));
        let mut b = Mapping::builder(3);
        b.set_tile(Dim::Q, 1, SlotKind::SpatialX, 14);
        b.set_tile(Dim::M, 1, SlotKind::SpatialY, 12);
        b.set_tile(Dim::C, 2, SlotKind::Temporal, 8);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let acc = count(&arch, &shape, &mapping, &ModelOptions::default());
        for level in &acc {
            for counts in level {
                assert!(counts.total().is_finite());
                assert!(counts.total() >= 0.0);
            }
        }
    }
}
