//! Mapping-independent cost lower bounds.
//!
//! The enumeration backend in `ruby_search` wants to discard candidate
//! mappings (and whole enumeration subtrees) *before* running the full
//! access-counting pipeline. That requires an *admissible* bound: a value
//! provably ≤ the true cost of every mapping the model would accept
//! (fanout- and capacity-valid). Mappings the model rejects never become
//! the incumbent best, so the bound may ignore them.
//!
//! Two quantities compose into a bound on any search objective:
//!
//! * **Energy floor** ([`energy_floor`], precomputed once per
//!   [`crate::EvalContext`]): compute energy plus compulsory traffic.
//!   Every adjacent `(parent, child)` pair of a tensor's storage chain
//!   moves at least one full *sweep* of the tensor (`a ≥ 1` temporal
//!   passes, spatial multipliers ≥ 1 in `access.rs`), and the sweep
//!   itself is bounded below per rank: simple ranks always telescope to
//!   the dimension bound, sliding-window ranks are bilinear in the two
//!   tile counts, so their minimum over the `[1, D_pos] × [1, D_win]`
//!   rectangle sits at a corner. The terminal (innermost storing) level
//!   additionally serves every MAC, divided by at most the total fanout
//!   below it — for *fanout-valid* mappings the irrelevant-spatial
//!   divisor `s_below` never exceeds `Π fanout(l).total()` over the
//!   levels at or inside the terminal one.
//!
//! * **Cycle floor**: `latency::cycles` is a `max(compute_cycles, …)`,
//!   so the mapping's own sequential step count (the product of per-dim
//!   temporal tile counts, known exactly from a tile-chain prefix) is
//!   already a valid bound; no extra machinery is needed here.
//!
//! The search side combines them per objective (EDP multiplies the two
//! floors, which is sound because both factors are positive).

use ruby_arch::Architecture;
use ruby_workload::{Operand, ProblemShape, Rank, TensorDef};

use crate::ModelOptions;

/// `fanout_below[l]`: product of fanout totals of levels `l..end` — the
/// largest spatial divisor any valid mapping can apply at level `l`.
pub(crate) fn max_fanout_below(arch: &Architecture) -> Vec<f64> {
    let num_levels = arch.num_levels();
    let mut fanout_below = vec![1.0f64; num_levels];
    for (i, level) in arch.levels().iter().enumerate().rev() {
        let inner = if i + 1 < num_levels {
            fanout_below[i + 1]
        } else {
            1.0
        };
        fanout_below[i] = inner * level.fanout().total() as f64;
    }
    fanout_below
}

/// A lower bound on the total energy of any valid mapping whose spatial
/// fanout below level `l` is at most `fanout_below[l]`, given the
/// mapping-independent context pieces. Passing [`max_fanout_below`]
/// bounds every valid mapping; passing a mapping subset's exact utilized
/// fanout (e.g. an enumeration region's shared spatial signature)
/// tightens the floor for that subset. See the module docs for the
/// admissibility argument.
pub(crate) fn energy_floor(
    arch: &Architecture,
    shape: &ProblemShape,
    tensors: &[TensorDef; 3],
    chains: &[Vec<usize>; 3],
    opts: &ModelOptions,
    compute_energy: f64,
    fanout_below: &[f64],
) -> f64 {
    let macs = shape.macs() as f64;
    let mut floor = compute_energy;
    for op in Operand::ALL {
        let tensor = &tensors[op.index()];
        let sweep_min: f64 = tensor
            .ranks()
            .iter()
            .map(|rank| rank_sweep_min(shape, rank))
            .product();
        let chain = &chains[op.index()];
        for (pos, &parent) in chain.iter().enumerate() {
            let pl = &arch.levels()[parent];
            match chain.get(pos + 1) {
                Some(&child) => {
                    // One compulsory sweep crosses the boundary: ≥ sweep
                    // words enter the child, ≥ sweep leave (or are
                    // updated into) the parent, ≥ sweep ride the wires.
                    let cl = &arch.levels()[child];
                    let mut per_word = cl.access_energy() + pl.access_energy();
                    if let Some(hop) = pl.noc_hop_energy() {
                        per_word += hop;
                    }
                    floor += sweep_min * per_word;
                }
                None => {
                    // The innermost storing level serves the MAC units:
                    // `macs` words, divided by at most the full fanout
                    // below when multicast / spatial reduction applies.
                    let divided = if op == Operand::Output {
                        opts.spatial_reduction
                    } else {
                        opts.multicast
                    };
                    let words = if divided {
                        macs / fanout_below[parent]
                    } else {
                        macs
                    };
                    floor += words * pl.access_energy();
                    if let Some(hop) = pl.noc_hop_energy() {
                        floor += macs * hop;
                    }
                }
            }
        }
    }
    floor
}

/// The minimum, over all tilings, of one rank's sweep term (see
/// `access::Analyzer::sweep`). Simple ranks are tiling-independent;
/// strided ranks are bilinear in the two tile counts, minimized at a
/// corner of `[1, D_pos] × [1, D_win]`.
fn rank_sweep_min(shape: &ProblemShape, rank: &Rank) -> f64 {
    match *rank {
        Rank::Simple(d) => shape.bound(d) as f64,
        Rank::Strided {
            pos,
            win,
            stride,
            dilation,
        } => {
            let dp = shape.bound(pos) as f64;
            let dw = shape.bound(win) as f64;
            let s = stride as f64;
            let e = dilation as f64;
            let sweep = |np: f64, nw: f64| s * nw * dp + e * np * dw + np * nw * (1.0 - s - e);
            sweep(1.0, 1.0)
                .min(sweep(dp, 1.0))
                .min(sweep(1.0, dw))
                .min(sweep(dp, dw))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{evaluate_with, EvalContext, ModelOptions};
    use ruby_arch::presets;
    use ruby_mapping::{Mapping, SlotKind};
    use ruby_workload::{Dim, ProblemShape};

    #[test]
    fn floor_is_positive_and_below_a_known_evaluation() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        let report = evaluate_with(&ctx, &mapping).unwrap();
        assert!(ctx.energy_floor() > 0.0);
        assert!(
            ctx.energy_floor() <= report.energy(),
            "floor {} exceeds true energy {}",
            ctx.energy_floor(),
            report.energy()
        );
    }

    #[test]
    fn floor_tracks_model_options() {
        // With multicast and spatial reduction off, terminal traffic is
        // not divided by the fanout, so the floor can only grow.
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("c", 1, 16, 8, 14, 14, 3, 3, (1, 1));
        let on = EvalContext::new(&arch, &shape, ModelOptions::default());
        let off = EvalContext::new(
            &arch,
            &shape,
            ModelOptions {
                multicast: false,
                spatial_reduction: false,
            },
        );
        assert!(off.energy_floor() >= on.energy_floor());
    }
}
