//! Reusable evaluation context: everything [`crate::evaluate`] derives
//! from the `(Architecture, ProblemShape, ModelOptions)` triple alone,
//! hoisted out of the per-mapping hot path.
//!
//! A random search evaluates hundreds of thousands of mappings against
//! one fixed architecture and workload. Rebuilding operand projections
//! ([`TensorDef`]s), storage chains and energy coefficients on every call
//! costs several heap allocations per evaluation before any real work
//! happens. [`EvalContext`] computes them once; [`evaluate_with`] then
//! evaluates each candidate against the prepared context, running the
//! cheap rejection tests (spatial fanout, then buffer capacity) before
//! any access counting, so invalid mappings — the vast majority of random
//! samples — exit as early as possible.
//!
//! [`crate::evaluate`] is a thin wrapper that builds a fresh context per
//! call; both paths produce bit-identical [`CostReport`]s.

use ruby_arch::Architecture;
use ruby_mapping::Mapping;
use ruby_telemetry::LazyCounter;
use ruby_workload::{Operand, ProblemShape, TensorDef};

use crate::report::{AccessCounts, CostReport, CostSummary, LevelStats};
use crate::validity::InvalidMapping;
use crate::{access, bound, latency, validity, ModelOptions};

/// Rejection-stage instrumentation for [`evaluate_with`]: which validity
/// wall each candidate hits, and how many survive to full costing. The
/// batched evaluator ([`crate::BatchEvalContext`]) feeds the same
/// counters, so scalar and batched runs report comparable telemetry.
/// No-ops unless the `telemetry` cargo feature is on.
pub(crate) static REJECT_FANOUT: LazyCounter = LazyCounter::new("model.reject.fanout");
pub(crate) static REJECT_CAPACITY: LazyCounter = LazyCounter::new("model.reject.capacity");
pub(crate) static EVAL_VALID: LazyCounter = LazyCounter::new("model.eval.valid");

/// Precomputed per-`(arch, shape)` evaluation state.
///
/// Build once, then call [`evaluate_with`] for every candidate mapping.
///
/// # Examples
///
/// ```
/// use ruby_arch::presets;
/// use ruby_mapping::{Mapping, SlotKind};
/// use ruby_model::{evaluate_with, EvalContext, ModelOptions};
/// use ruby_workload::{Dim, ProblemShape};
///
/// let arch = presets::toy_linear(16, 1024);
/// let shape = ProblemShape::rank1("d113", 113);
/// let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
/// let mut b = Mapping::builder(2);
/// b.set_tile(Dim::M, 0, SlotKind::SpatialX, 16);
/// let mapping = b.build_for_bounds(shape.bounds()).unwrap();
/// assert_eq!(evaluate_with(&ctx, &mapping).unwrap().cycles(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    arch: &'a Architecture,
    shape: &'a ProblemShape,
    opts: ModelOptions,
    /// Operand projections (ranks + relevance masks), indexed by
    /// [`Operand::index`].
    tensors: [TensorDef; 3],
    /// Storage chains (level indices, outermost first), indexed by
    /// [`Operand::index`].
    chains: [Vec<usize>; 3],
    macs: u64,
    /// Total compute energy: `macs × mac_energy`.
    compute_energy: f64,
    total_mac_units: u64,
    /// Admissible lower bound on any valid mapping's energy (see
    /// [`crate::bound`]).
    energy_floor: f64,
}

impl<'a> EvalContext<'a> {
    /// Precomputes the mapping-independent evaluation state.
    pub fn new(arch: &'a Architecture, shape: &'a ProblemShape, opts: ModelOptions) -> Self {
        let tensors = Operand::ALL.map(|op| shape.tensor(op));
        let chains = Operand::ALL.map(|op| arch.storage_chain(op));
        let macs = shape.macs();
        let compute_energy = macs as f64 * arch.mac_energy();
        let energy_floor = bound::energy_floor(
            arch,
            shape,
            &tensors,
            &chains,
            &opts,
            compute_energy,
            &bound::max_fanout_below(arch),
        );
        EvalContext {
            arch,
            shape,
            opts,
            tensors,
            chains,
            macs,
            compute_energy,
            total_mac_units: arch.total_mac_units(),
            energy_floor,
        }
    }

    /// The architecture the context was built for.
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// The workload the context was built for.
    pub fn shape(&self) -> &'a ProblemShape {
        self.shape
    }

    /// The model options baked into the context.
    pub fn options(&self) -> &ModelOptions {
        &self.opts
    }

    /// An admissible lower bound on the energy of *any* mapping this
    /// context would evaluate as valid: no fanout- and capacity-valid
    /// mapping's [`CostReport::energy`] can fall below it (see
    /// [`crate::bound`] for the argument). Search backends combine it
    /// with a cycle bound to prune candidates before evaluation.
    pub fn energy_floor(&self) -> f64 {
        self.energy_floor
    }

    /// The energy floor specialized to mappings whose *utilized* spatial
    /// fanout at level `l` is exactly `utilized[l]` (the product of the
    /// mapping's spatial loop counts at that level). For such mappings
    /// the terminal traffic divisor cannot exceed the product of the
    /// utilized fanouts below the terminal level, so this floor is both
    /// admissible for the subset and at least as tight as
    /// [`Self::energy_floor`]. Enumeration regions share one spatial
    /// signature, making this their exact subset floor.
    ///
    /// # Panics
    ///
    /// Panics if `utilized` does not have one entry per level.
    pub fn energy_floor_for_spatial(&self, utilized: &[u64]) -> f64 {
        assert_eq!(utilized.len(), self.arch.num_levels());
        let mut fanout_below = vec![1.0f64; utilized.len()];
        for (i, &u) in utilized.iter().enumerate().rev() {
            let inner = if i + 1 < utilized.len() {
                fanout_below[i + 1]
            } else {
                1.0
            };
            fanout_below[i] = inner * u.max(1) as f64;
        }
        bound::energy_floor(
            self.arch,
            self.shape,
            &self.tensors,
            &self.chains,
            &self.opts,
            self.compute_energy,
            &fanout_below,
        )
    }

    /// Runs only the cheap validity screens (spatial fanout, then buffer
    /// capacity) without any access counting, returning the mapping's
    /// *buffer pressure*: the summed tile footprint in words over every
    /// capacity-bounded level. A mapping rejected here is exactly the
    /// set [`evaluate_with`] rejects; search backends use this to
    /// discard infeasible candidates — and to rank feasible ones by how
    /// fully they use the buffers — without spending a model evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMapping`] exactly when [`evaluate_with`] would.
    pub fn precheck(&self, mapping: &Mapping) -> Result<u64, InvalidMapping> {
        validity::screen(self.arch, &self.tensors, mapping)
    }

    /// Collects *every* validity violation of `mapping`, in a fixed
    /// deterministic order (fanout by ascending level, then capacity by
    /// ascending level and [`Operand::ALL`] order within a level).
    ///
    /// The result is non-empty exactly when [`Self::precheck`] (and
    /// therefore [`evaluate_with`]) rejects the mapping: both run the
    /// same per-level predicates, this one just keeps scanning past the
    /// first failure. Diagnostics-facing cold path — semantic analyzers
    /// build their reports from this instead of re-deriving the model's
    /// validity rules.
    pub fn violations(&self, mapping: &Mapping) -> Vec<InvalidMapping> {
        let mut out = Vec::new();
        validity::collect_violations(self.arch, &self.tensors, mapping, &mut out);
        out
    }

    pub(crate) fn tensors(&self) -> &[TensorDef; 3] {
        &self.tensors
    }

    pub(crate) fn chains(&self) -> &[Vec<usize>; 3] {
        &self.chains
    }
}

/// Evaluates `mapping` against a prepared [`EvalContext`].
///
/// Produces exactly the same result as [`crate::evaluate`] on the same
/// inputs, but skips all per-call precomputation and rejects invalid
/// mappings before any access counting: every level's spatial fanout is
/// checked first (pure integer comparisons), then buffer capacities
/// (tile footprints), and only survivors reach the access-counting and
/// latency machinery.
///
/// # Errors
///
/// Returns [`InvalidMapping`] when the mapping needs more buffer capacity
/// or spatial fanout than the architecture provides.
///
/// # Panics
///
/// Panics if the mapping was built for a different hierarchy depth.
pub fn evaluate_with(ctx: &EvalContext, mapping: &Mapping) -> Result<CostReport, InvalidMapping> {
    assert_eq!(
        ctx.arch.num_levels(),
        mapping.layout().num_levels(),
        "mapping was built for a different hierarchy depth"
    );
    validity::check_fanout(ctx.arch, mapping).inspect_err(|_| REJECT_FANOUT.inc())?;
    validity::check_capacity(ctx.arch, ctx.tensors(), mapping)
        .inspect_err(|_| REJECT_CAPACITY.inc())?;
    EVAL_VALID.inc();
    Ok(evaluate_unchecked(ctx, mapping))
}

/// [`evaluate_with`] without the per-level breakdown: same validity
/// screens, same counters, but the result carries only the scalar
/// quantities ([`CostSummary`]) and performs no heap allocation for
/// level names. Every field is bit-identical to what [`evaluate_with`]
/// would report — both run [`cost_core`] — so a caller can search on
/// summaries and materialize the full [`CostReport`] only for the
/// mappings it keeps.
///
/// # Errors
///
/// Returns [`InvalidMapping`] exactly when [`evaluate_with`] would.
///
/// # Panics
///
/// Panics if the mapping was built for a different hierarchy depth.
pub fn summarize_with(ctx: &EvalContext, mapping: &Mapping) -> Result<CostSummary, InvalidMapping> {
    assert_eq!(
        ctx.arch.num_levels(),
        mapping.layout().num_levels(),
        "mapping was built for a different hierarchy depth"
    );
    validity::check_fanout(ctx.arch, mapping).inspect_err(|_| REJECT_FANOUT.inc())?;
    validity::check_capacity(ctx.arch, ctx.tensors(), mapping)
        .inspect_err(|_| REJECT_CAPACITY.inc())?;
    EVAL_VALID.inc();
    Ok(summarize_unchecked(ctx, mapping))
}

/// The post-validity body shared by every evaluation path: access
/// counting, latency, and the per-level energy accumulation. `stats`
/// optionally collects the per-level breakdown; crucially, the energy
/// sum runs the *same* floating-point additions in the same order
/// whether or not stats are collected, so the lean and full paths are
/// bit-identical by construction.
fn cost_core(
    ctx: &EvalContext,
    mapping: &Mapping,
    mut stats: Option<&mut Vec<LevelStats>>,
) -> (u64, f64, f64) {
    let accesses = access::count_accesses(
        ctx.arch,
        ctx.shape,
        ctx.tensors(),
        ctx.chains(),
        mapping,
        &ctx.opts,
    );
    let cycles = latency::cycles(ctx.arch, mapping, &accesses);

    let mut energy = ctx.compute_energy;
    for (i, level) in ctx.arch.levels().iter().enumerate() {
        let per_tensor = accesses[i];
        let words: f64 = per_tensor.iter().map(AccessCounts::total).sum();
        let mut level_energy = words * level.access_energy();
        if let Some(hop) = level.noc_hop_energy() {
            let network: f64 = per_tensor.iter().map(|c| c.network).sum();
            level_energy += network * hop;
        }
        energy += level_energy;
        if let Some(stats) = stats.as_deref_mut() {
            stats.push(LevelStats::new(
                level.name().to_string(),
                level_energy,
                per_tensor,
            ));
        }
    }

    let utilization = ctx.macs as f64 / (cycles as f64 * ctx.total_mac_units as f64);
    (cycles, energy, utilization)
}

/// Full costing of a mapping *already proven valid* (by
/// [`validity::screen`] or the batched ladder). Skipping the validity
/// re-check is what lets the batched path screen once and cost once.
pub(crate) fn evaluate_unchecked(ctx: &EvalContext, mapping: &Mapping) -> CostReport {
    let mut level_stats = Vec::with_capacity(ctx.arch.num_levels());
    let (cycles, energy, utilization) = cost_core(ctx, mapping, Some(&mut level_stats));
    CostReport::new(ctx.macs, cycles, energy, utilization, level_stats)
}

/// Lean costing of a mapping already proven valid (see
/// [`evaluate_unchecked`]); no per-level allocation.
pub(crate) fn summarize_unchecked(ctx: &EvalContext, mapping: &Mapping) -> CostSummary {
    let (cycles, energy, utilization) = cost_core(ctx, mapping, None);
    CostSummary::new(ctx.macs, cycles, energy, utilization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;
    use ruby_workload::Dim;

    #[test]
    fn context_precomputes_chains_and_tensors() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("c", 1, 8, 4, 14, 14, 3, 3, (1, 1));
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        for op in Operand::ALL {
            assert_eq!(ctx.tensors()[op.index()], shape.tensor(op));
            assert_eq!(ctx.chains()[op.index()], arch.storage_chain(op));
        }
        assert_eq!(ctx.macs, shape.macs());
        assert_eq!(ctx.total_mac_units, arch.total_mac_units());
    }

    #[test]
    fn invalid_mapping_rejected_before_counting() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        assert!(matches!(
            evaluate_with(&ctx, &mapping),
            Err(InvalidMapping::FanoutExceeded { level: 0, .. })
        ));
    }

    #[test]
    fn fanout_rejection_wins_over_capacity() {
        // A mapping violating both fanout (level 0) and shared capacity
        // (level 1) reports the cheaper fanout check first.
        let arch = presets::toy_linear(4, 64);
        let shape = ProblemShape::rank1("d", 100);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 12);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        assert!(matches!(
            evaluate_with(&ctx, &mapping),
            Err(InvalidMapping::FanoutExceeded { .. })
        ));
    }
}
