//! Mapping validity: buffer capacities and spatial fanout limits.

use ruby_arch::{Architecture, Capacity};
use ruby_mapping::Mapping;
use ruby_workload::{Operand, TensorDef};

/// Why a mapping cannot run on an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidMapping {
    /// A tensor tile (or the sum of stored tiles, for shared buffers)
    /// exceeds a level's capacity.
    CapacityExceeded {
        /// Architecture level index (0 = outermost).
        level: usize,
        /// Operand whose buffer overflowed, or `None` for a shared buffer.
        operand: Option<Operand>,
        /// Words required.
        needed: u64,
        /// Words available.
        available: u64,
    },
    /// The spatial extent mapped below a level exceeds its fanout.
    FanoutExceeded {
        /// Architecture level index.
        level: usize,
        /// `(x, y)` extents requested.
        requested: (u64, u64),
        /// `(x, y)` extents available.
        available: (u64, u64),
    },
}

impl std::fmt::Display for InvalidMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidMapping::CapacityExceeded { level, operand, needed, available } => {
                match operand {
                    Some(op) => write!(
                        f,
                        "level {level}: {op} tile needs {needed} words, buffer holds {available}"
                    ),
                    None => write!(
                        f,
                        "level {level}: stored tiles need {needed} words, shared buffer holds {available}"
                    ),
                }
            }
            InvalidMapping::FanoutExceeded { level, requested, available } => write!(
                f,
                "level {level}: spatial extent {}x{} exceeds fanout {}x{}",
                requested.0, requested.1, available.0, available.1
            ),
        }
    }
}

impl std::error::Error for InvalidMapping {}

/// Checks every level's spatial fanout. Pure integer comparisons over
/// precomputed extents — the cheapest rejection test, run first.
pub(crate) fn check_fanout(arch: &Architecture, mapping: &Mapping) -> Result<(), InvalidMapping> {
    for (i, level) in arch.levels().iter().enumerate() {
        // Fanout: nominal spatial loop counts below this level.
        let (x, y) = mapping.spatial_extent(i);
        let fan = level.fanout();
        if x > fan.x() || y > fan.y() {
            return Err(InvalidMapping::FanoutExceeded {
                level: i,
                requested: (x, y),
                available: (fan.x(), fan.y()),
            });
        }
    }
    Ok(())
}

/// Runs both validity tests and reports the mapping's total *buffer
/// pressure*: the summed tile footprint (in words) over every
/// capacity-bounded level. Higher pressure means the mapping keeps more
/// of each buffer busy — a cheap, model-free proxy for data reuse that
/// the enumeration backend uses to order candidates before evaluation.
pub(crate) fn screen(
    arch: &Architecture,
    tensors: &[TensorDef; 3],
    mapping: &Mapping,
) -> Result<u64, InvalidMapping> {
    check_fanout(arch, mapping)?;
    check_capacity(arch, tensors, mapping)
}

/// Checks every level's buffer capacity against the tile footprints of
/// the stored tensors (maximum tile sizes — residual tiles are smaller).
/// `tensors` is indexed by [`Operand::index`]. Returns the summed
/// footprint over capacity-bounded levels (see [`screen`]).
pub(crate) fn check_capacity(
    arch: &Architecture,
    tensors: &[TensorDef; 3],
    mapping: &Mapping,
) -> Result<u64, InvalidMapping> {
    let mut pressure = 0u64;
    for (i, level) in arch.levels().iter().enumerate() {
        if i == 0 {
            continue; // DRAM is unbounded by construction.
        }
        if level.capacity() == Capacity::Unbounded {
            continue;
        }
        let tile = mapping.tile_at_level(i);
        let mut shared_needed = 0u64;
        for op in Operand::ALL {
            if !level.stores(op) {
                continue;
            }
            let footprint = tensors[op.index()].footprint(&tile);
            match level.capacity() {
                Capacity::Unbounded => {}
                Capacity::Shared(_) => shared_needed = shared_needed.saturating_add(footprint),
                Capacity::PerOperand(_) => {
                    // `capacity_for` returns `Some` for every stored
                    // operand of a per-operand level; an absent entry
                    // reads as a zero-capacity buffer, which rejects.
                    let available = level.capacity_for(op).unwrap_or(0);
                    if footprint > available {
                        return Err(InvalidMapping::CapacityExceeded {
                            level: i,
                            operand: Some(op),
                            needed: footprint,
                            available,
                        });
                    }
                    pressure = pressure.saturating_add(footprint);
                }
            }
        }
        if let Capacity::Shared(available) = level.capacity() {
            if shared_needed > available {
                return Err(InvalidMapping::CapacityExceeded {
                    level: i,
                    operand: None,
                    needed: shared_needed,
                    available,
                });
            }
            pressure = pressure.saturating_add(shared_needed);
        }
    }
    Ok(pressure)
}

/// Collects *every* validity violation of `mapping` instead of stopping
/// at the first, in a fixed deterministic order: fanout violations by
/// ascending level, then capacity violations by ascending level (and,
/// within a per-operand level, in [`Operand::ALL`] order).
///
/// Shares the per-level predicates with [`screen`]: the returned vector
/// is non-empty exactly when [`screen`] returns an error, so
/// analyzer-side diagnostics and evaluation-time rejection agree by
/// construction. Cold path — diagnostics only, never in search loops.
pub(crate) fn collect_violations(
    arch: &Architecture,
    tensors: &[TensorDef; 3],
    mapping: &Mapping,
    out: &mut Vec<InvalidMapping>,
) {
    for (i, level) in arch.levels().iter().enumerate() {
        let (x, y) = mapping.spatial_extent(i);
        let fan = level.fanout();
        if x > fan.x() || y > fan.y() {
            out.push(InvalidMapping::FanoutExceeded {
                level: i,
                requested: (x, y),
                available: (fan.x(), fan.y()),
            });
        }
    }
    for (i, level) in arch.levels().iter().enumerate() {
        if i == 0 || level.capacity() == Capacity::Unbounded {
            continue; // DRAM (and any unbounded level) never overflows.
        }
        let tile = mapping.tile_at_level(i);
        let mut shared_needed = 0u64;
        for op in Operand::ALL {
            if !level.stores(op) {
                continue;
            }
            let footprint = tensors[op.index()].footprint(&tile);
            match level.capacity() {
                Capacity::Unbounded => {}
                Capacity::Shared(_) => shared_needed = shared_needed.saturating_add(footprint),
                Capacity::PerOperand(_) => {
                    let available = level.capacity_for(op).unwrap_or(0);
                    if footprint > available {
                        out.push(InvalidMapping::CapacityExceeded {
                            level: i,
                            operand: Some(op),
                            needed: footprint,
                            available,
                        });
                    }
                }
            }
        }
        if let Capacity::Shared(available) = level.capacity() {
            if shared_needed > available {
                out.push(InvalidMapping::CapacityExceeded {
                    level: i,
                    operand: None,
                    needed: shared_needed,
                    available,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;
    use ruby_workload::{Dim, ProblemShape};

    /// Fanout then capacity, as `evaluate_with` orders them.
    fn check(
        arch: &Architecture,
        shape: &ProblemShape,
        mapping: &Mapping,
    ) -> Result<u64, InvalidMapping> {
        let tensors = Operand::ALL.map(|op| shape.tensor(op));
        screen(arch, &tensors, mapping)
    }

    #[test]
    fn fanout_violation_detected() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let err = check(&arch, &shape, &m).unwrap_err();
        assert!(
            matches!(err, InvalidMapping::FanoutExceeded { level: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn shared_capacity_violation_detected() {
        let arch = presets::toy_linear(4, 64); // 32-word scratchpads
        let shape = ProblemShape::rank1("d", 100);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 100); // whole tensor per PE
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let err = check(&arch, &shape, &m).unwrap_err();
        match err {
            InvalidMapping::CapacityExceeded {
                level: 1,
                operand: None,
                needed,
                available,
            } => {
                // Weight tile (100) + output tile (100) + input tile (1).
                assert_eq!(needed, 201);
                assert_eq!(available, 32);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn per_operand_capacity_violation_detected() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 32, 1, 8, 8, 3, 3, (1, 1));
        let mut b = Mapping::builder(3);
        // Weight tile of 32*1*3*3 = 288 words exceeds the 224-word spad
        // while the ifmap tile (3*3 = 9) still fits its 12-word spad.
        b.set_tile(Dim::M, 2, SlotKind::Temporal, 32);
        b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
        b.set_tile(Dim::S, 2, SlotKind::Temporal, 3);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let err = check(&arch, &shape, &m).unwrap_err();
        assert!(
            matches!(
                err,
                InvalidMapping::CapacityExceeded {
                    level: 2,
                    operand: Some(Operand::Weight),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn valid_mapping_passes() {
        let arch = presets::toy_linear(9, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 9);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let pressure = check(&arch, &shape, &m).unwrap();
        // Pressure covers the bounded inner level's stored tiles.
        assert!(pressure > 0);
    }

    #[test]
    fn collect_agrees_with_screen_on_emptiness() {
        // Sweep a grid of builder factors — valid and invalid alike —
        // and require screen() rejection iff collect_violations() is
        // non-empty; when screen rejects, its error must be among the
        // collected ones.
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 16, 4, 8, 8, 3, 3, (1, 1));
        let tensors = Operand::ALL.map(|op| shape.tensor(op));
        let mut b = Mapping::builder(3);
        for sx in [1u64, 7, 14, 15, 28] {
            for sy in [1u64, 3, 12, 13] {
                for t in [1u64, 3, 9, 32, 96] {
                    b.reset();
                    b.set_tile(Dim::Q, 1, SlotKind::SpatialX, sx);
                    b.set_tile(Dim::M, 1, SlotKind::SpatialY, sy);
                    b.set_tile(Dim::M, 2, SlotKind::Temporal, t);
                    b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
                    let m = b.build_for_bounds(shape.bounds()).unwrap();
                    let screened = screen(&arch, &tensors, &m);
                    let mut all = Vec::new();
                    collect_violations(&arch, &tensors, &m, &mut all);
                    assert_eq!(screened.is_err(), !all.is_empty(), "sx={sx} sy={sy} t={t}");
                    if let Err(e) = screened {
                        assert!(all.contains(&e), "missing {e} in {all:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = InvalidMapping::FanoutExceeded {
            level: 1,
            requested: (15, 1),
            available: (14, 12),
        };
        assert!(e.to_string().contains("15x1"));
        let c = InvalidMapping::CapacityExceeded {
            level: 2,
            operand: Some(Operand::Weight),
            needed: 500,
            available: 224,
        };
        assert!(c.to_string().contains("500"));
    }
}
