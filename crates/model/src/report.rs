//! Cost-report types.

/// Access counts of one tensor at one storage level, in data words.
/// Counts are totals across all spatial instances of the level.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessCounts {
    /// Words read out of the level (serving children, draining partial
    /// sums upward, and read-modify-write reads).
    pub reads: f64,
    /// Words written into the level from its parent.
    pub fills: f64,
    /// Words written into the level from below (partial-sum updates).
    pub updates: f64,
    /// Words crossing the distribution network *below* this level
    /// (per-receiver delivery plus partial-sum return). Costed only when
    /// the level declares a NoC hop energy.
    pub network: f64,
}

impl AccessCounts {
    /// Total buffer accesses (`reads + fills + updates`; network words
    /// are wires, not ports, and excluded).
    pub fn total(&self) -> f64 {
        self.reads + self.fills + self.updates
    }
}

serde::impl_serde_struct!(AccessCounts {
    reads,
    fills,
    updates,
    network
});

/// Per-level slice of a [`CostReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    name: String,
    energy: f64,
    per_tensor: [AccessCounts; 3],
}

impl LevelStats {
    pub(crate) fn new(name: String, energy: f64, per_tensor: [AccessCounts; 3]) -> Self {
        LevelStats {
            name,
            energy,
            per_tensor,
        }
    }

    /// The level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Energy spent at this level.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Access counts per operand, indexed by
    /// [`ruby_workload::Operand::index`].
    pub fn per_tensor(&self) -> &[AccessCounts; 3] {
        &self.per_tensor
    }

    /// Total word accesses at this level across operands.
    pub fn total_accesses(&self) -> f64 {
        self.per_tensor.iter().map(AccessCounts::total).sum()
    }
}

serde::impl_serde_struct!(LevelStats {
    name,
    energy,
    per_tensor
});

/// The result of evaluating one mapping: the quantities the paper reports
/// (EDP, energy, cycles, utilization) plus a per-level breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    macs: u64,
    cycles: u64,
    energy: f64,
    utilization: f64,
    level_stats: Vec<LevelStats>,
}

impl CostReport {
    pub(crate) fn new(
        macs: u64,
        cycles: u64,
        energy: f64,
        utilization: f64,
        level_stats: Vec<LevelStats>,
    ) -> Self {
        CostReport {
            macs,
            cycles,
            energy,
            utilization,
            level_stats,
        }
    }

    /// Total multiply-accumulates performed.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Execution latency in MAC-normalized cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total energy in MAC-normalized units.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Energy-delay product — the paper's primary optimization target.
    pub fn edp(&self) -> f64 {
        self.energy * self.cycles as f64
    }

    /// Compute utilization: MACs / (cycles × total MAC units) over the
    /// *whole* array, matching the paper's utilization figures.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Per-level statistics, outermost level first.
    pub fn level_stats(&self) -> &[LevelStats] {
        &self.level_stats
    }
}

serde::impl_serde_struct!(CostReport {
    macs,
    cycles,
    energy,
    utilization,
    level_stats
});

/// The scalar quantities of a [`CostReport`] without the per-level
/// breakdown — no heap allocation, so the search hot path can cost a
/// candidate without paying for level names it will throw away.
///
/// Produced by [`crate::summarize_with`] (and the batched evaluator)
/// through the *same* accumulation code as [`CostReport`], so every
/// field is bit-identical to the full report's; the report is
/// materialized only for candidates worth keeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    macs: u64,
    cycles: u64,
    energy: f64,
    utilization: f64,
}

impl CostSummary {
    pub(crate) fn new(macs: u64, cycles: u64, energy: f64, utilization: f64) -> Self {
        CostSummary {
            macs,
            cycles,
            energy,
            utilization,
        }
    }

    /// Total multiply-accumulates performed.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Execution latency in MAC-normalized cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total energy in MAC-normalized units.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Energy-delay product, computed exactly as [`CostReport::edp`].
    pub fn edp(&self) -> f64 {
        self.energy * self.cycles as f64
    }

    /// Compute utilization (see [`CostReport::utilization`]).
    pub fn utilization(&self) -> f64 {
        self.utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_counts_total() {
        let a = AccessCounts {
            reads: 2.0,
            fills: 3.0,
            updates: 5.0,
            network: 9.0,
        };
        assert_eq!(a.total(), 10.0);
        assert_eq!(AccessCounts::default().total(), 0.0);
    }

    #[test]
    fn report_edp_is_energy_times_cycles() {
        let r = CostReport::new(100, 7, 3.0, 0.5, vec![]);
        assert_eq!(r.edp(), 21.0);
        assert_eq!(r.macs(), 100);
        assert_eq!(r.utilization(), 0.5);
    }

    #[test]
    fn level_stats_totals() {
        let a = AccessCounts {
            reads: 1.0,
            fills: 1.0,
            updates: 0.0,
            network: 0.0,
        };
        let s = LevelStats::new("GLB".into(), 12.0, [a, a, a]);
        assert_eq!(s.total_accesses(), 6.0);
        assert_eq!(s.name(), "GLB");
        assert_eq!(s.energy(), 12.0);
    }
}
