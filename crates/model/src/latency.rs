//! Latency: compute cycles (with exact residual-iteration accounting)
//! bounded below by optional per-level bandwidth limits.

use ruby_arch::Architecture;
use ruby_mapping::Mapping;

use crate::report::AccessCounts;

/// Execution cycles: the lockstep sequential-step count of the mapping,
/// max-ed with each bandwidth-limited level's transfer time.
pub(crate) fn cycles(
    arch: &Architecture,
    mapping: &Mapping,
    accesses: &[[AccessCounts; 3]],
) -> u64 {
    let compute = mapping.compute_cycles();
    let mut worst = compute as f64;
    for (i, level) in arch.levels().iter().enumerate() {
        if let Some(bw) = level.bandwidth_words_per_cycle() {
            let words: f64 = accesses[i].iter().map(AccessCounts::total).sum();
            let per_instance = words / arch.instances(i) as f64;
            worst = worst.max(per_instance / bw);
        }
    }
    // lint: allow(cast) — f64→u64 `as` saturates rather than wrapping,
    // and `worst` is finite and >= compute >= 0 by construction, so the
    // ceiling is a genuine cycle count (never negative, never NaN).
    worst.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::{Architecture, Capacity, Fanout, MemLevel};
    use ruby_energy::TechnologyModel;
    use ruby_mapping::SlotKind;
    use ruby_workload::{Dim, DimMap};

    fn bounds_m(d: u64) -> DimMap<u64> {
        let mut b = DimMap::splat(1u64);
        b[Dim::M] = d;
        b
    }

    #[test]
    fn compute_bound_when_no_bandwidth_limits() {
        let tech = TechnologyModel::default();
        let arch = Architecture::new(
            "a",
            vec![
                MemLevel::new(
                    "DRAM",
                    Capacity::Unbounded,
                    [true; 3],
                    200.0,
                    Fanout::linear(4),
                ),
                MemLevel::new("S", Capacity::Shared(512), [true; 3], 1.0, Fanout::unit()),
            ],
            tech,
        );
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        let acc = vec![[AccessCounts::default(); 3]; 2];
        assert_eq!(cycles(&arch, &m, &acc), 25);
    }

    #[test]
    fn bandwidth_limit_dominates_when_slow() {
        let tech = TechnologyModel::default();
        let arch = Architecture::new(
            "a",
            vec![
                MemLevel::new(
                    "DRAM",
                    Capacity::Unbounded,
                    [true; 3],
                    200.0,
                    Fanout::linear(4),
                )
                .with_bandwidth(0.5),
                MemLevel::new("S", Capacity::Shared(512), [true; 3], 1.0, Fanout::unit()),
            ],
            tech,
        );
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
        let m = b.build_for_bounds(&bounds_m(100)).unwrap();
        let mut acc = vec![[AccessCounts::default(); 3]; 2];
        acc[0][0].reads = 100.0; // 100 words at 0.5 words/cycle = 200 cycles
        assert_eq!(cycles(&arch, &m, &acc), 200);
    }
}
