//! Admissibility of the pruning bounds: over randomly constructed
//! mappings, the precomputed energy floors must never exceed the true
//! modeled energy of any mapping the model accepts, and the cheap
//! validity screen must agree exactly with the full evaluation.

use proptest::prelude::*;

use ruby_arch::presets;
use ruby_mapping::{Mapping, SlotKind};
use ruby_model::{evaluate_with, EvalContext, ModelOptions};
use ruby_workload::{Dim, ProblemShape};

/// The mapping's utilized spatial fanout per level: the product of its
/// spatial loop counts, the exact subset signature
/// [`EvalContext::energy_floor_for_spatial`] specializes to.
fn utilized(mapping: &Mapping, num_levels: usize) -> Vec<u64> {
    (0..num_levels)
        .map(|l| {
            let (x, y) = mapping.spatial_extent(l);
            x * y
        })
        .collect()
}

/// Checks both floors against one mapping, and the screen against the
/// evaluator. Returns whether the mapping was valid.
fn check(ctx: &EvalContext, mapping: &Mapping, num_levels: usize) -> Result<(), String> {
    let screened = ctx.precheck(mapping);
    match evaluate_with(ctx, mapping) {
        Ok(report) => {
            prop_assert!(
                screened.is_ok(),
                "precheck rejected a mapping the model accepts"
            );
            // The floor and the evaluator sum the same terms in
            // different orders; tolerate last-ulp rounding skew.
            let limit = report.energy() * (1.0 + 1e-9);
            prop_assert!(
                ctx.energy_floor() <= limit,
                "global floor {} exceeds energy {}",
                ctx.energy_floor(),
                report.energy()
            );
            let subset = ctx.energy_floor_for_spatial(&utilized(mapping, num_levels));
            prop_assert!(
                subset <= limit,
                "subset floor {subset} exceeds energy {}",
                report.energy()
            );
            // The exact-signature floor can only tighten the global one.
            prop_assert!(subset >= ctx.energy_floor());
        }
        Err(why) => {
            prop_assert!(
                screened.is_err(),
                "precheck accepted a mapping the model rejects: {why}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Linear hierarchy, single dimension: spatial/temporal splits at
    /// every slot, including infeasible ones (which must screen out).
    #[test]
    fn floors_hold_on_toy_linear(
        d in 2u64..300,
        sx in 1u64..12,
        t0 in 1u64..20,
        t1 in 1u64..20,
    ) {
        let arch = presets::toy_linear(8, 256);
        let shape = ProblemShape::rank1("d", d);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, sx);
        b.set_tile(Dim::M, 0, SlotKind::Temporal, t0);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, t1);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        check(&ctx, &mapping, 2)?;
    }

    /// Eyeriss-like grid, conv workload: multi-dim tiles with spatial
    /// splits across both axes of the PE array.
    #[test]
    fn floors_hold_on_eyeriss_conv(
        m in 1u64..32,
        c in 1u64..16,
        q in 1u64..14,
        sx in 1u64..14,
        sy in 1u64..12,
    ) {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 32, 16, 14, 14, 3, 3, (1, 1));
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(3);
        b.set_tile(Dim::C, 1, SlotKind::SpatialX, sx);
        b.set_tile(Dim::M, 1, SlotKind::SpatialY, sy);
        b.set_tile(Dim::M, 2, SlotKind::Temporal, m);
        b.set_tile(Dim::C, 2, SlotKind::Temporal, c);
        b.set_tile(Dim::Q, 1, SlotKind::Temporal, q);
        b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
        let mapping = b.build_for_bounds(shape.bounds()).unwrap();
        check(&ctx, &mapping, 3)?;
    }
}
