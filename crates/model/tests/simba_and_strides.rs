//! Integration tests of the cost model on the Simba-like architecture
//! (vector-MAC lanes below the PE buffers) and on strided convolutions.

use ruby_arch::presets;
use ruby_mapping::{Mapping, SlotKind};
use ruby_model::{evaluate, ModelOptions};
use ruby_workload::{Dim, Operand, ProblemShape};

/// C across the 16 vector-MAC lanes: inputs and weights partition, but
/// the *output* is identical across lanes — the lanes' partial sums
/// reduce in the vector unit, so PE-buffer updates shrink 16×.
#[test]
fn lane_level_spatial_reduction() {
    let arch = presets::simba_like(4, 4, 4);
    let shape = ProblemShape::conv("c", 1, 8, 64, 4, 4, 1, 1, (1, 1));
    let mut b = Mapping::builder(3);
    b.set_tile(Dim::C, 2, SlotKind::SpatialX, 16); // lanes
    b.set_tile(Dim::C, 1, SlotKind::SpatialX, 4); // PEs
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();

    let with = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let without = evaluate(
        &arch,
        &shape,
        &mapping,
        &ModelOptions {
            multicast: true,
            spatial_reduction: false,
        },
    )
    .unwrap();
    let o = Operand::Output.index();
    let upd_with = with.level_stats()[2].per_tensor()[o].updates;
    let upd_without = without.level_stats()[2].per_tensor()[o].updates;
    assert!(
        (upd_without / upd_with - 16.0).abs() < 1e-9,
        "lane reduction should shrink PE updates 16x: {upd_with} vs {upd_without}"
    );
}

/// M across lanes: every lane works on a different output channel but
/// the same input element — input reads at the PE buffer multicast.
#[test]
fn lane_level_input_multicast() {
    let arch = presets::simba_like(4, 4, 4);
    let shape = ProblemShape::conv("c", 1, 16, 8, 4, 4, 1, 1, (1, 1));
    let mut b = Mapping::builder(3);
    b.set_tile(Dim::M, 2, SlotKind::SpatialX, 16);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let with = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let without = evaluate(
        &arch,
        &shape,
        &mapping,
        &ModelOptions {
            multicast: false,
            spatial_reduction: true,
        },
    )
    .unwrap();
    let i = Operand::Input.index();
    let reads_with = with.level_stats()[2].per_tensor()[i].reads;
    let reads_without = without.level_stats()[2].per_tensor()[i].reads;
    assert!(
        (reads_without / reads_with - 16.0).abs() < 1e-9,
        "input multicast across 16 M-lanes: {reads_with} vs {reads_without}"
    );
}

/// Stride-2 convolutions: non-overlapping windows mean the input sweep
/// along (P, R) can exceed P (gaps are *not* fetched, but window starts
/// spread out). For R = 1, stride 2: each output row touches exactly one
/// input row, so fills equal the output-row count regardless of tiling.
#[test]
fn stride_two_pointwise_rows() {
    let shape = ProblemShape::conv("s2", 1, 1, 1, 8, 1, 1, 1, (2, 2));
    let arch = presets::toy_linear(1, 1024);
    let mut b = Mapping::builder(2);
    b.set_tile(Dim::P, 1, SlotKind::Temporal, 2);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let i = Operand::Input.index();
    // 4 P-tiles of 2 rows each: input extent per tile = (2-1)*2 + 1 = 3,
    // so 12 words cross into the spad (strided gaps are fetched as part
    // of the contiguous tile region, matching Timeloop's dense tiles).
    assert_eq!(report.level_stats()[1].per_tensor()[i].fills, 12.0);
}

/// A realistic strided ResNet layer on the Eyeriss baseline must be
/// mappable and evaluate to sensible utilization.
#[test]
fn strided_resnet_layer_on_eyeriss() {
    let arch = presets::eyeriss_like(14, 12);
    let shape = ProblemShape::conv("res3a", 1, 128, 128, 28, 28, 3, 3, (2, 2));
    let mut b = Mapping::builder(3);
    b.set_tile(Dim::Q, 1, SlotKind::SpatialX, 14);
    b.set_tile(Dim::M, 1, SlotKind::SpatialY, 12);
    b.set_tile(Dim::S, 2, SlotKind::Temporal, 3);
    b.set_tile(Dim::C, 2, SlotKind::Temporal, 4);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    assert!(report.utilization() > 0.5, "got {}", report.utilization());
    assert_eq!(report.macs(), shape.macs());
}
