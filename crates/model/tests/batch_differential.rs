//! Differential proof that batched evaluation is bit-identical to the
//! scalar path.
//!
//! For every architecture preset, >10k sampled mappings (the same
//! generate-then-filter distribution the random search sees, so the mix
//! includes fanout-invalid, capacity-invalid and valid candidates) are
//! pushed through [`BatchEvalContext::evaluate`] in full batches and
//! compared lane-by-lane against scalar [`evaluate_with`]: identical
//! `Ok`/`Err` verdicts, identical first-failure errors, and bitwise
//! identical `CostReport`s. Valid lanes additionally check the lean
//! [`summarize_with`] / [`BatchEvalContext::summary`] path against the
//! full report field-by-field (`f64::to_bits` equality).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ruby_mapspace::{Mapspace, MapspaceKind};
use ruby_model::{
    evaluate_with, summarize_with, BatchEvalContext, BatchVerdict, EvalContext, ModelOptions,
};
use ruby_workload::ProblemShape;

use ruby_arch::presets;

const SAMPLES: usize = 10_016; // > 10k, a whole number of 64-lane batches

fn differential(space: &Mapspace, seed: u64) {
    let ctx = EvalContext::new(space.arch(), space.shape(), ModelOptions::default());
    let mut batch = BatchEvalContext::new(&ctx);
    let mut sampler = space.sampler();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scalar = Vec::new();
    let mut done = 0usize;
    while done < SAMPLES {
        batch.clear();
        scalar.clear();
        while !batch.is_full() && done + batch.len() < SAMPLES {
            sampler.sample_into(batch.slot(), &mut rng);
            scalar.push(evaluate_with(&ctx, batch.slot()));
            batch.commit();
        }
        let lanes = batch.len();
        let batched = batch.evaluate();
        assert_eq!(batched.len(), lanes);
        for lane in 0..lanes {
            // PartialEq on CostReport compares every f64 directly; for
            // bit-level identity compare the serialized quantities too.
            assert_eq!(batched[lane], scalar[lane], "lane {}", done + lane);
            if let (Ok(b), Ok(s)) = (&batched[lane], &scalar[lane]) {
                assert_eq!(b.energy().to_bits(), s.energy().to_bits());
                assert_eq!(b.utilization().to_bits(), s.utilization().to_bits());
                assert_eq!(b.edp().to_bits(), s.edp().to_bits());
                // The lean summary path must agree with the full report
                // bit-for-bit as well.
                let summary = batch.summary(lane);
                assert_eq!(summary.macs(), s.macs());
                assert_eq!(summary.cycles(), s.cycles());
                assert_eq!(summary.energy().to_bits(), s.energy().to_bits());
                assert_eq!(summary.utilization().to_bits(), s.utilization().to_bits());
                assert_eq!(summary.edp().to_bits(), s.edp().to_bits());
                let lean = summarize_with(&ctx, batch.mapping(lane)).unwrap();
                assert_eq!(lean, summary);
            }
        }
        // The ladder's verdicts must classify exactly like the scalar
        // screens: fanout beats capacity, pressures agree.
        let verdicts: Vec<BatchVerdict> = batch.screen().to_vec();
        for lane in 0..lanes {
            match (&scalar[lane], verdicts[lane]) {
                (Ok(_), BatchVerdict::Valid { pressure }) => {
                    assert_eq!(pressure, ctx.precheck(batch.mapping(lane)).unwrap());
                }
                (
                    Err(ruby_model::InvalidMapping::FanoutExceeded { .. }),
                    BatchVerdict::RejectFanout,
                ) => {}
                (
                    Err(ruby_model::InvalidMapping::CapacityExceeded { .. }),
                    BatchVerdict::RejectCapacity,
                ) => {}
                (want, got) => panic!("lane {}: scalar {want:?} vs ladder {got:?}", done + lane),
            }
        }
        done += lanes;
    }
}

#[test]
fn batched_matches_scalar_on_toy_linear() {
    let space = Mapspace::new(
        presets::toy_linear(16, 1024),
        ProblemShape::rank1("d", 113),
        MapspaceKind::Ruby,
    );
    differential(&space, 0xA1);
}

#[test]
fn batched_matches_scalar_on_toy_glb() {
    let space = Mapspace::new(
        presets::toy_glb(64 * 1024, 4, 4),
        ProblemShape::conv("c", 1, 8, 4, 14, 14, 3, 3, (1, 1)),
        MapspaceKind::RubyS,
    );
    differential(&space, 0xB2);
}

#[test]
fn batched_matches_scalar_on_eyeriss() {
    let space = Mapspace::new(
        presets::eyeriss_like(14, 12),
        ProblemShape::conv("l", 1, 16, 4, 8, 8, 3, 3, (1, 1)),
        MapspaceKind::RubyS,
    );
    differential(&space, 0xC3);
}

#[test]
fn batched_matches_scalar_on_simba() {
    let space = Mapspace::new(
        presets::simba_like(16, 16, 4),
        ProblemShape::conv("s", 1, 32, 8, 8, 8, 3, 3, (1, 1)),
        MapspaceKind::RubyT,
    );
    differential(&space, 0xD4);
}

#[test]
fn batched_matches_scalar_on_clustered() {
    let space = Mapspace::new(
        presets::clustered(4, 16),
        ProblemShape::conv("k", 1, 16, 8, 14, 14, 1, 1, (1, 1)),
        MapspaceKind::Pfm,
    );
    differential(&space, 0xE5);
}
