//! Analytic technology model for the Ruby reproduction.
//!
//! The paper evaluates mappings with Accelergy, which sources per-access
//! energies from Cacti (large SRAMs) and Aladdin (register files, address
//! generators). Neither tool is available here, so this crate substitutes
//! an analytic model anchored to the well-known Eyeriss energy hierarchy,
//! normalized to one 16-bit MAC:
//!
//! | component                | energy (MAC = 1×) |
//! |--------------------------|-------------------|
//! | 16-bit MAC               | 1                 |
//! | PE register file / small scratchpad | ≈ 1    |
//! | inter-PE transfer (NoC)  | 2                 |
//! | 128 KiB global buffer    | 6                 |
//! | DRAM                     | 200               |
//!
//! Intermediate SRAM capacities interpolate with a Cacti-like √capacity
//! law anchored at the global-buffer point (per-access energy grows with
//! the square root of capacity, dominated by bitline/wordline length).
//! Because every paper result is *relative* (EDP normalized to the PFM
//! baseline), any monotone capacity-aware energy table preserves the
//! comparisons; this one also keeps the absolute ratios realistic.
//!
//! Area uses per-component estimates calibrated so an Eyeriss-like design
//! (168 PEs + 128 KiB GLB) lands near the published ≈12 mm².
//!
//! # Examples
//!
//! ```
//! use ruby_energy::TechnologyModel;
//!
//! let tech = TechnologyModel::default();
//! assert_eq!(tech.mac_energy(), 1.0);
//! let glb = tech.sram_access_energy(128 * 1024);
//! assert!((glb - 6.0).abs() < 1e-9);
//! assert!(tech.dram_access_energy() > glb);
//! ```

/// Per-word access energies and per-component areas, normalized so one
/// 16-bit MAC costs 1.0 energy units. See the crate docs for the
/// calibration points.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyModel {
    mac_energy: f64,
    regfile_energy: f64,
    dram_energy: f64,
    noc_hop_energy: f64,
    glb_anchor_bytes: f64,
    glb_anchor_energy: f64,
    pe_area_mm2: f64,
    sram_area_mm2_per_kib: f64,
    fixed_area_mm2: f64,
    word_bits: u32,
}

serde::impl_serde_struct!(TechnologyModel {
    mac_energy,
    regfile_energy,
    dram_energy,
    noc_hop_energy,
    glb_anchor_bytes,
    glb_anchor_energy,
    pe_area_mm2,
    sram_area_mm2_per_kib,
    fixed_area_mm2,
    word_bits,
});

impl TechnologyModel {
    /// The calibrated default model described in the crate docs.
    pub fn new() -> Self {
        TechnologyModel {
            mac_energy: 1.0,
            regfile_energy: 1.0,
            dram_energy: 200.0,
            noc_hop_energy: 2.0,
            glb_anchor_bytes: 128.0 * 1024.0,
            glb_anchor_energy: 6.0,
            pe_area_mm2: 0.047,
            sram_area_mm2_per_kib: 0.030,
            fixed_area_mm2: 1.0,
            word_bits: 16,
        }
    }

    /// Energy of one multiply-accumulate (the normalization unit).
    pub fn mac_energy(&self) -> f64 {
        self.mac_energy
    }

    /// Energy of one DRAM word access.
    pub fn dram_access_energy(&self) -> f64 {
        self.dram_energy
    }

    /// Energy of one hop on the on-chip network (per word).
    pub fn noc_hop_energy(&self) -> f64 {
        self.noc_hop_energy
    }

    /// Energy of one word access to an on-chip SRAM/register file of the
    /// given capacity in bytes. Small structures bottom out at the
    /// register-file floor; larger ones follow
    /// `E = E_rf + (E_glb − E_rf) · √(capacity / capacity_glb)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn sram_access_energy(&self, capacity_bytes: u64) -> f64 {
        assert!(capacity_bytes > 0, "SRAM capacity must be positive");
        let ratio = capacity_bytes as f64 / self.glb_anchor_bytes;
        self.regfile_energy + (self.glb_anchor_energy - self.regfile_energy) * ratio.sqrt()
    }

    /// Word width in bits (16 throughout the paper).
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Bytes occupied by `words` data words.
    pub fn words_to_bytes(&self, words: u64) -> u64 {
        words * u64::from(self.word_bits.div_ceil(8))
    }

    /// Area of one processing element (datapath + control), in mm².
    pub fn pe_area_mm2(&self) -> f64 {
        self.pe_area_mm2
    }

    /// Area of an SRAM of the given capacity, in mm².
    pub fn sram_area_mm2(&self, capacity_bytes: u64) -> f64 {
        self.sram_area_mm2_per_kib * capacity_bytes as f64 / 1024.0
    }

    /// Fixed overhead area (I/O, clocking, top-level control), in mm².
    pub fn fixed_area_mm2(&self) -> f64 {
        self.fixed_area_mm2
    }

    /// Returns a copy with a different DRAM energy (for sensitivity
    /// studies).
    pub fn with_dram_energy(mut self, energy: f64) -> Self {
        assert!(energy > 0.0, "DRAM energy must be positive");
        self.dram_energy = energy;
        self
    }

    /// Returns a copy with a different MAC energy.
    pub fn with_mac_energy(mut self, energy: f64) -> Self {
        assert!(energy > 0.0, "MAC energy must be positive");
        self.mac_energy = energy;
        self
    }
}

impl Default for TechnologyModel {
    fn default() -> Self {
        TechnologyModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_eyeriss_hierarchy() {
        let t = TechnologyModel::default();
        assert_eq!(t.mac_energy(), 1.0);
        assert!((t.sram_access_energy(128 * 1024) - 6.0).abs() < 1e-12);
        assert_eq!(t.dram_access_energy(), 200.0);
        assert_eq!(t.noc_hop_energy(), 2.0);
    }

    #[test]
    fn sram_energy_monotone_in_capacity() {
        let t = TechnologyModel::default();
        let mut prev = 0.0;
        for kib in [1u64, 2, 8, 32, 128, 512] {
            let e = t.sram_access_energy(kib * 1024);
            assert!(e > prev, "energy must grow with capacity");
            prev = e;
        }
    }

    #[test]
    fn small_buffers_near_regfile_floor() {
        let t = TechnologyModel::default();
        // A 24-byte ifmap spad should cost barely more than a register.
        let e = t.sram_access_energy(24);
        assert!((1.0..1.2).contains(&e), "got {e}");
    }

    #[test]
    fn dram_dominates_all_srams() {
        let t = TechnologyModel::default();
        assert!(t.dram_access_energy() > t.sram_access_energy(4 * 1024 * 1024));
    }

    #[test]
    fn eyeriss_like_area_lands_near_published() {
        let t = TechnologyModel::default();
        let area = 168.0 * t.pe_area_mm2()
            + t.sram_area_mm2(128 * 1024)
            + 168.0 * t.sram_area_mm2(504) // per-PE spads: (12+16+224)*2B
            + t.fixed_area_mm2();
        assert!((8.0..20.0).contains(&area), "got {area} mm²");
    }

    #[test]
    fn words_to_bytes_uses_word_width() {
        let t = TechnologyModel::default();
        assert_eq!(t.words_to_bytes(10), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = TechnologyModel::default().sram_access_energy(0);
    }

    #[test]
    fn builders_validate() {
        let t = TechnologyModel::default()
            .with_dram_energy(100.0)
            .with_mac_energy(0.5);
        assert_eq!(t.dram_access_energy(), 100.0);
        assert_eq!(t.mac_energy(), 0.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Energy and area are monotone and positive for any capacity.
            #[test]
            fn sram_energy_and_area_monotone(a in 1u64..1_000_000, b in 1u64..1_000_000) {
                let t = TechnologyModel::default();
                let (lo, hi) = (a.min(b), a.max(b));
                prop_assert!(t.sram_access_energy(lo) > 0.0);
                prop_assert!(t.sram_access_energy(lo) <= t.sram_access_energy(hi));
                prop_assert!(t.sram_area_mm2(lo) <= t.sram_area_mm2(hi));
            }

            /// The hierarchy ordering MAC ≤ RF-ish SRAM < DRAM holds at
            /// every on-chip capacity.
            #[test]
            fn hierarchy_ordering(cap in 1u64..4_000_000) {
                let t = TechnologyModel::default();
                let e = t.sram_access_energy(cap);
                prop_assert!(e >= t.mac_energy() * 0.99);
                prop_assert!(e < t.dram_access_energy());
            }
        }
    }
}
