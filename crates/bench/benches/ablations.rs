//! Ablation benches for the design choices called out in DESIGN.md:
//! multicast / spatial reduction in the cost model, remainder placement
//! (the Ruby variants), and search-termination sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;

/// Multicast on/off: evaluation cost must not change materially, while
/// the modeled DRAM traffic does (correctness asserted in unit tests).
fn ablation_multicast(c: &mut Criterion) {
    let arch = presets::eyeriss_like(14, 12);
    let shape = ProblemShape::conv("c", 1, 128, 64, 28, 28, 3, 3, (1, 1));
    let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
    let mut rng = SmallRng::seed_from_u64(2);
    let mapping = space.sample(&mut rng);
    let mut group = c.benchmark_group("ablation_multicast");
    for (name, opts) in [
        ("on", ModelOptions::default()),
        (
            "off",
            ModelOptions {
                multicast: false,
                spatial_reduction: false,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| evaluate(&arch, &shape, &mapping, &opts))
        });
    }
    group.finish();
}

/// Remainder placement: time-to-first-good-mapping per Ruby variant on a
/// misaligned problem (the practical cost of mapspace expansion).
fn ablation_remainder_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_remainder_placement");
    group.sample_size(10);
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
            kind,
        );
        let config = SearchConfig {
            max_evaluations: Some(2_000),
            termination: Some(300),
            ..SearchConfig::default()
        };
        group.bench_function(kind.name(), |b| {
            b.iter(|| Engine::new(&space).with_config(config.clone()).run())
        });
    }
    group.finish();
}

/// Termination-threshold sensitivity: how much longer the paper's 3000
/// costs over smaller thresholds.
fn ablation_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_termination");
    group.sample_size(10);
    let space = Mapspace::new(
        presets::eyeriss_like(14, 12),
        ProblemShape::conv("c", 1, 256, 64, 28, 28, 1, 1, (1, 1)),
        MapspaceKind::RubyS,
    )
    .with_constraints(Constraints::eyeriss_row_stationary(3, 1));
    for termination in [100u64, 500, 1500] {
        let config = SearchConfig {
            max_evaluations: Some(50_000),
            termination: Some(termination),
            threads: 2,
            ..SearchConfig::default()
        };
        group.bench_function(termination.to_string(), |b| {
            b.iter(|| Engine::new(&space).with_config(config.clone()).run())
        });
    }
    group.finish();
}

/// NoC energy accounting on/off: explicit network-hop costing vs folding
/// wires into access energies (the default presets).
fn ablation_noc_energy(c: &mut Criterion) {
    let shape = ProblemShape::conv("c", 1, 64, 32, 14, 14, 3, 3, (1, 1));
    let base = presets::eyeriss_like(14, 12);
    // Rebuild the same hierarchy with a 2x-MAC inter-PE network charge.
    let tech = base.technology().clone();
    let levels: Vec<MemLevel> = base
        .levels()
        .iter()
        .map(|l| {
            if l.fanout().total() > 1 {
                l.clone().with_noc_energy(tech.noc_hop_energy())
            } else {
                l.clone()
            }
        })
        .collect();
    let noc_arch = Architecture::new("eyeriss_noc", levels, tech);
    let space = Mapspace::new(base.clone(), shape.clone(), MapspaceKind::RubyS);
    let mut rng = SmallRng::seed_from_u64(4);
    let mapping = space.sample(&mut rng);
    let opts = ModelOptions::default();
    let mut group = c.benchmark_group("ablation_noc_energy");
    for (name, arch) in [("folded", &base), ("explicit", &noc_arch)] {
        group.bench_function(name, |b| b.iter(|| evaluate(arch, &shape, &mapping, &opts)));
    }
    group.finish();
}

/// Search strategy: the paper's random sampling vs the simulated
/// annealing extension, on a misaligned Eyeriss pointwise layer.
fn ablation_search_strategy(c: &mut Criterion) {
    let space = Mapspace::new(
        presets::eyeriss_like(14, 12),
        ProblemShape::conv("c", 1, 256, 64, 28, 28, 1, 1, (1, 1)),
        MapspaceKind::RubyS,
    )
    .with_constraints(Constraints::eyeriss_row_stationary(3, 1));
    let mut group = c.benchmark_group("ablation_search_strategy");
    group.sample_size(10);
    let random_cfg = SearchConfig {
        max_evaluations: Some(2_000),
        termination: Some(400),
        ..SearchConfig::default()
    };
    group.bench_function("random", |b| {
        b.iter(|| Engine::new(&space).with_config(random_cfg.clone()).run())
    });
    let anneal_cfg = AnnealConfig {
        steps: 2_000,
        ..AnnealConfig::default()
    };
    group.bench_function("anneal", |b| b.iter(|| anneal(&space, &anneal_cfg)));
    group.finish();
}

criterion_group!(
    benches,
    ablation_multicast,
    ablation_remainder_placement,
    ablation_termination,
    ablation_noc_energy,
    ablation_search_strategy
);
criterion_main!(benches);
