//! Criterion micro-benchmarks of the analytical cost model: how fast one
//! mapping evaluates on the paper's architectures. Mapper throughput is
//! the practical limit on mapspace exploration, so this is the substrate
//! number behind every figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate");
    let cases = [
        (
            "eyeriss_resnet_conv3x3",
            presets::eyeriss_like(14, 12),
            ProblemShape::conv("c", 1, 128, 128, 28, 28, 3, 3, (1, 1)),
        ),
        (
            "simba_resnet_pointwise",
            presets::simba_like(15, 4, 4),
            ProblemShape::conv("c", 1, 1024, 256, 14, 14, 1, 1, (1, 1)),
        ),
        (
            "toy_rank1",
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
        ),
    ];
    for (name, arch, shape) in cases {
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
        let mut rng = SmallRng::seed_from_u64(5);
        group.bench_function(name, |b| {
            b.iter_batched(
                || space.sample(&mut rng),
                |mapping| evaluate(&arch, &shape, &mapping, &ModelOptions::default()),
                BatchSize::SmallInput,
            )
        });
        // Same work through a precomputed EvalContext — the hot-loop path.
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        group.bench_function(format!("{name}_ctx"), |b| {
            b.iter_batched(
                || space.sample(&mut rng),
                |mapping| evaluate_with(&ctx, &mapping),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_validity_rejection(c: &mut Criterion) {
    // How quickly invalid mappings are rejected (the filter half of
    // generate-then-filter).
    let arch = presets::eyeriss_like(14, 12);
    let shape = ProblemShape::conv("c", 1, 512, 512, 7, 7, 3, 3, (1, 1));
    let mut b = Mapping::builder(3);
    b.set_tile(Dim::C, 2, SlotKind::Temporal, 512); // overflows every spad
    let mapping = b.build_for_bounds(shape.bounds()).expect("chain builds");
    c.bench_function("reject_invalid", |bench| {
        bench.iter(|| evaluate(&arch, &shape, &mapping, &ModelOptions::default()).is_err())
    });
}

criterion_group!(benches, bench_evaluate, bench_validity_rejection);
criterion_main!(benches);
