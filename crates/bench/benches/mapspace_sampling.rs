//! Criterion micro-benchmarks of mapspace sampling and counting: the
//! generation half of the mapper, per mapspace kind. Ruby's expansion
//! must not make *drawing* a mapping slower — only the space bigger.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_core::prelude::*;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample");
    let arch = presets::eyeriss_like(14, 12);
    let shape = ProblemShape::conv("c", 1, 256, 64, 56, 56, 1, 1, (1, 1));
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(arch.clone(), shape.clone(), kind)
            .with_constraints(Constraints::eyeriss_row_stationary(3, 1));
        let mut rng = SmallRng::seed_from_u64(9);
        group.bench_function(kind.name(), |b| b.iter(|| space.sample(&mut rng)));
        // Allocation-free path: reuse one Sampler and one Mapping buffer.
        let mut sampler = space.sampler();
        let mut out = space.sample(&mut rng);
        group.bench_function(format!("{}_into", kind.name()), |b| {
            b.iter(|| sampler.sample_into(&mut out, &mut rng))
        });
    }
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    // Table I's counting machinery at its largest size.
    let mut group = c.benchmark_group("count_tilings_d4096");
    for kind in MapspaceKind::ALL {
        let space = Mapspace::new(
            presets::toy_linear(9, 1024),
            ProblemShape::rank1("d", 4096),
            kind,
        );
        group.bench_function(kind.name(), |b| b.iter(|| space.count_tilings()));
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_counting);
criterion_main!(benches);
