//! Criterion benches regenerating a scaled-down version of every paper
//! table/figure, so regressions in any experiment pipeline show up as a
//! timing or panic here. Full-fidelity runs live in the `fig*`/`table1`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};

use ruby_core::prelude::Objective;
use ruby_experiments::{
    fig10, fig11, fig12, fig13, fig14, fig7, fig8, fig9, table1, ExperimentBudget,
};

fn tiny_budget() -> ExperimentBudget {
    ExperimentBudget {
        max_evaluations: 600,
        termination: 150,
        threads: 2,
        repeats: 1,
        seed: 1,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let b = tiny_budget();

    group.bench_function("fig7_traces", |bench| bench.iter(|| fig7::run(&b)));
    group.bench_function("table1_counts", |bench| {
        bench.iter(|| table1::run_for(9, 1024, &[3, 24, 99, 625]))
    });
    group.bench_function("fig8_sweep", |bench| {
        bench.iter(|| fig8::run_for(&b, 16, &[100, 113, 128]))
    });
    group.bench_function("fig9_case_study", |bench| bench.iter(|| fig9::run(&b)));
    group.bench_function("fig10_resnet_eyeriss", |bench| {
        bench.iter(|| fig10::run(&b))
    });
    group.bench_function("fig11_deepbench", |bench| bench.iter(|| fig11::run(&b)));
    group.bench_function("fig11_latency_objective", |bench| {
        bench.iter(|| fig11::run_with_objective(&b, Objective::Delay))
    });
    group.bench_function("fig12_resnet_simba", |bench| bench.iter(|| fig12::run(&b)));
    group.bench_function("fig13_pareto_resnet", |bench| {
        bench.iter(|| fig13::run(&b, fig13::SuiteChoice::Resnet))
    });
    group.bench_function("fig14_sweep_improvement", |bench| {
        bench.iter(|| {
            let points = fig13::run(&b, fig13::SuiteChoice::DeepBench);
            fig14::from_points(&points, fig13::SuiteChoice::DeepBench)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
