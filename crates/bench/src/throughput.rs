//! Search-engine throughput: samples/sec, thread scaling, and strategy
//! comparison.
//!
//! The paper's methodology evaluates hundreds of thousands of sampled
//! mappings per layer, so mapper throughput bounds every experiment.
//! [`run`] times the full sample→evaluate→compare loop on the Eyeriss-like
//! preset over a misaligned ResNet-50-style layer for every
//! [`SearchStrategy`] at each thread count, reporting samples/sec,
//! valid-rate, dedup hit-rate and pruning counters; the
//! `search_throughput` binary writes the result to `BENCH_search.json`
//! as the baseline future PRs are measured against.

use std::time::Instant;

use ruby_core::prelude::*;

/// Throughput of one strategy at one thread count.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Search strategy measured ([`SearchStrategy::name`]).
    pub strategy: String,
    /// Worker threads used.
    pub threads: u64,
    /// Whether `threads` exceeded the machine's hardware parallelism
    /// during the measurement (the point then measures engine overhead,
    /// not hardware scaling).
    pub oversubscribed: bool,
    /// Candidates scored (valid + invalid + duplicates); bound-pruned
    /// candidates are avoided work, reported separately below.
    pub evaluations: u64,
    /// Fully evaluated, model-valid mappings among them.
    pub valid: u64,
    /// Model-rejected candidates.
    pub invalid: u64,
    /// Memo-cache hits (candidates skipped without re-evaluation).
    pub duplicates: u64,
    /// Enumeration subtrees discarded by the cost lower bound.
    pub pruned_subtrees: u64,
    /// Candidates discarded by the cost lower bound.
    pub pruned_mappings: u64,
    /// `valid / evaluations` (0 when nothing was considered).
    pub valid_rate: f64,
    /// Best EDP found, or `-1.0` when no valid mapping was found.
    pub best_edp: f64,
    /// Whether the strategy provably covered the whole deduplicated
    /// space.
    pub exhausted: bool,
    /// Best wall-clock seconds over the repeats.
    pub seconds: f64,
    /// `evaluations / seconds` for the best repeat.
    pub samples_per_sec: f64,
    /// Throughput relative to this strategy's `threads == 1` point
    /// (`0.0` when the request list measured no single-thread point).
    pub speedup: f64,
    /// `speedup / threads` — 1.0 is ideal linear scaling (`0.0` when
    /// no single-thread point was measured).
    pub parallel_efficiency: f64,
}

serde::impl_serde_struct!(ThroughputPoint {
    strategy,
    threads,
    oversubscribed,
    evaluations,
    valid,
    invalid,
    duplicates,
    pruned_subtrees,
    pruned_mappings,
    valid_rate,
    best_edp,
    exhausted,
    seconds,
    samples_per_sec,
    speedup,
    parallel_efficiency,
});

/// The full strategy × thread-scaling measurement.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Report schema version ([`SCHEMA_VERSION`], shared with the CLI
    /// `--json` document and the telemetry JSONL stream).
    pub schema: u64,
    /// Whether the binary was built with the `telemetry` feature (its
    /// counters add a small cost, so baselines must not be compared
    /// across instrumentation modes).
    pub telemetry: bool,
    /// Architecture preset measured.
    pub arch: String,
    /// Workload layer measured.
    pub workload: String,
    /// Mapspace kind sampled.
    pub mapspace: String,
    /// Candidate budget per run (termination disabled).
    pub max_evaluations: u64,
    /// Timed repeats per point (best kept).
    pub repeats: u64,
    /// Hardware threads the machine offered during the measurement.
    pub available_parallelism: u64,
    /// One entry per strategy per thread count, grouped by strategy in
    /// [`SearchStrategy`] declaration order, thread counts ascending.
    pub points: Vec<ThroughputPoint>,
}

serde::impl_serde_struct!(ThroughputReport {
    schema,
    telemetry,
    arch,
    workload,
    mapspace,
    max_evaluations,
    repeats,
    available_parallelism,
    points,
});

/// The strategies measured, in reporting order.
pub const STRATEGIES: [SearchStrategy; 3] = [
    SearchStrategy::Random,
    SearchStrategy::Exhaustive,
    SearchStrategy::Hybrid,
];

/// The misaligned pointwise layer used by the integration tests: M = 256
/// against 12 PE rows, the paper's motivating mismatch.
fn layer() -> ProblemShape {
    ProblemShape::conv("pw_256", 1, 256, 64, 28, 28, 1, 1, (1, 1))
}

/// Measures every strategy's search throughput at each of
/// `thread_counts`, spending exactly `max_evaluations` candidates per
/// run (no early termination, so every run of a strategy does identical
/// work) and keeping the fastest of `repeats` timed runs per point.
/// Thread counts above the machine's parallelism are measured anyway but
/// flagged [`ThroughputPoint::oversubscribed`]; callers that only want
/// hardware-scaling points should filter the request list first.
pub fn run(max_evaluations: u64, repeats: u64, thread_counts: &[usize]) -> ThroughputReport {
    assert!(repeats > 0, "need at least one timed repeat");
    let available = ruby_core::search::default_threads() as u64;
    let arch = presets::eyeriss_like(14, 12);
    let space = Mapspace::new(arch, layer(), MapspaceKind::RubyS);
    let mut points = Vec::with_capacity(STRATEGIES.len() * thread_counts.len());
    for strategy in STRATEGIES {
        let base_index = points.len();
        for &threads in thread_counts {
            let config = SearchConfig {
                seed: 1,
                max_evaluations: Some(max_evaluations),
                termination: None,
                threads,
                strategy,
                ..SearchConfig::default()
            };
            let mut best_seconds = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..repeats {
                let start = Instant::now();
                let result = Engine::new(&space).with_config(config.clone()).run();
                let seconds = start.elapsed().as_secs_f64();
                if seconds < best_seconds {
                    best_seconds = seconds;
                    outcome = Some(result);
                }
            }
            // lint: allow(panics) — the repeat loop runs at least once
            // (repeats is clamped to >= 1), so an outcome was recorded.
            let outcome = outcome.expect("repeats > 0");
            let valid_rate = if outcome.evaluations > 0 {
                outcome.valid as f64 / outcome.evaluations as f64
            } else {
                0.0
            };
            points.push(ThroughputPoint {
                strategy: strategy.name().to_owned(),
                threads: threads as u64,
                oversubscribed: threads as u64 > available,
                evaluations: outcome.evaluations,
                valid: outcome.valid,
                invalid: outcome.invalid,
                duplicates: outcome.duplicates,
                pruned_subtrees: outcome.pruned_subtrees,
                pruned_mappings: outcome.pruned_mappings,
                valid_rate,
                best_edp: outcome.best.map_or(-1.0, |b| b.report.edp()),
                exhausted: outcome.exhausted,
                seconds: best_seconds,
                samples_per_sec: outcome.evaluations as f64 / best_seconds,
                speedup: 0.0,             // filled in below
                parallel_efficiency: 0.0, // filled in below
            });
        }
        // Speedup is pinned to this strategy's measured single-thread
        // point, not merely the first point: a request list without 1
        // leaves the ratios at their 0.0 sentinel instead of silently
        // normalizing against a multi-threaded base.
        let base = points[base_index..]
            .iter()
            .find(|p| p.threads == 1)
            .map(|p| p.samples_per_sec);
        if let Some(base) = base {
            for point in &mut points[base_index..] {
                point.speedup = point.samples_per_sec / base;
                point.parallel_efficiency = point.speedup / point.threads as f64;
            }
        }
    }
    ThroughputReport {
        schema: SCHEMA_VERSION,
        telemetry: ruby_telemetry::enabled(),
        arch: "eyeriss:14x12".to_owned(),
        workload: layer().name().to_owned(),
        mapspace: MapspaceKind::RubyS.name().to_owned(),
        max_evaluations,
        repeats,
        available_parallelism: available,
        points,
    }
}

/// Renders the report as an aligned text table.
pub fn render(report: &ThroughputReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "search throughput — {} / {} / {} ({} candidates per run, best of {})\n",
        report.arch, report.workload, report.mapspace, report.max_evaluations, report.repeats
    ));
    out.push_str(
        "strategy   threads    samples/sec  valid%   dup%  pruned    speedup   efficiency\n",
    );
    for p in &report.points {
        let dup_rate = if p.evaluations > 0 {
            p.duplicates as f64 / p.evaluations as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<10} {:>7} {:>14.0} {:>6.1}% {:>5.1}% {:>7} {:>9.2}x {:>11.2}{}\n",
            p.strategy,
            p.threads,
            p.samples_per_sec,
            p.valid_rate * 100.0,
            dup_rate * 100.0,
            p.pruned_mappings,
            p.speedup,
            p.parallel_efficiency,
            if p.oversubscribed {
                "  (oversubscribed)"
            } else {
                ""
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_report_covers_every_strategy() {
        let report = run(200, 1, &[1]);
        assert_eq!(report.points.len(), STRATEGIES.len());
        for (p, s) in report.points.iter().zip(STRATEGIES) {
            assert_eq!(p.strategy, s.name());
            assert!(p.samples_per_sec > 0.0, "{}", p.strategy);
            assert_eq!(p.speedup, 1.0, "{}", p.strategy);
            assert_eq!(p.parallel_efficiency, 1.0, "{}", p.strategy);
            assert!(p.evaluations <= 200, "{}: {}", p.strategy, p.evaluations);
            assert_eq!(
                p.evaluations,
                p.valid + p.invalid + p.duplicates,
                "{}",
                p.strategy
            );
            assert!((0.0..=1.0).contains(&p.valid_rate), "{}", p.strategy);
        }
        // Random spends the whole budget; its valid-rate is meaningful.
        assert_eq!(report.points[0].evaluations, 200);
        assert!(report.points[0].valid > 0);
    }

    #[test]
    fn scaling_points_cover_requested_threads() {
        let report = run(200, 1, &[1, 2]);
        assert_eq!(report.points.len(), 2 * STRATEGIES.len());
        // Random at 2 threads: same total work as at 1.
        assert_eq!(report.points[1].strategy, "random");
        assert_eq!(report.points[1].threads, 2);
        assert_eq!(report.points[1].evaluations, 200);
    }

    #[test]
    fn oversubscription_is_flagged_not_dropped() {
        let report = run(50, 1, &[1, 9999]);
        let p = &report.points[1];
        assert_eq!(p.threads, 9999);
        assert!(p.oversubscribed);
        assert!(!report.points[0].oversubscribed, "1 thread always fits");
    }

    #[test]
    fn speedup_base_is_the_single_thread_point_regardless_of_order() {
        // 1 thread listed *after* 2: the base must still be the
        // threads == 1 measurement, not whichever point came first.
        let report = run(50, 1, &[2, 1]);
        for chunk in report.points.chunks(2) {
            let (two, one) = (&chunk[0], &chunk[1]);
            assert_eq!(two.threads, 2, "{}", two.strategy);
            assert_eq!(one.threads, 1, "{}", one.strategy);
            assert_eq!(one.speedup, 1.0, "{}", one.strategy);
            assert_eq!(one.parallel_efficiency, 1.0, "{}", one.strategy);
            assert_eq!(
                two.speedup.to_bits(),
                (two.samples_per_sec / one.samples_per_sec).to_bits(),
                "{}",
                two.strategy
            );
        }
    }

    #[test]
    fn missing_single_thread_point_leaves_the_sentinel() {
        let report = run(50, 1, &[2]);
        for p in &report.points {
            assert_eq!(p.speedup, 0.0, "{}", p.strategy);
            assert_eq!(p.parallel_efficiency, 0.0, "{}", p.strategy);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(50, 1, &[1]);
        assert_eq!(report.schema, SCHEMA_VERSION);
        assert_eq!(report.telemetry, ruby_telemetry::enabled());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, report.schema);
        assert_eq!(back.telemetry, report.telemetry);
        assert_eq!(back.points.len(), report.points.len());
        assert_eq!(back.points[0].strategy, report.points[0].strategy);
        assert_eq!(back.points[0].evaluations, report.points[0].evaluations);
        assert_eq!(
            back.points[1].oversubscribed,
            report.points[1].oversubscribed
        );
        assert_eq!(
            back.points[0].samples_per_sec.to_bits(),
            report.points[0].samples_per_sec.to_bits()
        );
    }

    #[test]
    fn render_mentions_strategies_and_rates() {
        let report = run(50, 1, &[1]);
        let text = render(&report);
        assert!(text.contains("samples/sec"));
        assert!(text.contains("eyeriss:14x12"));
        assert!(text.contains("random"));
        assert!(text.contains("exhaustive"));
        assert!(text.contains("hybrid"));
        assert!(text.contains("valid%"));
    }
}
