//! Search-engine throughput: samples/sec and thread scaling.
//!
//! The paper's methodology evaluates hundreds of thousands of sampled
//! mappings per layer, so mapper throughput bounds every experiment.
//! [`run`] times the full sample→evaluate→compare loop on the Eyeriss-like
//! preset over a misaligned ResNet-50-style layer and reports
//! samples/sec per thread count; the `search_throughput` binary writes
//! the result to `BENCH_search.json` as the baseline future PRs are
//! measured against.

use std::time::Instant;

use ruby_core::prelude::*;

/// Throughput at one thread count.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub threads: u64,
    /// Mappings sampled (valid + invalid).
    pub evaluations: u64,
    /// Valid mappings among them.
    pub valid: u64,
    /// Best wall-clock seconds over the repeats.
    pub seconds: f64,
    /// `evaluations / seconds` for the best repeat.
    pub samples_per_sec: f64,
    /// Throughput relative to the single-thread point.
    pub speedup: f64,
    /// `speedup / threads` — 1.0 is ideal linear scaling.
    pub parallel_efficiency: f64,
}

serde::impl_serde_struct!(ThroughputPoint {
    threads,
    evaluations,
    valid,
    seconds,
    samples_per_sec,
    speedup,
    parallel_efficiency,
});

/// The full thread-scaling measurement.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Architecture preset measured.
    pub arch: String,
    /// Workload layer measured.
    pub workload: String,
    /// Mapspace kind sampled.
    pub mapspace: String,
    /// Sampled mappings per run (termination disabled).
    pub max_evaluations: u64,
    /// Timed repeats per thread count (best kept).
    pub repeats: u64,
    /// Hardware threads the machine offered during the measurement;
    /// points beyond it are oversubscribed and measure engine overhead,
    /// not hardware scaling.
    pub available_parallelism: u64,
    /// One entry per thread count, ascending.
    pub points: Vec<ThroughputPoint>,
}

serde::impl_serde_struct!(ThroughputReport {
    arch,
    workload,
    mapspace,
    max_evaluations,
    repeats,
    available_parallelism,
    points,
});

/// The misaligned pointwise layer used by the integration tests: M = 256
/// against 12 PE rows, the paper's motivating mismatch.
fn layer() -> ProblemShape {
    ProblemShape::conv("pw_256", 1, 256, 64, 28, 28, 1, 1, (1, 1))
}

/// Measures search throughput at each of `thread_counts`, drawing
/// exactly `max_evaluations` samples per run (no early termination so
/// every run does identical work) and keeping the fastest of `repeats`
/// timed runs per point.
pub fn run(max_evaluations: u64, repeats: u64, thread_counts: &[usize]) -> ThroughputReport {
    assert!(repeats > 0, "need at least one timed repeat");
    let arch = presets::eyeriss_like(14, 12);
    let space = Mapspace::new(arch, layer(), MapspaceKind::RubyS);
    let mut points = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let config = SearchConfig {
            seed: 1,
            max_evaluations: Some(max_evaluations),
            termination: None,
            threads,
            ..SearchConfig::default()
        };
        let mut best_seconds = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let result = search(&space, &config);
            let seconds = start.elapsed().as_secs_f64();
            if seconds < best_seconds {
                best_seconds = seconds;
                outcome = Some(result);
            }
        }
        let outcome = outcome.expect("repeats > 0");
        points.push(ThroughputPoint {
            threads: threads as u64,
            evaluations: outcome.evaluations,
            valid: outcome.valid,
            seconds: best_seconds,
            samples_per_sec: outcome.evaluations as f64 / best_seconds,
            speedup: 0.0,             // filled in below
            parallel_efficiency: 0.0, // filled in below
        });
    }
    let base = points[0].samples_per_sec;
    for point in &mut points {
        point.speedup = point.samples_per_sec / base;
        point.parallel_efficiency = point.speedup / point.threads as f64;
    }
    ThroughputReport {
        arch: "eyeriss:14x12".to_owned(),
        workload: layer().name().to_owned(),
        mapspace: MapspaceKind::RubyS.name().to_owned(),
        max_evaluations,
        repeats,
        available_parallelism: ruby_core::search::default_threads() as u64,
        points,
    }
}

/// Renders the report as an aligned text table.
pub fn render(report: &ThroughputReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "search throughput — {} / {} / {} ({} samples per run, best of {})\n",
        report.arch, report.workload, report.mapspace, report.max_evaluations, report.repeats
    ));
    out.push_str("threads    samples/sec      speedup   efficiency\n");
    for p in &report.points {
        out.push_str(&format!(
            "{:>7} {:>14.0} {:>10.2}x {:>11.2}\n",
            p.threads, p.samples_per_sec, p.speedup, p.parallel_efficiency
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_report_is_consistent() {
        let report = run(200, 1, &[1]);
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.evaluations, 200);
        assert!(p.samples_per_sec > 0.0);
        assert_eq!(p.speedup, 1.0);
        assert_eq!(p.parallel_efficiency, 1.0);
    }

    #[test]
    fn scaling_points_cover_requested_threads() {
        let report = run(200, 1, &[1, 2]);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[1].threads, 2);
        // Two threads do the same total work.
        assert_eq!(report.points[1].evaluations, 200);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(50, 1, &[1]);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points[0].evaluations, report.points[0].evaluations);
        assert_eq!(
            back.points[0].samples_per_sec.to_bits(),
            report.points[0].samples_per_sec.to_bits()
        );
    }

    #[test]
    fn render_mentions_every_thread_count() {
        let report = run(50, 1, &[1]);
        let text = render(&report);
        assert!(text.contains("samples/sec"));
        assert!(text.contains("eyeriss:14x12"));
    }
}
