//! Regenerates Fig. 9: the AlexNet layer-2 case study (handcrafted vs
//! PFM vs Ruby-S on the Eyeriss-like baseline).

use ruby_experiments::fig9;

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", fig9::render(&fig9::run(&budget)));
}
