//! Regenerates Table I: mapspace sizes for a rank-1 tensor over a
//! two-level hierarchy with a fanout of 9.

use ruby_experiments::table1;

fn main() {
    print!("{}", table1::render(&table1::run()));
}
