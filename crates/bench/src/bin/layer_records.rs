//! Per-layer search records for a whole suite: times every layer's
//! Ruby-S search on the Eyeriss-like baseline and writes one
//! search-quality JSONL record per layer to `BENCH_layers.jsonl`.
//!
//! Usage: `layer_records [--suite resnet50|alexnet|deepbench|vgg16|mobilenet]
//! [--quick | --medium | --full]` (default: resnet50, medium budget).

use ruby_core::prelude::*;
use ruby_experiments::{records, ExperimentBudget};

fn main() {
    let mut budget = ruby_bench::medium();
    let mut suite_name = "resnet50".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => budget = ExperimentBudget::quick(),
            "--medium" => budget = ruby_bench::medium(),
            "--full" => budget = ExperimentBudget::full(),
            "--suite" => match args.next() {
                Some(name) => suite_name = name,
                None => {
                    eprintln!("--suite needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}; expected \
                     [--suite <name>] [--quick | --medium | --full]"
                );
                std::process::exit(2);
            }
        }
    }
    let suite = match suite_name.as_str() {
        "resnet50" => suites::resnet50(),
        "alexnet" => suites::alexnet(),
        "deepbench" => suites::deepbench(),
        "vgg16" => suites::vgg16(),
        "mobilenet" => suites::mobilenet_v1_pointwise(),
        other => {
            eprintln!(
                "unknown suite '{other}' (try resnet50, alexnet, deepbench, vgg16, mobilenet)"
            );
            std::process::exit(2);
        }
    };

    let recs = records::suite_records(&suite, &budget, MapspaceKind::RubyS);
    println!(
        "{:<22} {:>9} {:>8} {:>7} {:>13} {:>8}",
        "layer", "evals", "valid%", "secs", "best EDP", "cycles"
    );
    for r in &recs {
        let valid_rate = if r.evaluations > 0 {
            r.valid as f64 / r.evaluations as f64
        } else {
            0.0
        };
        println!(
            "{:<22} {:>9} {:>7.1}% {:>7.2} {:>13.4e} {:>8}",
            r.layer,
            r.evaluations,
            valid_rate * 100.0,
            r.seconds,
            r.best_edp,
            r.best_cycles
        );
    }

    let path = "BENCH_layers.jsonl";
    ruby_telemetry::write_atomic(path, records::to_jsonl(&recs).as_bytes())
        .expect("writable working directory");
    println!("wrote {path} ({} records)", recs.len());
}
