//! Regenerates Fig. 11: DeepBench on the Eyeriss-like baseline, plus the
//! latency-objective variant quoted in §IV-D.

use ruby_core::prelude::Objective;
use ruby_experiments::fig11;

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", fig11::render(&fig11::run(&budget)));
    let latency = fig11::run_with_objective(&budget, Objective::Delay);
    println!(
        "latency objective: mean cycle ratio {:.3} (paper: -14%)",
        latency.mean_edp_ratio
    );
}
