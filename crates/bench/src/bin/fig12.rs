//! Regenerates Fig. 12: ResNet-50 on the Simba-like architecture
//! (15 PEs × 4×4-wide vMACs), plus the 9-PE × 3×3 configuration.

use ruby_experiments::fig12;

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", fig12::render(&fig12::run(&budget)));
    let small = fig12::run_small(&budget);
    println!(
        "secondary config ({}): network EDP ratio {:.3} (paper: -45%)",
        small.config, small.network_edp_ratio
    );
}
