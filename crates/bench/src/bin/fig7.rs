//! Regenerates Fig. 7: best-EDP-so-far vs mappings evaluated on the four
//! toy scenarios.

use ruby_experiments::fig7;

fn main() {
    let budget = ruby_bench::budget_from_args();
    let results = fig7::run(&budget);
    print!("{}", fig7::render(&results));
}
