//! Runs the three extension studies that go beyond the paper: GLB
//! bypass exploration, search-strategy comparison, and Ruby-S on a
//! four-level clustered hierarchy.

use ruby_experiments::{ext_bypass, ext_hierarchy, ext_search};

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", ext_bypass::render(&ext_bypass::run(&budget)));
    println!();
    print!("{}", ext_search::render(&ext_search::run(&budget)));
    println!();
    print!("{}", ext_hierarchy::render(&ext_hierarchy::run(&budget)));
}
