//! Resilience smoke gate for tier-1: proves, at smoke scale, that
//!
//! 1. an exhaustive run interrupted at ~50% of its budget and resumed
//!    from its checkpoint reproduces the uninterrupted run bit-for-bit
//!    (best cost, best mapping, every deterministic counter);
//! 2. no torn artifacts survive — the checkpoint directory holds no
//!    stray `.tmp` staging files after the kill/resume cycle;
//! 3. (in `--features failpoints` builds) an injected evaluation panic
//!    is supervised — the run completes with `worker_restarts ≥ 1`
//!    instead of aborting the process.
//!
//! Exits nonzero on the first violated property.

use ruby_core::prelude::*;

fn space() -> Mapspace {
    Mapspace::new(
        presets::toy_linear(16, 1024),
        ProblemShape::rank1("d", 113),
        MapspaceKind::RubyS,
    )
}

fn config() -> SearchConfig {
    // justified: the smoke config is a compile-time constant; builder
    // rejection would be a programming error, not an input error.
    SearchConfig::builder()
        .seed(42)
        .threads(1)
        .strategy(SearchStrategy::Exhaustive)
        .max_evaluations(2_000)
        .no_termination()
        .build()
        .expect("smoke config is valid")
}

fn fail(what: &str) -> ! {
    eprintln!("resilience smoke FAILED: {what}");
    std::process::exit(1);
}

fn check(cond: bool, what: &str) {
    if !cond {
        fail(what);
    }
}

fn assert_same(a: &SearchOutcome, b: &SearchOutcome) {
    check(a.evaluations == b.evaluations, "evaluations diverged");
    check(a.valid == b.valid, "valid counts diverged");
    check(a.invalid == b.invalid, "invalid counts diverged");
    check(a.duplicates == b.duplicates, "duplicate counts diverged");
    check(a.exhausted == b.exhausted, "exhausted flags diverged");
    let cost = |o: &SearchOutcome| o.best.as_ref().map(|b| b.cost.to_bits());
    check(cost(a) == cost(b), "best cost bits diverged");
    let mapping = |o: &SearchOutcome| o.best.as_ref().map(|b| b.mapping.clone());
    check(mapping(a) == mapping(b), "best mappings diverged");
}

fn kill_and_resume() {
    let space = space();
    let baseline = Engine::new(&space).with_config(config()).run();
    check(baseline.best.is_some(), "baseline found no valid mapping");

    let dir = std::env::temp_dir().join(format!("ruby-resilience-smoke-{}", std::process::id()));
    // justified: a temp dir that cannot be created fails the gate
    // loudly; there is nothing to degrade to.
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join("run.ckpt");

    // Interrupt at ~50% of the baseline's evaluation count: the token
    // trips deterministically, the drain writes a checkpoint.
    let token = StopToken::new();
    token.trip_after_evaluations(baseline.evaluations / 2);
    let interrupted = Engine::new(&space)
        .with_config(config())
        .with_stop_token(token)
        .with_checkpoint(&path, 10_000)
        .run();
    check(interrupted.stopped_early, "trip-wire did not stop the run");
    check(path.exists(), "no checkpoint written at the drain point");

    let resumed = match Engine::new(&space)
        .with_config(config())
        .with_checkpoint(&path, 10_000)
        .resume()
        .try_run()
    {
        Ok(outcome) => outcome,
        Err(err) => fail(&format!("resume rejected the checkpoint: {err}")),
    };
    check(!resumed.stopped_early, "resumed run did not finish");
    assert_same(&baseline, &resumed);

    // No torn artifacts: atomic writes stage into `.tmp` siblings and
    // rename; anything left behind means a write path skipped the
    // discipline (or a rename failed silently).
    // justified: an unreadable temp dir fails the gate loudly.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("temp dir is readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    check(leftovers.is_empty(), "stray .tmp staging files survived");
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "kill/resume parity OK ({} evaluations, interrupted at {})",
        baseline.evaluations, interrupted.evaluations
    );
}

#[cfg(feature = "failpoints")]
fn supervised_panic() {
    // Silence the default panic report for the injected panics; the
    // supervisor converts them into quarantine + restart bookkeeping.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("failpoint"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("failpoint"));
        if !injected {
            default_hook(info);
        }
    }));
    check(
        ruby_failpoints::arm("search.eval", "panic@10"),
        "failpoint site `search.eval` did not arm",
    );
    let space = space();
    // justified: the builder input is constant (see `config`).
    let config = SearchConfig::builder()
        .seed(42)
        .threads(2)
        .strategy(SearchStrategy::Random)
        .max_evaluations(500)
        .no_termination()
        .max_worker_restarts(100_000)
        .build()
        .expect("smoke config is valid");
    let outcome = Engine::new(&space).with_config(config).run();
    ruby_failpoints::reset();
    let _ = std::panic::take_hook();
    check(
        outcome.worker_restarts >= 1,
        "injected panic produced no supervised restart",
    );
    check(
        !outcome.stopped_early,
        "supervised run should complete within its restart budget",
    );
    check(
        outcome.best.is_some(),
        "supervised run lost its best mapping",
    );
    println!(
        "supervised panic OK ({} restarts, {} quarantined)",
        outcome.worker_restarts, outcome.quarantined
    );
}

#[cfg(not(feature = "failpoints"))]
fn supervised_panic() {
    println!("supervised panic SKIPPED (build without --features failpoints)");
}

fn main() {
    kill_and_resume();
    supervised_panic();
    println!("resilience smoke OK");
}
