//! Regenerates Fig. 13: the PE-array sweep's EDP-vs-area Pareto study
//! for ResNet-50 (a) and the DeepBench subselection (b).

use ruby_experiments::fig13::{self, SuiteChoice};

fn main() {
    let budget = ruby_bench::budget_from_args();
    for choice in [SuiteChoice::Resnet, SuiteChoice::DeepBench] {
        let points = fig13::run(&budget, choice);
        print!("{}", fig13::render(&points, choice));
        println!();
    }
}
