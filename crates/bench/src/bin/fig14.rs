//! Regenerates Fig. 14: per-configuration EDP improvement across the
//! PE-array sweep.

use ruby_experiments::fig13::SuiteChoice;
use ruby_experiments::fig14;

fn main() {
    let budget = ruby_bench::budget_from_args();
    for choice in [SuiteChoice::Resnet, SuiteChoice::DeepBench] {
        print!("{}", fig14::render(&fig14::run(&budget, choice)));
        println!();
    }
}
