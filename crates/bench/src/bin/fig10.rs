//! Regenerates Fig. 10: ResNet-50 per layer on the Eyeriss-like baseline.

use ruby_experiments::fig10;

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", fig10::render(&fig10::run(&budget)));
}
