//! Regenerates Fig. 8: dimension-size sweep — Ruby-S vs PFM vs
//! PFM+padding on a 16-PE linear array.

use ruby_experiments::fig8;

fn main() {
    let budget = ruby_bench::budget_from_args();
    print!("{}", fig8::render(&fig8::run(&budget)));
}
