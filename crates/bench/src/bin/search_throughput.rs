//! Measures each search strategy's throughput across thread counts on
//! the Eyeriss-like preset and writes the baseline to
//! `BENCH_search.json` in the working directory.
//!
//! Budgets: `--quick` (smoke), `--medium` (default), `--full`.
//! `--smoke` runs a few hundred candidates per strategy single-threaded,
//! fails on any panic or a strategy finding zero valid mappings, and
//! writes no JSON — the tier-1 regression gate.

use ruby_bench::throughput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let budget = ruby_bench::budget_from_args();
    // Fixed work per run: no early termination, so each thread count
    // performs an identical number of candidate steps.
    let max_evaluations = budget.max_evaluations.max(2_000);
    let repeats = budget.repeats.clamp(1, 3) as u64;
    // Measure only thread counts the hardware can actually schedule
    // (always keeping the single-thread baseline); the oversubscribed
    // flag in the JSON covers machines whose width changes later.
    let available = ruby_core::search::default_threads();
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= available)
        .collect();
    let report = throughput::run(max_evaluations, repeats, &thread_counts);
    print!("{}", throughput::render(&report));

    let json = serde_json::to_string_pretty(&report).expect("reports always serialize");
    let path = "BENCH_search.json";
    ruby_telemetry::write_atomic(path, json.as_bytes()).expect("writable working directory");
    println!("wrote {path}");
}

/// A few hundred candidates per strategy, single-threaded: fails the
/// process when any strategy finds no valid mapping, when the random
/// walk repeats a candidate, or when single-thread random throughput
/// falls below half the committed `BENCH_search.json` baseline.
fn smoke() {
    let report = throughput::run(300, 1, &[1]);
    print!("{}", throughput::render(&report));
    println!(
        "telemetry counters: {}",
        if report.telemetry {
            "on"
        } else {
            "off (no-op)"
        }
    );
    for p in &report.points {
        if p.valid == 0 {
            eprintln!(
                "smoke failure: strategy '{}' found no valid mapping",
                p.strategy
            );
            std::process::exit(1);
        }
        // The permuted walk makes random sampling duplicate-free by
        // construction; any repeat is a broken bijection.
        if p.strategy == "random" && p.duplicates > 0 {
            eprintln!(
                "smoke failure: the random walk repeated {} candidates \
                 (the permutation guarantees zero)",
                p.duplicates
            );
            std::process::exit(1);
        }
    }
    throughput_floor();
    println!("smoke ok: all strategies found valid mappings");
}

/// Regression guard: single-thread random throughput must stay above
/// half the committed `BENCH_search.json` point. Re-measured best-of-3
/// at a larger budget than the validity smoke so timer noise and cold
/// caches don't trip the gate; skipped (loudly) when no comparable
/// baseline is available.
fn throughput_floor() {
    let path = "BENCH_search.json";
    let Ok(json) = std::fs::read_to_string(path) else {
        println!("throughput floor: no committed {path}, skipping");
        return;
    };
    let baseline: throughput::ThroughputReport = match serde_json::from_str(&json) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("throughput floor: unreadable {path} ({err}), skipping");
            return;
        }
    };
    if baseline.schema != ruby_telemetry::SCHEMA_VERSION {
        println!(
            "throughput floor: {path} has schema {} (current {}), skipping",
            baseline.schema,
            ruby_telemetry::SCHEMA_VERSION
        );
        return;
    }
    if baseline.telemetry != ruby_telemetry::enabled() {
        println!("throughput floor: instrumentation modes differ, skipping");
        return;
    }
    let Some(base) = baseline
        .points
        .iter()
        .find(|p| p.strategy == "random" && p.threads == 1)
    else {
        println!("throughput floor: no committed random 1-thread point, skipping");
        return;
    };
    let floor = base.samples_per_sec * 0.5;
    let fresh = throughput::run(2_000, 3, &[1]);
    let measured = fresh
        .points
        .iter()
        .find(|p| p.strategy == "random" && p.threads == 1)
        .map_or(0.0, |p| p.samples_per_sec);
    if measured < floor {
        eprintln!(
            "smoke failure: random 1-thread throughput {measured:.0} samples/s \
             fell below the regression floor {floor:.0} \
             (0.5x the committed {:.0})",
            base.samples_per_sec
        );
        std::process::exit(1);
    }
    println!(
        "throughput floor ok: {measured:.0} samples/s >= {floor:.0} (0.5x committed baseline)"
    );
}
