//! Measures the random-search engine's samples/sec at 1..N threads on
//! the Eyeriss-like preset and writes the baseline to
//! `BENCH_search.json` in the working directory.
//!
//! Budgets: `--quick` (smoke), `--medium` (default), `--full`.

use ruby_bench::throughput;

fn main() {
    let budget = ruby_bench::budget_from_args();
    // Fixed work per run: no early termination, so each thread count
    // performs an identical number of sample+evaluate steps.
    let max_evaluations = budget.max_evaluations.max(2_000);
    let repeats = budget.repeats.clamp(1, 3) as u64;
    // Always measure 1..8 threads: on narrow machines the upper points
    // are oversubscribed, which still pins down the engine's
    // synchronization overhead (the JSON records the hardware width).
    let report = throughput::run(max_evaluations, repeats, &[1, 2, 4, 8]);
    print!("{}", throughput::render(&report));

    let json = serde_json::to_string_pretty(&report).expect("reports always serialize");
    let path = "BENCH_search.json";
    std::fs::write(path, json).expect("writable working directory");
    println!("wrote {path}");
}
