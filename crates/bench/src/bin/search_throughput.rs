//! Measures each search strategy's throughput across thread counts on
//! the Eyeriss-like preset and writes the baseline to
//! `BENCH_search.json` in the working directory.
//!
//! Budgets: `--quick` (smoke), `--medium` (default), `--full`.
//! `--smoke` runs a few hundred candidates per strategy single-threaded,
//! fails on any panic or a strategy finding zero valid mappings, and
//! writes no JSON — the tier-1 regression gate.

use ruby_bench::throughput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let budget = ruby_bench::budget_from_args();
    // Fixed work per run: no early termination, so each thread count
    // performs an identical number of candidate steps.
    let max_evaluations = budget.max_evaluations.max(2_000);
    let repeats = budget.repeats.clamp(1, 3) as u64;
    // Measure only thread counts the hardware can actually schedule
    // (always keeping the single-thread baseline); the oversubscribed
    // flag in the JSON covers machines whose width changes later.
    let available = ruby_core::search::default_threads();
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= available)
        .collect();
    let report = throughput::run(max_evaluations, repeats, &thread_counts);
    print!("{}", throughput::render(&report));

    let json = serde_json::to_string_pretty(&report).expect("reports always serialize");
    let path = "BENCH_search.json";
    ruby_telemetry::write_atomic(path, json.as_bytes()).expect("writable working directory");
    println!("wrote {path}");
}

/// A few hundred candidates per strategy, single-threaded: fails the
/// process when any strategy finds no valid mapping.
fn smoke() {
    let report = throughput::run(300, 1, &[1]);
    print!("{}", throughput::render(&report));
    println!(
        "telemetry counters: {}",
        if report.telemetry {
            "on"
        } else {
            "off (no-op)"
        }
    );
    for p in &report.points {
        if p.valid == 0 {
            eprintln!(
                "smoke failure: strategy '{}' found no valid mapping",
                p.strategy
            );
            std::process::exit(1);
        }
    }
    println!("smoke ok: all strategies found valid mappings");
}
