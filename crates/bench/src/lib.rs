//! Shared plumbing for the per-figure benchmark binaries.
//!
//! Every binary accepts an optional budget flag:
//!
//! * `--quick` — the CI smoke budget;
//! * `--medium` (default) — minutes-scale, enough for stable trends;
//! * `--full` — paper-scale search budgets.

pub mod throughput;

use ruby_experiments::ExperimentBudget;

/// Parses the budget flag from `std::env::args`.
pub fn budget_from_args() -> ExperimentBudget {
    let mut budget = medium();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => budget = ExperimentBudget::quick(),
            "--medium" => budget = medium(),
            "--full" => budget = ExperimentBudget::full(),
            other => {
                eprintln!("unknown argument {other}; expected --quick | --medium | --full");
                std::process::exit(2);
            }
        }
    }
    budget
}

/// The default binary budget: stable trends in about a minute per figure.
pub fn medium() -> ExperimentBudget {
    ExperimentBudget {
        max_evaluations: 15_000,
        termination: 1_500,
        threads: 8,
        repeats: 10,
        seed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_sits_between_quick_and_full() {
        let m = medium();
        assert!(m.max_evaluations > ExperimentBudget::quick().max_evaluations);
        assert!(m.max_evaluations < ExperimentBudget::full().max_evaluations);
    }
}
