//! Fault-injection points ("failpoints") for resilience testing.
//!
//! A failpoint is a named site in production code that can be armed to
//! misbehave on demand: panic, report an I/O-style error, or tear a
//! write after N bytes. Sites call [`hit`] with their name and act on
//! the returned [`Action`]; unarmed sites see [`Action::Off`].
//!
//! The whole facility is gated behind the `enabled` cargo feature. With
//! the feature off (the default for every production build), [`hit`] is
//! an empty `#[inline(always)]` body returning [`Action::Off`] and the
//! arming functions are no-ops, so the hot paths pay nothing and no
//! injection machinery ships.
//!
//! # Arming
//!
//! Programmatically (tests): [`arm`] / [`disarm`] / [`reset`].
//! From the environment (whole-process smoke runs): set
//! `RUBY_FAILPOINTS` to a comma-separated list of `name=spec` entries,
//! parsed on first use:
//!
//! ```text
//! RUBY_FAILPOINTS="search.eval=panic@100,telemetry.sink.write=err,artifact.write=torn:40"
//! ```
//!
//! # Specs
//!
//! * `panic` — the site should panic (every hit once triggered).
//! * `err` — the site should fail with an injected error.
//! * `torn:N` — the site should truncate its write after `N` bytes and
//!   then fail (checkpoint/artifact writers use this to simulate a
//!   crash mid-write).
//! * `delay:MS` — [`hit`] itself sleeps `MS` milliseconds (with the
//!   registry lock released) before returning [`Action::Delay`], so
//!   *every* site supports injected latency without site-side code.
//! * `p:PROB:spec` — probabilistic wrapper: once triggered, each hit
//!   draws from a deterministic seeded generator and applies the inner
//!   spec with probability `PROB` (e.g. `p:0.2:panic`), otherwise the
//!   site sees [`Action::Off`].
//! * Any spec may carry `@K` (e.g. `panic@100`, `p:0.5:err@10`): the
//!   action triggers on the K-th hit of that site (1-based) and every
//!   hit after it, so a run can fail mid-stream rather than at the
//!   first touch.
//!
//! The registry counts hits per site whether or not the site is armed;
//! [`hits`] exposes the count so tests can assert a site was actually
//! exercised.

/// What an armed failpoint asks its site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not armed (or the crate is compiled without `enabled`).
    Off,
    /// Panic at the site.
    Panic,
    /// Fail with an injected error.
    Err,
    /// Truncate the write after this many bytes, then fail.
    Torn(usize),
    /// Injected latency: [`hit`] already slept this many milliseconds
    /// before returning, so sites may treat it like [`Action::Off`].
    Delay(u64),
}

#[cfg(feature = "enabled")]
mod real {
    use super::Action;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Point {
        name: String,
        action: Action,
        /// 1-based hit number at which the action starts triggering.
        after: u64,
        /// Probability a triggered hit applies the action (1.0 = every
        /// hit, the non-`p:` default).
        prob: f64,
        hits: u64,
    }

    struct Registry {
        points: Vec<Point>,
        /// splitmix64 state for the `p:` draws — deterministic per
        /// process so chaos runs are reproducible.
        rng: u64,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut points = Vec::new();
            if let Ok(env) = std::env::var("RUBY_FAILPOINTS") {
                for entry in env.split(',') {
                    let entry = entry.trim();
                    if entry.is_empty() {
                        continue;
                    }
                    if let Some((name, spec)) = entry.split_once('=') {
                        if let Some((action, after, prob)) = parse_spec(spec) {
                            points.push(Point {
                                name: name.trim().to_owned(),
                                action,
                                after,
                                prob,
                                hits: 0,
                            });
                        } else {
                            eprintln!("ruby-failpoints: ignoring malformed spec `{entry}`");
                        }
                    } else {
                        eprintln!("ruby-failpoints: ignoring malformed entry `{entry}`");
                    }
                }
            }
            Mutex::new(Registry {
                points,
                rng: 0x9E37_79B9_7F4A_7C15,
            })
        })
    }

    /// Parses `panic`, `err`, `torn:N`, `delay:MS`, optionally wrapped
    /// `p:PROB:spec`, each optionally suffixed `@K`. Returns
    /// `(action, after, probability)`.
    fn parse_spec(spec: &str) -> Option<(Action, u64, f64)> {
        let spec = spec.trim();
        if let Some(rest) = spec.strip_prefix("p:") {
            let (prob, inner) = rest.split_once(':')?;
            let prob = prob.parse::<f64>().ok()?;
            if !(0.0..=1.0).contains(&prob) {
                return None;
            }
            let (action, after, _) = parse_spec(inner)?;
            return Some((action, after, prob));
        }
        let (body, after) = match spec.split_once('@') {
            Some((body, at)) => (body, at.parse::<u64>().ok()?.max(1)),
            None => (spec, 1),
        };
        let action = match body {
            "panic" => Action::Panic,
            "err" => Action::Err,
            _ => {
                if let Some(n) = body.strip_prefix("torn:") {
                    Action::Torn(n.parse::<usize>().ok()?)
                } else {
                    let ms = body.strip_prefix("delay:")?;
                    Action::Delay(ms.parse::<u64>().ok()?)
                }
            }
        };
        Some((action, after, 1.0))
    }

    /// One splitmix64 step, mapped to [0, 1).
    fn draw(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn hit(name: &str) -> Action {
        let action = {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            let reg = &mut *reg;
            match reg.points.iter_mut().find(|p| p.name == name) {
                Some(point) => {
                    point.hits += 1;
                    if point.hits < point.after {
                        Action::Off
                    } else if point.prob >= 1.0 || draw(&mut reg.rng) < point.prob {
                        point.action
                    } else {
                        Action::Off
                    }
                }
                None => {
                    // Count hits on unarmed sites too, so tests can assert a
                    // site was reached before arming it.
                    reg.points.push(Point {
                        name: name.to_owned(),
                        action: Action::Off,
                        after: u64::MAX,
                        prob: 1.0,
                        hits: 1,
                    });
                    Action::Off
                }
            }
        };
        // Sleep with the registry lock released so a delayed site never
        // stalls hits (or arming) elsewhere in the process.
        if let Action::Delay(ms) = action {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        action
    }

    pub fn arm(name: &str, spec: &str) -> bool {
        let Some((action, after, prob)) = parse_spec(spec) else {
            return false;
        };
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        match reg.points.iter_mut().find(|p| p.name == name) {
            Some(point) => {
                point.action = action;
                point.after = point.hits + after;
                point.prob = prob;
            }
            None => reg.points.push(Point {
                name: name.to_owned(),
                action,
                after,
                prob,
                hits: 0,
            }),
        }
        true
    }

    pub fn disarm(name: &str) {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(point) = reg.points.iter_mut().find(|p| p.name == name) {
            point.action = Action::Off;
            point.after = u64::MAX;
            point.prob = 1.0;
        }
    }

    pub fn reset() {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.points.clear();
    }

    pub fn hits(name: &str) -> u64 {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.points
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.hits)
    }
}

/// Records a hit on failpoint `name` and returns the action the site
/// should take. Always [`Action::Off`] without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn hit(name: &str) -> Action {
    real::hit(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hit(_name: &str) -> Action {
    Action::Off
}

/// Arms failpoint `name` with `spec` (`panic` | `err` | `torn:N` |
/// `delay:MS`, optionally wrapped `p:PROB:spec`, each optionally `@K`
/// for the 1-based triggering hit). Returns whether the spec parsed;
/// always `false` without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn arm(name: &str, spec: &str) -> bool {
    real::arm(name, spec)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn arm(_name: &str, _spec: &str) -> bool {
    false
}

/// Disarms failpoint `name` (hit counting continues).
#[cfg(feature = "enabled")]
pub fn disarm(name: &str) {
    real::disarm(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn disarm(_name: &str) {}

/// Clears every armed point and hit counter (test isolation).
#[cfg(feature = "enabled")]
pub fn reset() {
    real::reset()
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Hits recorded on `name` so far; always 0 without `enabled`.
#[cfg(feature = "enabled")]
pub fn hits(name: &str) -> u64 {
    real::hits(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hits(_name: &str) -> u64 {
    0
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Tests share one process-global registry, so each uses a unique
    // site name instead of reset() to stay order-independent.

    #[test]
    fn unarmed_sites_are_off_but_counted() {
        assert_eq!(hit("t.unarmed"), Action::Off);
        assert_eq!(hit("t.unarmed"), Action::Off);
        assert_eq!(hits("t.unarmed"), 2);
    }

    #[test]
    fn arming_triggers_at_the_requested_hit() {
        assert!(arm("t.third", "panic@3"));
        assert_eq!(hit("t.third"), Action::Off);
        assert_eq!(hit("t.third"), Action::Off);
        assert_eq!(hit("t.third"), Action::Panic);
        assert_eq!(hit("t.third"), Action::Panic);
        disarm("t.third");
        assert_eq!(hit("t.third"), Action::Off);
    }

    #[test]
    fn torn_spec_carries_its_byte_offset() {
        assert!(arm("t.torn", "torn:17"));
        assert_eq!(hit("t.torn"), Action::Torn(17));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(!arm("t.bad", "explode"));
        assert!(!arm("t.bad", "torn:xyz"));
        assert!(!arm("t.bad", "panic@"));
        assert!(!arm("t.bad", "delay:"));
        assert!(!arm("t.bad", "p:panic"));
        assert!(!arm("t.bad", "p:1.5:panic"));
        assert!(!arm("t.bad", "p:0.5:explode"));
        assert_eq!(hit("t.bad"), Action::Off);
    }

    #[test]
    fn delay_sleeps_before_returning() {
        assert!(arm("t.delay", "delay:30"));
        let start = std::time::Instant::now();
        assert_eq!(hit("t.delay"), Action::Delay(30));
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn probability_bounds_are_honored() {
        // p:0 never applies the inner action, p:1 always does; both
        // still count hits.
        assert!(arm("t.p0", "p:0:panic"));
        for _ in 0..50 {
            assert_eq!(hit("t.p0"), Action::Off);
        }
        assert_eq!(hits("t.p0"), 50);
        assert!(arm("t.p1", "p:1:err"));
        for _ in 0..50 {
            assert_eq!(hit("t.p1"), Action::Err);
        }
    }

    #[test]
    fn probabilistic_specs_apply_sometimes() {
        assert!(arm("t.phalf", "p:0.5:err"));
        let fired = (0..200).filter(|_| hit("t.phalf") == Action::Err).count();
        // Wildly loose bounds: just prove it is neither never nor always.
        assert!(fired > 20 && fired < 180, "fired {fired}/200");
    }

    #[test]
    fn probabilistic_specs_respect_the_trigger_hit() {
        assert!(arm("t.pafter", "p:1:err@3"));
        assert_eq!(hit("t.pafter"), Action::Off);
        assert_eq!(hit("t.pafter"), Action::Off);
        assert_eq!(hit("t.pafter"), Action::Err);
    }

    #[test]
    fn rearming_counts_from_the_current_hit() {
        assert!(arm("t.rearm", "err"));
        assert_eq!(hit("t.rearm"), Action::Err);
        disarm("t.rearm");
        assert_eq!(hit("t.rearm"), Action::Off);
        // `@2` now means "second hit from here", not from process start.
        assert!(arm("t.rearm", "err@2"));
        assert_eq!(hit("t.rearm"), Action::Off);
        assert_eq!(hit("t.rearm"), Action::Err);
    }
}
