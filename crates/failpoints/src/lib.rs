//! Fault-injection points ("failpoints") for resilience testing.
//!
//! A failpoint is a named site in production code that can be armed to
//! misbehave on demand: panic, report an I/O-style error, or tear a
//! write after N bytes. Sites call [`hit`] with their name and act on
//! the returned [`Action`]; unarmed sites see [`Action::Off`].
//!
//! The whole facility is gated behind the `enabled` cargo feature. With
//! the feature off (the default for every production build), [`hit`] is
//! an empty `#[inline(always)]` body returning [`Action::Off`] and the
//! arming functions are no-ops, so the hot paths pay nothing and no
//! injection machinery ships.
//!
//! # Arming
//!
//! Programmatically (tests): [`arm`] / [`disarm`] / [`reset`].
//! From the environment (whole-process smoke runs): set
//! `RUBY_FAILPOINTS` to a comma-separated list of `name=spec` entries,
//! parsed on first use:
//!
//! ```text
//! RUBY_FAILPOINTS="search.eval=panic@100,telemetry.sink.write=err,artifact.write=torn:40"
//! ```
//!
//! # Specs
//!
//! * `panic` — the site should panic (every hit once triggered).
//! * `err` — the site should fail with an injected error.
//! * `torn:N` — the site should truncate its write after `N` bytes and
//!   then fail (checkpoint/artifact writers use this to simulate a
//!   crash mid-write).
//! * Any spec may carry `@K` (e.g. `panic@100`): the action triggers on
//!   the K-th hit of that site (1-based) and every hit after it, so a
//!   run can fail mid-stream rather than at the first touch.
//!
//! The registry counts hits per site whether or not the site is armed;
//! [`hits`] exposes the count so tests can assert a site was actually
//! exercised.

/// What an armed failpoint asks its site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not armed (or the crate is compiled without `enabled`).
    Off,
    /// Panic at the site.
    Panic,
    /// Fail with an injected error.
    Err,
    /// Truncate the write after this many bytes, then fail.
    Torn(usize),
}

#[cfg(feature = "enabled")]
mod real {
    use super::Action;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Point {
        name: String,
        action: Action,
        /// 1-based hit number at which the action starts triggering.
        after: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<Vec<Point>> {
        static REGISTRY: OnceLock<Mutex<Vec<Point>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut points = Vec::new();
            if let Ok(env) = std::env::var("RUBY_FAILPOINTS") {
                for entry in env.split(',') {
                    let entry = entry.trim();
                    if entry.is_empty() {
                        continue;
                    }
                    if let Some((name, spec)) = entry.split_once('=') {
                        if let Some((action, after)) = parse_spec(spec) {
                            points.push(Point {
                                name: name.trim().to_owned(),
                                action,
                                after,
                                hits: 0,
                            });
                        } else {
                            eprintln!("ruby-failpoints: ignoring malformed spec `{entry}`");
                        }
                    } else {
                        eprintln!("ruby-failpoints: ignoring malformed entry `{entry}`");
                    }
                }
            }
            Mutex::new(points)
        })
    }

    /// Parses `panic`, `err`, `torn:N`, each optionally suffixed `@K`.
    fn parse_spec(spec: &str) -> Option<(Action, u64)> {
        let spec = spec.trim();
        let (body, after) = match spec.split_once('@') {
            Some((body, at)) => (body, at.parse::<u64>().ok()?.max(1)),
            None => (spec, 1),
        };
        let action = match body {
            "panic" => Action::Panic,
            "err" => Action::Err,
            _ => {
                let n = body.strip_prefix("torn:")?;
                Action::Torn(n.parse::<usize>().ok()?)
            }
        };
        Some((action, after))
    }

    pub fn hit(name: &str) -> Action {
        let mut points = registry().lock().unwrap_or_else(PoisonError::into_inner);
        match points.iter_mut().find(|p| p.name == name) {
            Some(point) => {
                point.hits += 1;
                if point.hits >= point.after {
                    point.action
                } else {
                    Action::Off
                }
            }
            None => {
                // Count hits on unarmed sites too, so tests can assert a
                // site was reached before arming it.
                points.push(Point {
                    name: name.to_owned(),
                    action: Action::Off,
                    after: u64::MAX,
                    hits: 1,
                });
                Action::Off
            }
        }
    }

    pub fn arm(name: &str, spec: &str) -> bool {
        let Some((action, after)) = parse_spec(spec) else {
            return false;
        };
        let mut points = registry().lock().unwrap_or_else(PoisonError::into_inner);
        match points.iter_mut().find(|p| p.name == name) {
            Some(point) => {
                point.action = action;
                point.after = point.hits + after;
            }
            None => points.push(Point {
                name: name.to_owned(),
                action,
                after,
                hits: 0,
            }),
        }
        true
    }

    pub fn disarm(name: &str) {
        let mut points = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(point) = points.iter_mut().find(|p| p.name == name) {
            point.action = Action::Off;
            point.after = u64::MAX;
        }
    }

    pub fn reset() {
        let mut points = registry().lock().unwrap_or_else(PoisonError::into_inner);
        points.clear();
    }

    pub fn hits(name: &str) -> u64 {
        let points = registry().lock().unwrap_or_else(PoisonError::into_inner);
        points.iter().find(|p| p.name == name).map_or(0, |p| p.hits)
    }
}

/// Records a hit on failpoint `name` and returns the action the site
/// should take. Always [`Action::Off`] without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn hit(name: &str) -> Action {
    real::hit(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hit(_name: &str) -> Action {
    Action::Off
}

/// Arms failpoint `name` with `spec` (`panic` | `err` | `torn:N`, each
/// optionally `@K` for the 1-based triggering hit). Returns whether the
/// spec parsed; always `false` without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn arm(name: &str, spec: &str) -> bool {
    real::arm(name, spec)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn arm(_name: &str, _spec: &str) -> bool {
    false
}

/// Disarms failpoint `name` (hit counting continues).
#[cfg(feature = "enabled")]
pub fn disarm(name: &str) {
    real::disarm(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn disarm(_name: &str) {}

/// Clears every armed point and hit counter (test isolation).
#[cfg(feature = "enabled")]
pub fn reset() {
    real::reset()
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Hits recorded on `name` so far; always 0 without `enabled`.
#[cfg(feature = "enabled")]
pub fn hits(name: &str) -> u64 {
    real::hits(name)
}

/// See the `enabled`-feature docs; this build compiles the no-op body.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hits(_name: &str) -> u64 {
    0
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Tests share one process-global registry, so each uses a unique
    // site name instead of reset() to stay order-independent.

    #[test]
    fn unarmed_sites_are_off_but_counted() {
        assert_eq!(hit("t.unarmed"), Action::Off);
        assert_eq!(hit("t.unarmed"), Action::Off);
        assert_eq!(hits("t.unarmed"), 2);
    }

    #[test]
    fn arming_triggers_at_the_requested_hit() {
        assert!(arm("t.third", "panic@3"));
        assert_eq!(hit("t.third"), Action::Off);
        assert_eq!(hit("t.third"), Action::Off);
        assert_eq!(hit("t.third"), Action::Panic);
        assert_eq!(hit("t.third"), Action::Panic);
        disarm("t.third");
        assert_eq!(hit("t.third"), Action::Off);
    }

    #[test]
    fn torn_spec_carries_its_byte_offset() {
        assert!(arm("t.torn", "torn:17"));
        assert_eq!(hit("t.torn"), Action::Torn(17));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(!arm("t.bad", "explode"));
        assert!(!arm("t.bad", "torn:xyz"));
        assert!(!arm("t.bad", "panic@"));
        assert_eq!(hit("t.bad"), Action::Off);
    }

    #[test]
    fn rearming_counts_from_the_current_hit() {
        assert!(arm("t.rearm", "err"));
        assert_eq!(hit("t.rearm"), Action::Err);
        disarm("t.rearm");
        assert_eq!(hit("t.rearm"), Action::Off);
        // `@2` now means "second hit from here", not from process start.
        assert!(arm("t.rearm", "err@2"));
        assert_eq!(hit("t.rearm"), Action::Off);
        assert_eq!(hit("t.rearm"), Action::Err);
    }
}
