//! The accelerator configurations evaluated in the paper.

use ruby_energy::TechnologyModel;

use crate::{Architecture, Capacity, Fanout, MemLevel};

/// The paper's baseline: an Eyeriss-like accelerator with a `cols × rows`
/// PE array (default 14×12), a 128 KiB shared global buffer holding
/// inputs and outputs (weights bypass it, moving directly from DRAM into
/// the PE weight scratchpads), and per-PE scratchpads of depth 12 (ifmap),
/// 224 (weights) and 16 (psum) words.
///
/// # Examples
///
/// ```
/// use ruby_arch::presets;
///
/// let arch = presets::eyeriss_like(14, 12);
/// assert_eq!(arch.total_mac_units(), 168);
/// ```
///
/// # Panics
///
/// Panics if either array extent is zero.
pub fn eyeriss_like(cols: u64, rows: u64) -> Architecture {
    let tech = TechnologyModel::default();
    let glb_words = 128 * 1024 / 2; // 128 KiB of 16-bit words.
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::unit(),
    );
    let glb = MemLevel::new(
        "GLB",
        Capacity::Shared(glb_words),
        [true, false, true], // weights bypass the GLB
        tech.sram_access_energy(tech.words_to_bytes(glb_words)),
        Fanout::grid(cols, rows),
    );
    // Separate spads; per-access energy from the largest (weight) spad.
    let pe = MemLevel::new(
        "PE",
        Capacity::PerOperand([Some(12), Some(224), Some(16)]),
        [true; 3],
        tech.sram_access_energy(tech.words_to_bytes(224)),
        Fanout::unit(),
    );
    Architecture::new(
        format!("eyeriss_like_{cols}x{rows}"),
        vec![dram, glb, pe],
        tech,
    )
}

/// A Simba-like accelerator: `num_pes` PEs hanging off a 64 KiB global
/// buffer, each PE holding a shared weight buffer (32 KiB), input buffer
/// (8 KiB) and accumulation buffer (3 KiB) feeding `vmacs` vector MACs of
/// `lanes` lanes each. The paper evaluates 15 PEs × four 4-wide vector
/// MACs (Fig. 12) and 9 PEs × three 3-wide vector MACs.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn simba_like(num_pes: u64, vmacs: u64, lanes: u64) -> Architecture {
    assert!(
        num_pes > 0 && vmacs > 0 && lanes > 0,
        "simba parameters must be positive"
    );
    let tech = TechnologyModel::default();
    let glb_words = 64 * 1024 / 2;
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::unit(),
    );
    let glb = MemLevel::new(
        "GLB",
        Capacity::Shared(glb_words),
        [true, false, true],
        tech.sram_access_energy(tech.words_to_bytes(glb_words)),
        Fanout::linear(num_pes),
    );
    let pe = MemLevel::new(
        "PE",
        Capacity::PerOperand([
            Some(8 * 1024 / 2),  // input buffer: 8 KiB
            Some(32 * 1024 / 2), // weight buffer: 32 KiB
            Some(3 * 1024 / 2),  // accumulation buffer: 3 KiB
        ]),
        [true; 3],
        tech.sram_access_energy(32 * 1024),
        Fanout::linear(vmacs * lanes),
    );
    Architecture::new(
        format!("simba_like_{num_pes}pe_{vmacs}x{lanes}"),
        vec![dram, glb, pe],
        tech,
    )
}

/// The two-level toy of Figs. 7–8 and Table I: DRAM fanning out to
/// `num_pes` linear PEs, each with a private scratchpad of
/// `scratch_bytes` (the paper uses 1 KiB).
///
/// # Panics
///
/// Panics if `num_pes` is zero or `scratch_bytes` is smaller than one
/// word.
pub fn toy_linear(num_pes: u64, scratch_bytes: u64) -> Architecture {
    assert!(num_pes > 0, "need at least one PE");
    let tech = TechnologyModel::default();
    let words = scratch_bytes / u64::from(tech.word_bits() / 8);
    assert!(words > 0, "scratchpad must hold at least one word");
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::linear(num_pes),
    );
    let spad = MemLevel::new(
        "SPAD",
        Capacity::Shared(words),
        [true; 3],
        tech.sram_access_energy(scratch_bytes),
        Fanout::unit(),
    );
    Architecture::new(format!("toy_linear_{num_pes}pe"), vec![dram, spad], tech)
}

/// The three-level toy of the paper's Figs. 4–5: DRAM, a small shared
/// global buffer, and a grid of PEs without local storage (all operands
/// bypass the PE level and stream from the GLB).
///
/// # Panics
///
/// Panics if the PE grid is empty or the buffer holds no words.
pub fn toy_glb(glb_bytes: u64, pe_cols: u64, pe_rows: u64) -> Architecture {
    let tech = TechnologyModel::default();
    let words = glb_bytes / u64::from(tech.word_bits() / 8);
    assert!(words > 0, "GLB must hold at least one word");
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::unit(),
    );
    let glb = MemLevel::new(
        "GLB",
        Capacity::Shared(words),
        [true; 3],
        tech.sram_access_energy(glb_bytes),
        Fanout::grid(pe_cols, pe_rows),
    );
    // PEs have no storage: everything streams from the GLB.
    let pe = MemLevel::new("PE", Capacity::Shared(0), [false; 3], 0.0, Fanout::unit());
    Architecture::new(
        format!("toy_glb_{pe_cols}x{pe_rows}"),
        vec![dram, glb, pe],
        tech,
    )
}

/// A four-level clustered hierarchy: DRAM → global buffer → `clusters`
/// cluster scratchpads → `pes_per_cluster` PEs each. Exercises deeper
/// hierarchies than the paper's three-level baselines; imperfect factors
/// can appear independently at both fanout boundaries.
///
/// # Panics
///
/// Panics if any count is zero.
pub fn clustered(clusters: u64, pes_per_cluster: u64) -> Architecture {
    assert!(
        clusters > 0 && pes_per_cluster > 0,
        "cluster parameters must be positive"
    );
    let tech = TechnologyModel::default();
    let glb_words = 256 * 1024 / 2;
    let cluster_words = 16 * 1024 / 2;
    let dram = MemLevel::new(
        "DRAM",
        Capacity::Unbounded,
        [true; 3],
        tech.dram_access_energy(),
        Fanout::unit(),
    );
    let glb = MemLevel::new(
        "GLB",
        Capacity::Shared(glb_words),
        [true; 3],
        tech.sram_access_energy(tech.words_to_bytes(glb_words)),
        Fanout::linear(clusters),
    );
    let cluster = MemLevel::new(
        "CLUSTER",
        Capacity::Shared(cluster_words),
        [true; 3],
        tech.sram_access_energy(tech.words_to_bytes(cluster_words)),
        Fanout::linear(pes_per_cluster),
    );
    let pe = MemLevel::new(
        "PE",
        Capacity::Shared(256),
        [true; 3],
        tech.sram_access_energy(512),
        Fanout::unit(),
    );
    Architecture::new(
        format!("clustered_{clusters}x{pes_per_cluster}"),
        vec![dram, glb, cluster, pe],
        tech,
    )
}

/// The PE-array sweep of Figs. 13–14: Eyeriss-like designs from 2×7 up to
/// 16×16.
pub fn eyeriss_sweep() -> Vec<Architecture> {
    let configs: [(u64, u64); 10] = [
        (2, 7),
        (7, 4),
        (7, 7),
        (10, 8),
        (14, 8),
        (14, 12),
        (16, 12),
        (12, 16),
        (14, 16),
        (16, 16),
    ];
    configs.iter().map(|&(c, r)| eyeriss_like(c, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_workload::Operand;

    #[test]
    fn eyeriss_baseline_matches_paper() {
        let a = eyeriss_like(14, 12);
        assert_eq!(a.num_levels(), 3);
        assert_eq!(a.total_mac_units(), 168);
        assert!(!a.level(1).stores(Operand::Weight), "weights bypass GLB");
        assert_eq!(a.level(1).capacity_for(Operand::Input), Some(65536));
        assert_eq!(a.level(2).capacity_for(Operand::Weight), Some(224));
        assert_eq!(a.level(2).capacity_for(Operand::Input), Some(12));
        assert_eq!(a.level(2).capacity_for(Operand::Output), Some(16));
    }

    #[test]
    fn simba_lane_structure() {
        let a = simba_like(15, 4, 4);
        assert_eq!(a.total_mac_units(), 15 * 16);
        assert_eq!(a.instances(2), 15);
        assert_eq!(a.level(2).fanout().total(), 16);
    }

    #[test]
    fn toy_linear_capacity() {
        let a = toy_linear(9, 1024);
        assert_eq!(a.total_mac_units(), 9);
        assert_eq!(a.level(1).capacity_for(Operand::Input), Some(512));
    }

    #[test]
    fn toy_glb_pe_has_no_storage() {
        let a = toy_glb(1024, 3, 2);
        assert_eq!(a.total_mac_units(), 6);
        for op in Operand::ALL {
            assert!(!a.level(2).stores(op));
        }
        assert_eq!(a.storing_level_at_or_above(Operand::Input, 2), 1);
    }

    #[test]
    fn clustered_hierarchy_geometry() {
        let a = clustered(4, 8);
        assert_eq!(a.num_levels(), 4);
        assert_eq!(a.total_mac_units(), 32);
        assert_eq!(a.instances(2), 4); // clusters
        assert_eq!(a.instances(3), 32); // PEs
        assert_eq!(a.storage_chain(Operand::Input), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sweep_is_ordered_and_distinct() {
        let sweep = eyeriss_sweep();
        assert_eq!(sweep.len(), 10);
        let mut areas: Vec<f64> = sweep.iter().map(|a| a.area_mm2()).collect();
        let sorted = {
            let mut v = areas.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(areas, sorted);
        assert!(sweep[0].total_mac_units() < sweep[9].total_mac_units());
    }
}
