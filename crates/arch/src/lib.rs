//! Architecture model for the Ruby mapper reproduction.
//!
//! An [`Architecture`] is a hierarchy of storage [`MemLevel`]s listed from
//! *outermost* (DRAM) to *innermost* (per-PE scratchpads), where each level
//! carries:
//!
//! * a [`Capacity`] (unbounded, shared, or per-operand — Eyeriss PEs have
//!   separate ifmap/weight/psum scratchpads of different depths);
//! * a *bypass mask*: which operands the level stores. Operands that skip
//!   a level stream directly between the surrounding storing levels (e.g.
//!   Eyeriss weights bypass the global buffer);
//! * a per-word access energy (from [`ruby_energy::TechnologyModel`]);
//! * a spatial [`Fanout`] *below* the level — the parallel distribution
//!   from this level to instances of the next-inner level (or to MAC lanes
//!   if the level is innermost).
//!
//! [`presets`] builds the architectures evaluated in the paper: the
//! Eyeriss-like baseline (14×12 PE array, 128 KiB GLB), the Simba-like
//! design (vector-MAC PEs), and the two-level linear toys of Figs. 7–8 and
//! Table I.

pub mod presets;

use std::fmt;

use ruby_energy::TechnologyModel;
use ruby_workload::Operand;

/// Spatial fanout below a memory level: the grid of child instances one
/// parent instance feeds. A plain linear array is `x × 1`.
///
/// # Examples
///
/// ```
/// use ruby_arch::Fanout;
///
/// let array = Fanout::grid(14, 12);
/// assert_eq!(array.total(), 168);
/// assert!(!array.is_unit());
/// assert!(Fanout::unit().is_unit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fanout {
    x: u64,
    y: u64,
}

impl Fanout {
    /// No fanout: one child per parent.
    pub const fn unit() -> Self {
        Fanout { x: 1, y: 1 }
    }

    /// A linear array of `n` children.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn linear(n: u64) -> Self {
        Fanout::grid(n, 1)
    }

    /// A 2-D grid of `x × y` children.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn grid(x: u64, y: u64) -> Self {
        assert!(x > 0 && y > 0, "fanout extents must be positive");
        Fanout { x, y }
    }

    /// Children along the X axis.
    pub fn x(&self) -> u64 {
        self.x
    }

    /// Children along the Y axis.
    pub fn y(&self) -> u64 {
        self.y
    }

    /// Total children (`x · y`).
    pub fn total(&self) -> u64 {
        self.x * self.y
    }

    /// Whether the fanout is trivial (one child).
    pub fn is_unit(&self) -> bool {
        self.total() == 1
    }
}

impl Default for Fanout {
    fn default() -> Self {
        Fanout::unit()
    }
}

impl fmt::Display for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

/// Storage capacity of a memory level, in data words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capacity {
    /// No limit (DRAM).
    Unbounded,
    /// One buffer shared by all stored operands.
    Shared(u64),
    /// Separate per-operand buffers indexed by [`Operand::index`]; `None`
    /// entries mean the operand is not stored here (implied bypass).
    PerOperand([Option<u64>; 3]),
}

impl Capacity {
    /// Total words across operands, if bounded.
    pub fn total_words(&self) -> Option<u64> {
        match self {
            Capacity::Unbounded => None,
            Capacity::Shared(w) => Some(*w),
            Capacity::PerOperand(per) => Some(per.iter().flatten().sum()),
        }
    }
}

/// One storage level of the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemLevel {
    name: String,
    capacity: Capacity,
    stores: [bool; 3],
    access_energy: f64,
    fanout: Fanout,
    bandwidth_words_per_cycle: Option<f64>,
    noc_hop_energy: Option<f64>,
}

impl MemLevel {
    /// Creates a level that stores the given operands.
    ///
    /// # Panics
    ///
    /// Panics if `access_energy` is negative, if no operand is stored
    /// while the capacity is bounded and nonzero, or if a per-operand
    /// capacity contradicts the `stores` mask.
    pub fn new(
        name: impl Into<String>,
        capacity: Capacity,
        stores: [bool; 3],
        access_energy: f64,
        fanout: Fanout,
    ) -> Self {
        assert!(access_energy >= 0.0, "access energy must be non-negative");
        if let Capacity::PerOperand(per) = &capacity {
            for op in Operand::ALL {
                assert_eq!(
                    per[op.index()].is_some(),
                    stores[op.index()],
                    "per-operand capacity for {op} contradicts the stores mask"
                );
            }
        }
        MemLevel {
            name: name.into(),
            capacity,
            stores,
            access_energy,
            fanout,
            bandwidth_words_per_cycle: None,
            noc_hop_energy: None,
        }
    }

    /// The level name ("DRAM", "GLB", "PE").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Capacity available to `operand`: `None` if unbounded, `Some(words)`
    /// for the operand's own buffer (per-operand) or the shared buffer.
    /// Returns `Some(0)` if the operand is not stored here.
    pub fn capacity_for(&self, operand: Operand) -> Option<u64> {
        if !self.stores(operand) {
            return Some(0);
        }
        match self.capacity {
            Capacity::Unbounded => None,
            Capacity::Shared(w) => Some(w),
            Capacity::PerOperand(per) => Some(per[operand.index()].unwrap_or(0)),
        }
    }

    /// Whether this level stores `operand` (false = bypass).
    #[inline]
    pub fn stores(&self, operand: Operand) -> bool {
        self.stores[operand.index()]
    }

    /// Per-word access energy.
    pub fn access_energy(&self) -> f64 {
        self.access_energy
    }

    /// Spatial fanout below this level.
    pub fn fanout(&self) -> Fanout {
        self.fanout
    }

    /// Optional per-instance bandwidth cap in words per cycle.
    pub fn bandwidth_words_per_cycle(&self) -> Option<f64> {
        self.bandwidth_words_per_cycle
    }

    /// Returns a copy with a bandwidth cap.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle` is not positive.
    pub fn with_bandwidth(mut self, words_per_cycle: f64) -> Self {
        assert!(words_per_cycle > 0.0, "bandwidth must be positive");
        self.bandwidth_words_per_cycle = Some(words_per_cycle);
        self
    }

    /// Per-word energy of the distribution network below this level
    /// (delivery to children and partial-sum return). `None` (default)
    /// folds network cost into access energies.
    pub fn noc_hop_energy(&self) -> Option<f64> {
        self.noc_hop_energy
    }

    /// Returns a copy that charges `energy` per word crossing the fanout
    /// below this level (e.g. the Eyeriss inter-PE network at ≈2× a MAC).
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn with_noc_energy(mut self, energy: f64) -> Self {
        assert!(energy >= 0.0, "NoC energy must be non-negative");
        self.noc_hop_energy = Some(energy);
        self
    }

    /// Returns a copy storing exactly the operands in `stores` (the
    /// bypass mask). Per-operand capacities are kept for operands that
    /// remain stored; newly stored operands under a per-operand capacity
    /// receive `fallback_words` each.
    ///
    /// # Panics
    ///
    /// Panics if `fallback_words` is zero while a newly stored operand
    /// needs it.
    pub fn with_stores(mut self, stores: [bool; 3], fallback_words: u64) -> Self {
        if let Capacity::PerOperand(per) = &mut self.capacity {
            for op in Operand::ALL {
                let i = op.index();
                per[i] = if stores[i] {
                    Some(per[i].unwrap_or_else(|| {
                        assert!(
                            fallback_words > 0,
                            "newly stored {op} needs a positive fallback capacity"
                        );
                        fallback_words
                    }))
                } else {
                    None
                };
            }
        }
        self.stores = stores;
        self
    }
}

/// Enumerates bypass variants of `arch` at storage level `level`: one
/// architecture per subset of operands the level could store (including
/// storing nothing — a pure passthrough). This is the ZigZag-style
/// joint storage/mapping exploration axis; the paper cites bypassing as
/// one of the optimizations SoTA mapspaces cover.
///
/// Newly stored operands under per-operand capacities get an equal share
/// of the level's current total words.
///
/// # Panics
///
/// Panics if `level` is 0 (the outermost level must store everything) or
/// out of range.
pub fn bypass_variants(arch: &Architecture, level: usize) -> Vec<Architecture> {
    assert!(level > 0, "the outermost level must store all operands");
    assert!(level < arch.num_levels(), "level {level} out of range");
    let base = arch.level(level);
    let fallback = base.capacity().total_words().unwrap_or(0).max(3) / 3;
    let mut out = Vec::with_capacity(8);
    for mask_bits in 0u8..8 {
        let stores = [mask_bits & 1 != 0, mask_bits & 2 != 0, mask_bits & 4 != 0];
        let mut levels = arch.levels().to_vec();
        levels[level] = base.clone().with_stores(stores, fallback);
        out.push(Architecture::new(
            format!(
                "{}_byp{}{}{}",
                arch.name(),
                u8::from(stores[0]),
                u8::from(stores[1]),
                u8::from(stores[2])
            ),
            levels,
            arch.technology().clone(),
        ));
    }
    out
}

/// A complete accelerator description: the level hierarchy plus MAC
/// energy and the technology model used for area estimates.
///
/// Levels are ordered outermost-first; index 0 must be the (unbounded)
/// DRAM level storing all operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    name: String,
    levels: Vec<MemLevel>,
    mac_energy: f64,
    tech: TechnologyModel,
}

serde::impl_serde_struct!(Fanout { x, y });
serde::impl_serde_struct!(MemLevel {
    name,
    capacity,
    stores,
    access_energy,
    fanout,
    bandwidth_words_per_cycle,
    noc_hop_energy,
});
serde::impl_serde_struct!(Architecture {
    name,
    levels,
    mac_energy,
    tech
});

impl serde::Serialize for Capacity {
    fn to_value(&self) -> serde::Value {
        match self {
            Capacity::Unbounded => serde::Value::Str("Unbounded".to_owned()),
            Capacity::Shared(words) => serde::Value::Obj(vec![(
                "Shared".to_owned(),
                serde::Serialize::to_value(words),
            )]),
            Capacity::PerOperand(per) => serde::Value::Obj(vec![(
                "PerOperand".to_owned(),
                serde::Serialize::to_value(per),
            )]),
        }
    }
}

impl serde::Deserialize for Capacity {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok("Unbounded") = value.as_str() {
            return Ok(Capacity::Unbounded);
        }
        if let Some(words) = value.get("Shared") {
            return Ok(Capacity::Shared(serde::Deserialize::from_value(words)?));
        }
        if let Some(per) = value.get("PerOperand") {
            return Ok(Capacity::PerOperand(serde::Deserialize::from_value(per)?));
        }
        Err(serde::Error::custom("expected a Capacity variant"))
    }
}

impl Architecture {
    /// Builds and validates an architecture.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two levels, if the outermost level
    /// is bounded or bypasses an operand, or if some operand is stored
    /// nowhere.
    pub fn new(name: impl Into<String>, levels: Vec<MemLevel>, tech: TechnologyModel) -> Self {
        assert!(
            levels.len() >= 2,
            "need at least DRAM plus one on-chip level"
        );
        let outer = &levels[0];
        assert!(
            matches!(outer.capacity(), Capacity::Unbounded),
            "the outermost level must be unbounded (DRAM)"
        );
        for op in Operand::ALL {
            assert!(outer.stores(op), "the outermost level must store {op}");
        }
        let mac_energy = tech.mac_energy();
        Architecture {
            name: name.into(),
            levels,
            mac_energy,
            tech,
        }
    }

    /// The architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The levels, outermost first.
    pub fn levels(&self) -> &[MemLevel] {
        &self.levels
    }

    /// Number of storage levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// A single level by index (0 = outermost).
    pub fn level(&self, index: usize) -> &MemLevel {
        &self.levels[index]
    }

    /// Energy per MAC operation.
    pub fn mac_energy(&self) -> f64 {
        self.mac_energy
    }

    /// The technology model used for energy/area derivation.
    pub fn technology(&self) -> &TechnologyModel {
        &self.tech
    }

    /// Total MAC units: the product of all fanouts. This is the
    /// denominator of compute utilization.
    pub fn total_mac_units(&self) -> u64 {
        self.levels.iter().map(|l| l.fanout().total()).product()
    }

    /// Number of instances of level `index` (product of fanouts above it).
    pub fn instances(&self, index: usize) -> u64 {
        self.levels[..index]
            .iter()
            .map(|l| l.fanout().total())
            .product()
    }

    /// The index of the nearest level at or outside `from` (inclusive)
    /// that stores `operand`. Falls back to 0 (DRAM), which always stores
    /// everything.
    pub fn storing_level_at_or_above(&self, operand: Operand, from: usize) -> usize {
        // lint: allow(panics) — level 0 (DRAM) stores every operand in
        // all architectures, so the search cannot come up empty.
        (0..=from)
            .rev()
            .find(|&i| self.levels[i].stores(operand))
            .expect("DRAM stores all operands")
    }

    /// Indices of the levels storing `operand`, outermost first.
    pub fn storage_chain(&self, operand: Operand) -> Vec<usize> {
        (0..self.levels.len())
            .filter(|&i| self.levels[i].stores(operand))
            .collect()
    }

    /// Estimated silicon area in mm²: MAC datapaths, every on-chip SRAM
    /// instance, and a fixed overhead. DRAM (level 0) is off-chip and
    /// excluded. Used for the Pareto studies of Figs. 13–14.
    pub fn area_mm2(&self) -> f64 {
        let mut area =
            self.tech.fixed_area_mm2() + self.total_mac_units() as f64 * self.tech.pe_area_mm2();
        for (i, level) in self.levels.iter().enumerate().skip(1) {
            if let Some(words) = level.capacity().total_words() {
                if words > 0 {
                    let bytes = self.tech.words_to_bytes(words);
                    area += self.instances(i) as f64 * self.tech.sram_area_mm2(bytes);
                }
            }
        }
        area
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} MACs):", self.name, self.total_mac_units())?;
        for (i, l) in self.levels.iter().enumerate() {
            let cap = match l.capacity() {
                Capacity::Unbounded => "inf".to_string(),
                Capacity::Shared(w) => format!("{w}w shared"),
                Capacity::PerOperand(per) => {
                    let parts: Vec<String> = Operand::ALL
                        .iter()
                        .filter_map(|op| per[op.index()].map(|w| format!("{op}:{w}w")))
                        .collect();
                    parts.join("/")
                }
            };
            let stored: String = Operand::ALL
                .iter()
                .filter(|op| l.stores(**op))
                .map(|op| op.short_name())
                .collect::<Vec<_>>()
                .join(",");
            writeln!(
                f,
                "  [{i}] {:<8} cap={cap:<24} stores={stored:<12} fanout={} E={:.2}",
                l.name(),
                l.fanout(),
                l.access_energy()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Architecture {
        let tech = TechnologyModel::default();
        let dram = MemLevel::new(
            "DRAM",
            Capacity::Unbounded,
            [true; 3],
            tech.dram_access_energy(),
            Fanout::linear(4),
        );
        let spad = MemLevel::new(
            "SPAD",
            Capacity::Shared(512),
            [true; 3],
            tech.sram_access_energy(1024),
            Fanout::unit(),
        );
        Architecture::new("tiny", vec![dram, spad], tech)
    }

    #[test]
    fn fanout_basics() {
        assert_eq!(Fanout::grid(14, 12).total(), 168);
        assert_eq!(Fanout::linear(9).y(), 1);
        assert_eq!(Fanout::default(), Fanout::unit());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fanout_rejected() {
        let _ = Fanout::grid(0, 3);
    }

    #[test]
    fn tiny_arch_counts() {
        let a = tiny();
        assert_eq!(a.num_levels(), 2);
        assert_eq!(a.total_mac_units(), 4);
        assert_eq!(a.instances(0), 1);
        assert_eq!(a.instances(1), 4);
    }

    #[test]
    fn storage_chain_with_bypass() {
        let tech = TechnologyModel::default();
        let dram = MemLevel::new(
            "DRAM",
            Capacity::Unbounded,
            [true; 3],
            tech.dram_access_energy(),
            Fanout::unit(),
        );
        // GLB stores inputs and outputs only (weights bypass).
        let glb = MemLevel::new(
            "GLB",
            Capacity::Shared(65536),
            [true, false, true],
            tech.sram_access_energy(128 * 1024),
            Fanout::grid(14, 12),
        );
        let pe = MemLevel::new(
            "PE",
            Capacity::PerOperand([Some(12), Some(224), Some(16)]),
            [true; 3],
            tech.sram_access_energy(448),
            Fanout::unit(),
        );
        let a = Architecture::new("eyerissish", vec![dram, glb, pe], tech);
        assert_eq!(a.storage_chain(Operand::Weight), vec![0, 2]);
        assert_eq!(a.storage_chain(Operand::Input), vec![0, 1, 2]);
        assert_eq!(a.storing_level_at_or_above(Operand::Weight, 1), 0);
        assert_eq!(a.storing_level_at_or_above(Operand::Input, 1), 1);
    }

    #[test]
    fn capacity_for_respects_bypass_and_kind() {
        let a = tiny();
        assert_eq!(a.level(0).capacity_for(Operand::Input), None);
        assert_eq!(a.level(1).capacity_for(Operand::Input), Some(512));
        let per = MemLevel::new(
            "PE",
            Capacity::PerOperand([Some(12), Some(224), Some(16)]),
            [true; 3],
            1.0,
            Fanout::unit(),
        );
        assert_eq!(per.capacity_for(Operand::Weight), Some(224));
        assert_eq!(per.capacity_for(Operand::Output), Some(16));
    }

    #[test]
    #[should_panic(expected = "contradicts")]
    fn per_operand_capacity_must_match_stores() {
        let _ = MemLevel::new(
            "bad",
            Capacity::PerOperand([Some(12), None, Some(16)]),
            [true; 3],
            1.0,
            Fanout::unit(),
        );
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn bounded_dram_rejected() {
        let tech = TechnologyModel::default();
        let bad = MemLevel::new("DRAM", Capacity::Shared(10), [true; 3], 1.0, Fanout::unit());
        let spad = MemLevel::new("S", Capacity::Shared(10), [true; 3], 1.0, Fanout::unit());
        let _ = Architecture::new("bad", vec![bad, spad], tech);
    }

    #[test]
    fn area_grows_with_fanout() {
        let tech = TechnologyModel::default();
        let mk = |n: u64| {
            let dram = MemLevel::new(
                "DRAM",
                Capacity::Unbounded,
                [true; 3],
                tech.dram_access_energy(),
                Fanout::linear(n),
            );
            let spad = MemLevel::new("S", Capacity::Shared(512), [true; 3], 1.0, Fanout::unit());
            Architecture::new("a", vec![dram, spad], tech.clone())
        };
        assert!(mk(16).area_mm2() > mk(4).area_mm2());
    }

    #[test]
    fn with_stores_adjusts_per_operand_capacity() {
        let pe = MemLevel::new(
            "PE",
            Capacity::PerOperand([Some(12), Some(224), Some(16)]),
            [true; 3],
            1.0,
            Fanout::unit(),
        );
        let weights_only = pe.clone().with_stores([false, true, false], 10);
        assert!(!weights_only.stores(Operand::Input));
        assert!(weights_only.stores(Operand::Weight));
        assert_eq!(weights_only.capacity_for(Operand::Weight), Some(224));
        assert_eq!(weights_only.capacity_for(Operand::Input), Some(0));
        // Re-enable input storage: it gets the fallback capacity.
        let back = weights_only.with_stores([true, true, false], 10);
        assert_eq!(back.capacity_for(Operand::Input), Some(10));
    }

    #[test]
    fn bypass_variants_cover_all_masks() {
        let a = tiny();
        let variants = bypass_variants(&a, 1);
        assert_eq!(variants.len(), 8);
        // One variant stores nothing at the spad; one stores everything.
        assert!(variants
            .iter()
            .any(|v| Operand::ALL.iter().all(|op| !v.level(1).stores(*op))));
        assert!(variants
            .iter()
            .any(|v| Operand::ALL.iter().all(|op| v.level(1).stores(*op))));
        // All keep DRAM storing everything.
        for v in &variants {
            for op in Operand::ALL {
                assert!(v.level(0).stores(op));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outermost level")]
    fn bypass_variants_reject_dram() {
        let _ = bypass_variants(&tiny(), 0);
    }

    #[test]
    fn display_lists_all_levels() {
        let s = tiny().to_string();
        assert!(s.contains("DRAM"));
        assert!(s.contains("SPAD"));
        assert!(s.contains("fanout=4x1"));
    }
}
