//! Property tests over architecture presets and the bypass machinery.

use proptest::prelude::*;

use ruby_arch::{bypass_variants, presets, Capacity};
use ruby_workload::Operand;

proptest! {
    /// Eyeriss-like presets are valid and scale as expected over the
    /// whole Fig. 13 sweep range.
    #[test]
    fn eyeriss_preset_scales(cols in 1u64..20, rows in 1u64..20) {
        let a = presets::eyeriss_like(cols, rows);
        prop_assert_eq!(a.total_mac_units(), cols * rows);
        prop_assert_eq!(a.instances(2), cols * rows);
        prop_assert!(a.area_mm2() > 0.0);
        // Weights bypass the GLB in every configuration.
        prop_assert!(!a.level(1).stores(Operand::Weight));
        prop_assert_eq!(a.storage_chain(Operand::Weight), vec![0, 2]);
    }

    /// Simba-like presets: lanes multiply below the PE level.
    #[test]
    fn simba_preset_scales(pes in 1u64..20, vmacs in 1u64..6, lanes in 1u64..6) {
        let a = presets::simba_like(pes, vmacs, lanes);
        prop_assert_eq!(a.total_mac_units(), pes * vmacs * lanes);
        prop_assert_eq!(a.instances(2), pes);
        prop_assert_eq!(a.level(2).fanout().total(), vmacs * lanes);
    }

    /// Area is monotone in PE count for a fixed hierarchy.
    #[test]
    fn area_monotone_in_pes(a in 1u64..15, b in 1u64..15) {
        let (lo, hi) = (a.min(b), a.max(b));
        let small = presets::eyeriss_like(lo, 8);
        let big = presets::eyeriss_like(hi, 8);
        prop_assert!(big.area_mm2() >= small.area_mm2());
    }

    /// Bypass variants preserve validity invariants: DRAM stores all,
    /// per-operand capacities are coherent with the stores mask, total
    /// words never grow.
    #[test]
    fn bypass_variants_are_coherent(cols in 1u64..16, rows in 1u64..16, level in 1usize..3) {
        let base = presets::eyeriss_like(cols, rows);
        for v in bypass_variants(&base, level) {
            for op in Operand::ALL {
                prop_assert!(v.level(0).stores(op));
                if let Capacity::PerOperand(per) = v.level(level).capacity() {
                    prop_assert_eq!(
                        per[op.index()].is_some(),
                        v.level(level).stores(op)
                    );
                }
            }
            prop_assert_eq!(v.total_mac_units(), base.total_mac_units());
        }
    }
}

#[test]
fn toy_presets_match_paper_text() {
    // "two-level memory hierarchy toy architecture with each linear-PE
    // allocated a 1 KiB scratchpad buffer"
    let toy = presets::toy_linear(9, 1024);
    assert_eq!(toy.num_levels(), 2);
    assert_eq!(toy.level(0).fanout().total(), 9);
    assert_eq!(toy.level(1).capacity_for(Operand::Input), Some(512));
    // Fig. 4/5's toy: 1 KiB GLB over a 3×2 grid of storage-less PEs.
    let glb = presets::toy_glb(1024, 3, 2);
    assert_eq!(glb.total_mac_units(), 6);
    for op in Operand::ALL {
        assert!(!glb.level(2).stores(op));
    }
}
