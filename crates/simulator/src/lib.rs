//! Functional loop-nest simulator for the Ruby reproduction.
//!
//! [`simulate`] *executes* a mapping: it walks the full loop nest —
//! including the residual iterations of imperfect factors — and counts
//! what actually happens:
//!
//! * **MACs** — one per leaf iteration (must equal the problem size);
//! * **cycles** — temporal loops run sequentially, spatial loops in
//!   lockstep (a spatial group costs the *longest* child);
//! * **fills / drains** — per level, per tensor, per spatial instance:
//!   whenever the data region a buffer must hold changes, the new region
//!   is filled (and, for outputs, the old one drained);
//! * **peak footprints** — the largest region each buffer actually held.
//!
//! The analytical model in `ruby-model` makes closed-form approximations
//! (nominal loop counts for refetch multipliers, idealized reuse rules);
//! this simulator is the executable reference those approximations are
//! validated against. It is exact but walks every MAC, so it is limited
//! to small problems ([`SimLimits::max_macs`], default 2²²).
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapping::{Mapping, SlotKind};
//! use ruby_simulator::{simulate, SimLimits};
//! use ruby_workload::{Dim, ProblemShape};
//!
//! let arch = presets::toy_linear(6, 1024);
//! let shape = ProblemShape::rank1("d", 100);
//! let mut b = Mapping::builder(2);
//! b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
//! let mapping = b.build_for_bounds(shape.bounds()).unwrap();
//! let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
//! assert_eq!(sim.macs, 100);
//! assert_eq!(sim.cycles, 17); // the paper's Fig. 5 walkthrough
//! ```

use std::collections::HashMap;

use ruby_arch::Architecture;
use ruby_mapping::{Mapping, SlotId, SlotKind};
use ruby_workload::{Dim, DimMap, Operand, ProblemShape, Rank, TensorDef};

/// Resource limits for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimLimits {
    /// Refuse problems with more MACs than this (the walk is O(MACs)).
    pub max_macs: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits { max_macs: 1 << 22 }
    }
}

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The problem exceeds [`SimLimits::max_macs`].
    TooLarge {
        /// MACs the problem requires.
        macs: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooLarge { macs, limit } => {
                write!(f, "problem has {macs} MACs, simulator limit is {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What actually happened when the mapping executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationReport {
    /// Leaf iterations executed (must equal the problem's MAC count).
    pub macs: u64,
    /// Lockstep cycle count.
    pub cycles: u64,
    /// Words filled into each level (outermost first) per operand,
    /// summed across spatial instances. The outermost level (DRAM) is
    /// the source and reports 0.
    pub fills: Vec<[u64; 3]>,
    /// Words drained (written back) out of each level per operand —
    /// nonzero only for outputs.
    pub drains: Vec<[u64; 3]>,
    /// Peak words resident per level per operand, over any single
    /// spatial instance.
    pub peak_footprint: Vec<[u64; 3]>,
}

/// A half-open interval over one tensor rank.
type Region = Vec<(u64, u64)>; // (base, extent) per rank

/// One loop of the flattened nest, outermost first.
#[derive(Debug, Clone, Copy)]
struct LoopItem {
    dim: Dim,
    /// Child granularity (inner tile size along `dim`).
    granularity: u64,
    spatial: bool,
    /// The slot this loop came from (for instance bookkeeping).
    slot: SlotId,
}

/// Runs the mapping and returns the execution counts.
///
/// # Errors
///
/// Returns [`SimError::TooLarge`] when the problem exceeds the limits.
///
/// # Panics
///
/// Panics if the mapping was built for a different hierarchy depth than
/// `arch`.
pub fn simulate(
    arch: &Architecture,
    shape: &ProblemShape,
    mapping: &Mapping,
    limits: &SimLimits,
) -> Result<SimulationReport, SimError> {
    assert_eq!(
        arch.num_levels(),
        mapping.layout().num_levels(),
        "mapping was built for a different hierarchy depth"
    );
    if shape.macs() > limits.max_macs {
        return Err(SimError::TooLarge {
            macs: shape.macs(),
            limit: limits.max_macs,
        });
    }
    let mut sim = Simulator::new(arch, shape, mapping);
    let regions = DimMap::from_fn(|d| (0u64, shape.bound(d)));
    let stats = sim.walk(0, regions);
    sim.flush_outputs();
    Ok(SimulationReport {
        macs: stats.macs,
        cycles: stats.cycles,
        fills: sim.fills,
        drains: sim.drains,
        peak_footprint: sim.peak,
    })
}

#[derive(Debug, Clone, Copy, Default)]
struct WalkStats {
    macs: u64,
    cycles: u64,
}

struct Simulator {
    items: Vec<LoopItem>,
    /// For each item index: the levels whose tile scope begins there.
    markers: Vec<Vec<usize>>,
    /// Tensors stored per level (operand defs resolved once).
    stored: Vec<Vec<TensorDef>>,
    /// Live spatial indices per item index (0 for temporal items).
    spatial_index: Vec<u64>,
    /// Last region held per (level, operand, instance-coordinates).
    resident: HashMap<(usize, usize, Vec<u64>), Region>,
    fills: Vec<[u64; 3]>,
    drains: Vec<[u64; 3]>,
    peak: Vec<[u64; 3]>,
}

impl Simulator {
    fn new(arch: &Architecture, shape: &ProblemShape, mapping: &Mapping) -> Self {
        let layout = *mapping.layout();
        let num_levels = layout.num_levels();
        // Flatten the nest, outermost slot first. Within a temporal block
        // the permutation runs innermost-first, so reverse it; spatial
        // slots have no meaningful order.
        let mut items = Vec::new();
        for raw in (0..layout.num_slots()).rev() {
            let slot = SlotId::new(raw);

            let level = layout.level_of(slot);
            let kind = layout.kind_of(slot);
            let dims: Vec<Dim> = if kind == SlotKind::Temporal {
                mapping.permutation(level).iter().rev().copied().collect()
            } else {
                Dim::ALL.to_vec()
            };
            for d in dims {
                let chain = mapping.tile_chain(d);
                if chain[raw] == chain[raw + 1] {
                    continue; // always a single iteration
                }
                items.push(LoopItem {
                    dim: d,
                    granularity: chain[raw],
                    spatial: kind.is_spatial(),
                    slot,
                });
            }
        }
        // Marker position for level l: after all items of slots ≥ b(l),
        // i.e. at the item index where slot b(l) − 1 begins.
        let mut markers = vec![Vec::new(); items.len() + 1];
        for level in 0..num_levels {
            let b = layout.storage_boundary(level);
            let pos = if b >= layout.num_slots() {
                0
            } else {
                // Items of slots ≥ b all precede this position.
                items
                    .iter()
                    .position(|it| it.slot.index() < b)
                    .unwrap_or(items.len())
            };
            markers[pos].push(level);
        }
        let stored: Vec<Vec<TensorDef>> = arch
            .levels()
            .iter()
            .map(|lvl| {
                Operand::ALL
                    .iter()
                    .filter(|op| lvl.stores(**op))
                    .map(|op| shape.tensor(*op))
                    .collect()
            })
            .collect();
        let spatial_index = vec![0u64; items.len()];
        Simulator {
            items,
            markers,
            stored,
            spatial_index,
            resident: HashMap::new(),
            fills: vec![[0; 3]; num_levels],
            drains: vec![[0; 3]; num_levels],
            peak: vec![[0; 3]; num_levels],
        }
    }

    /// The data region of `tensor` for the current iteration-space
    /// regions.
    fn project(&self, tensor: &TensorDef, regions: &DimMap<(u64, u64)>) -> Region {
        tensor
            .ranks()
            .iter()
            .map(|rank| match *rank {
                Rank::Simple(d) => regions[d],
                Rank::Strided {
                    pos,
                    win,
                    stride,
                    dilation,
                } => {
                    let (pb, pe) = regions[pos];
                    let (wb, we) = regions[win];
                    (
                        pb * stride + wb * dilation,
                        (pe - 1) * stride + (we - 1) * dilation + 1,
                    )
                }
            })
            .collect()
    }

    /// Handles the tile-scope entries at item position `idx`.
    fn enter_markers(&mut self, idx: usize, regions: &DimMap<(u64, u64)>) {
        for li in 0..self.markers[idx].len() {
            let level = self.markers[idx][li];
            if level == 0 {
                continue; // DRAM is the source; no fills.
            }
            for ti in 0..self.stored[level].len() {
                let tensor = self.stored[level][ti].clone();
                let op = tensor.operand();
                let region = self.project(&tensor, regions);
                let key = (level, op.index(), self.instance_key(level));
                let footprint: u64 = region.iter().map(|&(_, e)| e).product();
                let changed = self.resident.get(&key) != Some(&region);
                if changed {
                    if op.is_written() {
                        if let Some(old) = self.resident.get(&key) {
                            let old_fp: u64 = old.iter().map(|&(_, e)| e).product();
                            self.drains[level][op.index()] += old_fp;
                        }
                    }
                    self.fills[level][op.index()] += footprint;
                    self.resident.insert(key, region);
                }
                let peak = &mut self.peak[level][op.index()];
                *peak = (*peak).max(footprint);
            }
        }
    }

    /// Drains every still-resident output tile at the end of execution.
    fn flush_outputs(&mut self) {
        let drained: Vec<(usize, usize, u64)> = self
            .resident
            .iter()
            .filter(|((_, op, _), _)| *op == Operand::Output.index())
            .map(|((level, op, _), region)| (*level, *op, region.iter().map(|&(_, e)| e).product()))
            .collect();
        for (level, op, fp) in drained {
            self.drains[level][op] += fp;
        }
    }

    /// Spatial coordinates identifying the current instance of `level`:
    /// the indices of spatial loops at slots outside the level's
    /// boundary.
    fn instance_key(&self, level: usize) -> Vec<u64> {
        let b = 3 * (self.stored.len() - level);
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.spatial && it.slot.index() >= b)
            .map(|(i, _)| self.spatial_index[i])
            .collect()
    }

    fn walk(&mut self, idx: usize, regions: DimMap<(u64, u64)>) -> WalkStats {
        self.enter_markers(idx, &regions);
        if idx == self.items.len() {
            debug_assert!(regions.iter().all(|(_, &(_, e))| e == 1));
            return WalkStats { macs: 1, cycles: 1 };
        }
        let item = self.items[idx];
        let (base, extent) = regions[item.dim];
        let g = item.granularity;
        let mut stats = WalkStats::default();
        let iterations = extent.div_ceil(g);
        for i in 0..iterations {
            let child_base = base + i * g;
            let child_extent = g.min(base + extent - child_base);
            let mut child_regions = regions;
            child_regions[item.dim] = (child_base, child_extent);
            if item.spatial {
                self.spatial_index[idx] = i;
            }
            let child = self.walk(idx + 1, child_regions);
            stats.macs += child.macs;
            if item.spatial {
                stats.cycles = stats.cycles.max(child.cycles);
            } else {
                stats.cycles += child.cycles;
            }
        }
        if item.spatial {
            self.spatial_index[idx] = 0;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;

    fn rank1(d: u64) -> ProblemShape {
        ProblemShape::rank1("d", d)
    }

    #[test]
    fn serial_mapping_counts() {
        let arch = presets::toy_linear(4, 1024);
        let shape = rank1(10);
        let m = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let sim = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap();
        assert_eq!(sim.macs, 10);
        assert_eq!(sim.cycles, 10);
        // Each weight element enters a spad once: 10 unit fills.
        assert_eq!(sim.fills[1][Operand::Weight.index()], 10);
        // Input is a single element, reused in the spad.
        assert_eq!(sim.fills[1][Operand::Input.index()], 1);
        // Each output element is drained once.
        assert_eq!(sim.drains[1][Operand::Output.index()], 10);
    }

    #[test]
    fn fig5_imperfect_spatial_cycles() {
        let arch = presets::toy_linear(6, 1024);
        let shape = rank1(100);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let sim = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap();
        assert_eq!(sim.macs, 100);
        assert_eq!(sim.cycles, 17);
        assert_eq!(sim.fills[1][Operand::Weight.index()], 100);
    }

    #[test]
    fn nested_imperfect_temporal_runs_exact_residuals() {
        let arch = presets::toy_linear(1, 1024);
        let shape = rank1(100);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 7);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let sim = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap();
        // 14 full tiles of 7 plus a residual of 2: exactly 100 steps.
        assert_eq!(sim.cycles, 100);
        // The residual spad tile holds 2 words, the full ones 7.
        assert_eq!(sim.peak_footprint[1][Operand::Weight.index()], 7);
    }

    #[test]
    fn halo_refetch_counted() {
        // Conv P=4, R=3, tiled into two P-tiles of 2: each tile spans 4
        // input rows, total fills 8 (2 rows of halo refetched).
        let shape = ProblemShape::conv("c", 1, 1, 1, 4, 1, 3, 1, (1, 1));
        let arch = presets::toy_linear(1, 1024);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::P, 1, SlotKind::Temporal, 2);
        b.set_tile(Dim::R, 1, SlotKind::Temporal, 3);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let sim = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap();
        assert_eq!(sim.fills[1][Operand::Input.index()], 8);
    }

    #[test]
    fn too_large_rejected() {
        let arch = presets::toy_linear(1, 1024);
        let shape = ProblemShape::gemm("g", 4096, 4096, 4096);
        let m = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let err = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap_err();
        assert!(matches!(err, SimError::TooLarge { .. }));
    }

    #[test]
    fn spatial_instances_fill_independently() {
        // 4 PEs each receive their own quarter of the weights.
        let arch = presets::toy_linear(4, 1024);
        let shape = rank1(16);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 4);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let sim = simulate(&arch, &shape, &m, &SimLimits::default()).unwrap();
        assert_eq!(sim.macs, 16);
        assert_eq!(sim.cycles, 4);
        assert_eq!(sim.fills[1][Operand::Weight.index()], 16);
        assert_eq!(sim.peak_footprint[1][Operand::Weight.index()], 4);
    }
}
