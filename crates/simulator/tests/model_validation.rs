//! Cross-validation of the analytical cost model against the functional
//! simulator: for any mapping the samplers can produce on small
//! problems, the model's exact quantities (MACs, cycles) must match the
//! simulator bit-for-bit, and its approximate quantities (fills) must be
//! conservative but not wildly so.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_arch::presets;
use ruby_mapping::{Mapping, SlotKind};
use ruby_mapspace::{Mapspace, MapspaceKind};
use ruby_model::{evaluate, ModelOptions};
use ruby_simulator::{simulate, SimLimits};
use ruby_workload::{Dim, Operand, ProblemShape};

prop_compose! {
    fn small_shape()(m in 1u64..20, c in 1u64..12, p in 1u64..10, q in 1u64..10,
                     r in 1u64..4, s in 1u64..4) -> ProblemShape {
        ProblemShape::conv("v", 1, m, c, p, q, r, s, (1, 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MAC and cycle counts are exact in both implementations and must
    /// agree for every sampled mapping of every mapspace kind.
    #[test]
    fn cycles_and_macs_agree(
        shape in small_shape(),
        pes in 1u64..10,
        kind_idx in 0usize..4,
        seed in 0u64..16,
    ) {
        let arch = presets::toy_linear(pes, 65536);
        let kind = MapspaceKind::ALL[kind_idx];
        let space = Mapspace::new(arch.clone(), shape.clone(), kind);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
        prop_assert_eq!(sim.macs, shape.macs());
        prop_assert_eq!(sim.cycles, mapping.compute_cycles(),
            "profile-based cycles disagree with execution for {:?}", mapping);
        if let Ok(report) = evaluate(&arch, &shape, &mapping, &ModelOptions::default()) {
            prop_assert_eq!(report.cycles(), sim.cycles);
            prop_assert_eq!(report.macs(), sim.macs);
        }
    }

    /// The model's fill counts are conservative: at least the simulator's
    /// exact counts (which assume ideal single-tile reuse), and within a
    /// bounded factor of them for weights (no halos, so only the
    /// nominal-count approximation separates the two).
    #[test]
    fn model_fills_bound_simulated_fills(
        shape in small_shape(),
        pes in 1u64..10,
        kind_idx in 0usize..4,
        seed in 0u64..8,
    ) {
        let arch = presets::toy_linear(pes, 65536);
        let kind = MapspaceKind::ALL[kind_idx];
        let space = Mapspace::new(arch.clone(), shape.clone(), kind);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        let Ok(report) = evaluate(&arch, &shape, &mapping, &ModelOptions::default()) else {
            return Ok(());
        };
        let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
        for op in [Operand::Input, Operand::Weight] {
            let model = report.level_stats()[1].per_tensor()[op.index()].fills;
            let simulated = sim.fills[1][op.index()] as f64;
            prop_assert!(
                model >= simulated - 1e-6,
                "{op}: model fills {model} below simulated {simulated}"
            );
        }
    }

    /// Peak simulated footprints never exceed the nominal tile sizes the
    /// validity checker uses — capacity checking is sound.
    #[test]
    fn capacity_checking_is_sound(
        shape in small_shape(),
        pes in 1u64..10,
        seed in 0u64..8,
    ) {
        let arch = presets::toy_linear(pes, 65536);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::Ruby);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
        let tile = mapping.tile_at_level(1);
        for op in Operand::ALL {
            let nominal = shape.tensor(op).footprint(&tile);
            prop_assert!(
                sim.peak_footprint[1][op.index()] <= nominal,
                "{op}: simulated peak {} exceeds nominal {}",
                sim.peak_footprint[1][op.index()],
                nominal
            );
        }
    }
}

/// For perfect mappings of a pointwise problem (no halos, no remainders)
/// the model's weight and input fills must match the simulator exactly.
#[test]
fn perfect_pointwise_fills_match_exactly() {
    let shape = ProblemShape::conv("pw", 1, 8, 4, 6, 6, 1, 1, (1, 1));
    let arch = presets::toy_linear(4, 65536);
    let mut b = Mapping::builder(2);
    b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4);
    b.set_tile(Dim::C, 1, SlotKind::Temporal, 4);
    b.set_tile(Dim::P, 1, SlotKind::Temporal, 3);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
    for op in [Operand::Input, Operand::Weight] {
        let model = report.level_stats()[1].per_tensor()[op.index()].fills;
        let simulated = sim.fills[1][op.index()] as f64;
        assert_eq!(model, simulated, "{op} fills differ");
    }
}

/// Dilated convolutions: the model's halo formula and the simulator's
/// region projection must agree on input fills for perfect tilings.
#[test]
fn dilated_conv_fills_match() {
    let shape = ProblemShape::conv("dil", 1, 2, 2, 8, 8, 3, 3, (1, 1)).with_dilation((2, 2));
    let arch = presets::toy_linear(2, 65536);
    let mut b = Mapping::builder(2);
    b.set_tile(Dim::P, 1, SlotKind::Temporal, 4);
    b.set_tile(Dim::R, 1, SlotKind::Temporal, 3);
    b.set_tile(Dim::S, 1, SlotKind::Temporal, 3);
    b.set_tile(Dim::Q, 1, SlotKind::Temporal, 8);
    b.set_tile(Dim::C, 1, SlotKind::Temporal, 2);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
    let model = report.level_stats()[1].per_tensor()[Operand::Input.index()].fills;
    let simulated = sim.fills[1][Operand::Input.index()] as f64;
    assert_eq!(model, simulated, "dilated halo fills differ");
    assert_eq!(report.cycles(), sim.cycles);
}

/// The Fig. 9 handcrafted fold, scaled down to a simulable size, runs
/// with the cycle count the model predicts.
#[test]
fn imperfect_fold_execution_matches_model() {
    let shape = ProblemShape::conv("mini_alex", 1, 6, 4, 9, 9, 3, 3, (1, 1));
    let arch = presets::eyeriss_like(4, 3);
    let mut b = Mapping::builder(3);
    b.set_tile(Dim::Q, 1, SlotKind::SpatialX, 4); // fold 9 over 4 columns
    b.set_tile(Dim::M, 1, SlotKind::SpatialY, 3);
    b.set_tile(Dim::S, 2, SlotKind::Temporal, 3);
    b.set_tile(Dim::C, 2, SlotKind::Temporal, 2);
    let mapping = b.build_for_bounds(shape.bounds()).unwrap();
    let report = evaluate(&arch, &shape, &mapping, &ModelOptions::default()).unwrap();
    let sim = simulate(&arch, &shape, &mapping, &SimLimits::default()).unwrap();
    assert_eq!(report.cycles(), sim.cycles);
    assert!(mapping.is_imperfect());
}
