//! Operand tensors and their projections from iteration space to data
//! coordinates.
//!
//! Each of the three operands of the canonical loop nest is a tensor whose
//! coordinates are a *projection* of the seven iteration dimensions:
//!
//! * weights `W[m, c, r, s]` — four simple ranks;
//! * outputs `O[n, m, p, q]` — four simple ranks;
//! * inputs `I[n, c, p·sh + r, q·sw + s]` — two simple ranks plus two
//!   *strided* (sliding-window) ranks coupling `(P, R)` and `(Q, S)`.
//!
//! The projection determines which iteration dimensions are *relevant* to a
//! tensor (moving along them touches new data) and how big a data tile is
//! for a given iteration-space tile (the *footprint*, including input
//! halos).

use std::fmt;

use crate::dims::{Dim, DimMap};

/// One of the three operand tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// Input feature maps (IFM). Read-only.
    Input,
    /// Filter weights. Read-only.
    Weight,
    /// Output feature maps (OFM). Read-modify-write (partial sums).
    Output,
}

impl Operand {
    /// All operands, in `[Input, Weight, Output]` order.
    pub const ALL: [Operand; 3] = [Operand::Input, Operand::Weight, Operand::Output];

    /// Dense index within [`Operand::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Operand::Input => 0,
            Operand::Weight => 1,
            Operand::Output => 2,
        }
    }

    /// Whether this operand is written by the computation (only outputs).
    #[inline]
    pub const fn is_written(self) -> bool {
        matches!(self, Operand::Output)
    }

    /// Short display name ("IFM", "W", "OFM").
    pub const fn short_name(self) -> &'static str {
        match self {
            Operand::Input => "IFM",
            Operand::Weight => "W",
            Operand::Output => "OFM",
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One rank (axis) of an operand tensor, as a projection of iteration
/// dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rank {
    /// The rank coordinate equals a single iteration dimension.
    Simple(Dim),
    /// A sliding-window rank: coordinate = `pos·stride + win·dilation`,
    /// e.g. the input height `h = p·stride_h + r·dilation_h`. A tile
    /// spanning `t_pos` positions and `t_win` window offsets covers
    /// `(t_pos − 1)·stride + (t_win − 1)·dilation + 1` coordinates.
    Strided {
        /// The position dimension (`P` or `Q`).
        pos: Dim,
        /// The window dimension (`R` or `S`).
        win: Dim,
        /// The convolution stride along this rank.
        stride: u64,
        /// The filter dilation along this rank.
        dilation: u64,
    },
}

impl Rank {
    /// The extent of this rank for an iteration-space tile with per-dim
    /// sizes `tile`.
    #[inline]
    pub fn extent(&self, tile: &DimMap<u64>) -> u64 {
        match *self {
            Rank::Simple(d) => tile[d],
            Rank::Strided {
                pos,
                win,
                stride,
                dilation,
            } => (tile[pos] - 1) * stride + (tile[win] - 1) * dilation + 1,
        }
    }

    /// The iteration dimensions participating in this rank.
    pub fn dims(&self) -> Vec<Dim> {
        match *self {
            Rank::Simple(d) => vec![d],
            Rank::Strided { pos, win, .. } => vec![pos, win],
        }
    }
}

/// An operand tensor definition: its identity plus the list of ranks
/// projecting iteration space onto its data space.
///
/// # Examples
///
/// ```
/// use ruby_workload::{Dim, DimMap, Operand, TensorDef};
///
/// let w = TensorDef::weight();
/// assert!(w.is_relevant(Dim::M));
/// assert!(!w.is_relevant(Dim::P));
///
/// let tile = DimMap::from([1, 4, 2, 1, 1, 3, 3]);
/// assert_eq!(w.footprint(&tile), 4 * 2 * 3 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorDef {
    operand: Operand,
    ranks: Vec<Rank>,
    relevant: DimMap<bool>,
}

serde::impl_serde_unit_enum!(Operand {
    Input,
    Weight,
    Output
});
serde::impl_serde_struct!(TensorDef {
    operand,
    ranks,
    relevant
});

impl serde::Serialize for Rank {
    fn to_value(&self) -> serde::Value {
        match *self {
            Rank::Simple(d) => {
                serde::Value::Obj(vec![("Simple".to_owned(), serde::Serialize::to_value(&d))])
            }
            Rank::Strided {
                pos,
                win,
                stride,
                dilation,
            } => serde::Value::Obj(vec![(
                "Strided".to_owned(),
                serde::Value::Obj(vec![
                    ("pos".to_owned(), serde::Serialize::to_value(&pos)),
                    ("win".to_owned(), serde::Serialize::to_value(&win)),
                    ("stride".to_owned(), serde::Serialize::to_value(&stride)),
                    ("dilation".to_owned(), serde::Serialize::to_value(&dilation)),
                ]),
            )]),
        }
    }
}

impl serde::Deserialize for Rank {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(d) = value.get("Simple") {
            return Ok(Rank::Simple(serde::Deserialize::from_value(d)?));
        }
        if let Some(fields) = value.get("Strided") {
            return Ok(Rank::Strided {
                pos: serde::Deserialize::from_value(fields.field("pos")?)?,
                win: serde::Deserialize::from_value(fields.field("win")?)?,
                stride: serde::Deserialize::from_value(fields.field("stride")?)?,
                dilation: serde::Deserialize::from_value(fields.field("dilation")?)?,
            });
        }
        Err(serde::Error::custom("expected a Simple or Strided rank"))
    }
}

impl TensorDef {
    fn new(operand: Operand, ranks: Vec<Rank>) -> Self {
        let mut relevant = DimMap::splat(false);
        for rank in &ranks {
            for d in rank.dims() {
                relevant[d] = true;
            }
        }
        TensorDef {
            operand,
            ranks,
            relevant,
        }
    }

    /// The input feature-map tensor `I[n, c, p·sh + r, q·sw + s]` for the
    /// given `(vertical, horizontal)` stride (dilation 1).
    pub fn input(stride: (u64, u64)) -> Self {
        TensorDef::input_dilated(stride, (1, 1))
    }

    /// The input tensor with explicit `(vertical, horizontal)` filter
    /// dilation: `I[n, c, p·sh + r·dh, q·sw + s·dw]`.
    pub fn input_dilated(stride: (u64, u64), dilation: (u64, u64)) -> Self {
        TensorDef::new(
            Operand::Input,
            vec![
                Rank::Simple(Dim::N),
                Rank::Simple(Dim::C),
                Rank::Strided {
                    pos: Dim::P,
                    win: Dim::R,
                    stride: stride.0,
                    dilation: dilation.0,
                },
                Rank::Strided {
                    pos: Dim::Q,
                    win: Dim::S,
                    stride: stride.1,
                    dilation: dilation.1,
                },
            ],
        )
    }

    /// The weight tensor `W[m, c, r, s]`.
    pub fn weight() -> Self {
        TensorDef::new(
            Operand::Weight,
            vec![
                Rank::Simple(Dim::M),
                Rank::Simple(Dim::C),
                Rank::Simple(Dim::R),
                Rank::Simple(Dim::S),
            ],
        )
    }

    /// The output tensor `O[n, m, p, q]`.
    pub fn output() -> Self {
        TensorDef::new(
            Operand::Output,
            vec![
                Rank::Simple(Dim::N),
                Rank::Simple(Dim::M),
                Rank::Simple(Dim::P),
                Rank::Simple(Dim::Q),
            ],
        )
    }

    /// Which operand this tensor is.
    pub fn operand(&self) -> Operand {
        self.operand
    }

    /// The tensor's ranks in declaration order.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// Whether iteration dimension `dim` is relevant to this tensor, i.e.
    /// moving along it touches new data. Loops over irrelevant dimensions
    /// reuse the tensor's current tile.
    #[inline]
    pub fn is_relevant(&self, dim: Dim) -> bool {
        self.relevant[dim]
    }

    /// The number of data elements covered by an iteration-space tile with
    /// per-dimension extents `tile`. Sliding-window ranks account for
    /// halos: a `P`-tile of height 3 with a 3-tall filter at stride 1
    /// covers 5 input rows, not 9.
    pub fn footprint(&self, tile: &DimMap<u64>) -> u64 {
        self.ranks
            .iter()
            .fold(1u64, |acc, r| acc.saturating_mul(r.extent(tile)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tile() -> DimMap<u64> {
        DimMap::splat(1)
    }

    #[test]
    fn relevance_sets_match_paper() {
        let i = TensorDef::input((1, 1));
        let w = TensorDef::weight();
        let o = TensorDef::output();
        // Inputs: everything except M.
        for d in Dim::ALL {
            assert_eq!(i.is_relevant(d), d != Dim::M, "input relevance of {d}");
        }
        // Weights: M, C, R, S.
        for d in Dim::ALL {
            assert_eq!(
                w.is_relevant(d),
                matches!(d, Dim::M | Dim::C | Dim::R | Dim::S),
                "weight relevance of {d}"
            );
        }
        // Outputs: non-reduction dims.
        for d in Dim::ALL {
            assert_eq!(
                o.is_relevant(d),
                !d.is_reduction(),
                "output relevance of {d}"
            );
        }
    }

    #[test]
    fn unit_tile_has_unit_footprint() {
        for t in [
            TensorDef::input((2, 2)),
            TensorDef::weight(),
            TensorDef::output(),
        ] {
            assert_eq!(t.footprint(&unit_tile()), 1, "{:?}", t.operand());
        }
    }

    #[test]
    fn input_halo_footprint() {
        let i = TensorDef::input((1, 1));
        let mut tile = unit_tile();
        tile[Dim::P] = 3;
        tile[Dim::R] = 3;
        // 3 output rows with a 3-tall filter cover 5 input rows.
        assert_eq!(i.footprint(&tile), 5);
        tile[Dim::Q] = 4;
        tile[Dim::S] = 2;
        assert_eq!(i.footprint(&tile), 5 * 5);
    }

    #[test]
    fn strided_halo_footprint() {
        let i = TensorDef::input((2, 2));
        let mut tile = unit_tile();
        tile[Dim::P] = 4;
        tile[Dim::R] = 3;
        // (4-1)*2 + 3 = 9 input rows.
        assert_eq!(i.footprint(&tile), 9);
    }

    #[test]
    fn operand_flags() {
        assert!(Operand::Output.is_written());
        assert!(!Operand::Input.is_written());
        assert!(!Operand::Weight.is_written());
        assert_eq!(Operand::ALL.map(Operand::index), [0, 1, 2]);
    }

    #[test]
    fn rank_extent_strided() {
        let r = Rank::Strided {
            pos: Dim::Q,
            win: Dim::S,
            stride: 3,
            dilation: 1,
        };
        let mut tile = unit_tile();
        tile[Dim::Q] = 5;
        tile[Dim::S] = 2;
        assert_eq!(r.extent(&tile), 4 * 3 + 2);
        assert_eq!(r.dims(), vec![Dim::Q, Dim::S]);
    }
}
