//! Workload suites evaluated in the paper.
//!
//! * [`resnet50`] — the unique convolution/GEMM layers of ResNet-50
//!   (batch 1), the workload of Figs. 10, 12, 13a and 14a;
//! * [`alexnet_layer2`] — the AlexNet layer-2 case study of Fig. 9;
//! * [`deepbench`] — a representative subset of Baidu DeepBench inference
//!   layers spanning vision, speech, face and text tasks (Figs. 11, 13b,
//!   14b);
//! * toy problems for Figs. 7–8 and Table I ([`toy_gemm_100`],
//!   [`toy_conv_28`], [`rank1_sweep`]).

use crate::shape::ProblemShape;

/// A named group of layers evaluated together, with per-layer occurrence
/// counts so whole-network totals weight repeated layers correctly.
#[derive(Debug, Clone)]
pub struct Suite {
    name: String,
    layers: Vec<(ProblemShape, u64)>,
}

impl Suite {
    /// Creates a suite from `(layer, repeat-count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or any repeat count is zero.
    pub fn new(name: impl Into<String>, layers: Vec<(ProblemShape, u64)>) -> Self {
        assert!(
            !layers.is_empty(),
            "a suite must contain at least one layer"
        );
        assert!(
            layers.iter().all(|(_, n)| *n > 0),
            "repeat counts must be positive"
        );
        Suite {
            name: name.into(),
            layers,
        }
    }

    /// The suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique layers with their repeat counts.
    pub fn layers(&self) -> &[(ProblemShape, u64)] {
        &self.layers
    }

    /// Iterates the unique layer shapes (ignoring repeat counts).
    pub fn iter(&self) -> impl Iterator<Item = &ProblemShape> {
        self.layers.iter().map(|(l, _)| l)
    }

    /// Number of unique layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the suite is empty (never true for constructed suites).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total MACs across the network, weighting repeated layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().fold(0u64, |acc, (l, n)| {
            acc.saturating_add(l.macs().saturating_mul(*n))
        })
    }
}

/// The unique convolution and fully-connected layers of ResNet-50
/// (ImageNet, batch 1), with repeat counts covering the full network.
/// Downsampling follows the v1.5 convention (stride 2 in the 3×3
/// convolution of the first block of each stage).
pub fn resnet50() -> Suite {
    let c = ProblemShape::conv;
    let layers = vec![
        // conv1: 7x7/2, 3 -> 64, 224 -> 112.
        (c("conv1", 1, 64, 3, 112, 112, 7, 7, (2, 2)), 1),
        // Stage 2 (56x56).
        (c("res2_br1", 1, 256, 64, 56, 56, 1, 1, (1, 1)), 1),
        (c("res2a_1x1a", 1, 64, 64, 56, 56, 1, 1, (1, 1)), 1),
        (c("res2_3x3", 1, 64, 64, 56, 56, 3, 3, (1, 1)), 3),
        (c("res2_1x1c", 1, 256, 64, 56, 56, 1, 1, (1, 1)), 3),
        (c("res2_1x1a", 1, 64, 256, 56, 56, 1, 1, (1, 1)), 2),
        // Stage 3 (28x28).
        (c("res3_br1", 1, 512, 256, 28, 28, 1, 1, (2, 2)), 1),
        (c("res3a_1x1a", 1, 128, 256, 56, 56, 1, 1, (1, 1)), 1),
        (c("res3a_3x3s2", 1, 128, 128, 28, 28, 3, 3, (2, 2)), 1),
        (c("res3_3x3", 1, 128, 128, 28, 28, 3, 3, (1, 1)), 3),
        (c("res3_1x1c", 1, 512, 128, 28, 28, 1, 1, (1, 1)), 4),
        (c("res3_1x1a", 1, 128, 512, 28, 28, 1, 1, (1, 1)), 3),
        // Stage 4 (14x14).
        (c("res4_br1", 1, 1024, 512, 14, 14, 1, 1, (2, 2)), 1),
        (c("res4a_1x1a", 1, 256, 512, 28, 28, 1, 1, (1, 1)), 1),
        (c("res4a_3x3s2", 1, 256, 256, 14, 14, 3, 3, (2, 2)), 1),
        (c("res4_3x3", 1, 256, 256, 14, 14, 3, 3, (1, 1)), 5),
        (c("res4_1x1c", 1, 1024, 256, 14, 14, 1, 1, (1, 1)), 6),
        (c("res4_1x1a", 1, 256, 1024, 14, 14, 1, 1, (1, 1)), 5),
        // Stage 5 (7x7).
        (c("res5_br1", 1, 2048, 1024, 7, 7, 1, 1, (2, 2)), 1),
        (c("res5a_1x1a", 1, 512, 1024, 14, 14, 1, 1, (1, 1)), 1),
        (c("res5a_3x3s2", 1, 512, 512, 7, 7, 3, 3, (2, 2)), 1),
        (c("res5_3x3", 1, 512, 512, 7, 7, 3, 3, (1, 1)), 2),
        (c("res5_1x1c", 1, 2048, 512, 7, 7, 1, 1, (1, 1)), 3),
        (c("res5_1x1a", 1, 512, 2048, 7, 7, 1, 1, (1, 1)), 2),
        // Classifier.
        (ProblemShape::gemm("fc1000", 1000, 1, 2048), 1),
    ];
    Suite::new("resnet50", layers)
}

/// AlexNet layer 2 as described in the paper's Fig. 9 case study:
/// IFM 27×27×48, 5×5 filters, 96 output channels, stride 1
/// (per-group shapes of the original grouped convolution).
pub fn alexnet_layer2() -> ProblemShape {
    // Output stays 27x27 thanks to padding; the loop nest sees P = Q = 27.
    ProblemShape::conv("alexnet_conv2", 1, 96, 48, 27, 27, 5, 5, (1, 1))
}

/// A representative subset of Baidu DeepBench inference layers, spanning
/// the task categories of Fig. 11. Names are prefixed by category so
/// reports group naturally. Output extents are derived from the published
/// input extents with "same"-style padding where the original used it.
pub fn deepbench() -> Suite {
    let c = ProblemShape::conv;
    let layers = vec![
        // --- Speech (DeepSpeech 2): tall skinny spectrogram convs.
        (c("speech_ds_l1", 1, 32, 1, 79, 341, 5, 20, (2, 2)), 1),
        (c("speech_ds_l2", 1, 32, 32, 38, 166, 5, 10, (2, 1)), 1),
        // --- Vision (ResNet / VGG style, ImageNet geometry).
        (c("vision_conv7x7", 1, 64, 3, 112, 112, 7, 7, (2, 2)), 1),
        (c("vision_conv3x3_56", 1, 64, 64, 56, 56, 3, 3, (1, 1)), 1),
        (c("vision_conv3x3_28", 1, 128, 128, 28, 28, 3, 3, (1, 1)), 1),
        (c("vision_conv3x3_14", 1, 256, 256, 14, 14, 3, 3, (1, 1)), 1),
        (c("vision_conv3x3_7", 1, 512, 512, 7, 7, 3, 3, (1, 1)), 1),
        (c("vision_pw_28", 1, 512, 128, 28, 28, 1, 1, (1, 1)), 1),
        // --- Face recognition (DeepFace-style local geometry).
        (c("face_conv_108", 1, 64, 3, 108, 108, 3, 3, (2, 2)), 1),
        (c("face_conv_27", 1, 192, 64, 27, 27, 3, 3, (1, 1)), 1),
        (c("face_conv_13", 1, 384, 192, 13, 13, 3, 3, (1, 1)), 1),
        // --- Speaker identification / text: dense (GEMM) layers.
        (ProblemShape::gemm("speaker_gemm_1760", 1760, 16, 1760), 1),
        (ProblemShape::gemm("speaker_gemm_2560", 2560, 32, 2560), 1),
        (ProblemShape::gemm("text_gemm_2048", 2048, 16, 2048), 1),
        (ProblemShape::gemm("text_gemm_4096", 4096, 8, 4096), 1),
        (ProblemShape::gemm("speech_gemm_1024", 1024, 128, 512), 1),
    ];
    Suite::new("deepbench", layers)
}

/// The full AlexNet convolution stack (per-group shapes for the grouped
/// layers, as in the paper's layer-2 case study) plus the three dense
/// layers. Useful for handcrafted-vs-mapper studies beyond Fig. 9.
pub fn alexnet() -> Suite {
    let c = ProblemShape::conv;
    let layers = vec![
        (c("alexnet_conv1", 1, 96, 3, 55, 55, 11, 11, (4, 4)), 1),
        (alexnet_layer2(), 1),
        (c("alexnet_conv3", 1, 384, 256, 13, 13, 3, 3, (1, 1)), 1),
        (c("alexnet_conv4", 1, 384, 192, 13, 13, 3, 3, (1, 1)), 1),
        (c("alexnet_conv5", 1, 256, 192, 13, 13, 3, 3, (1, 1)), 1),
        (ProblemShape::gemm("alexnet_fc6", 4096, 1, 9216), 1),
        (ProblemShape::gemm("alexnet_fc7", 4096, 1, 4096), 1),
        (ProblemShape::gemm("alexnet_fc8", 1000, 1, 4096), 1),
    ];
    Suite::new("alexnet", layers)
}

/// The unique convolution layers of VGG-16 (batch 1) plus its dense
/// head. VGG's power-of-two channel counts and 224-derived feature maps
/// align unusually well with factor-7 arrays — a useful contrast to
/// DeepBench's hostile shapes.
pub fn vgg16() -> Suite {
    let c = ProblemShape::conv;
    let layers = vec![
        (c("vgg_conv1_1", 1, 64, 3, 224, 224, 3, 3, (1, 1)), 1),
        (c("vgg_conv1_2", 1, 64, 64, 224, 224, 3, 3, (1, 1)), 1),
        (c("vgg_conv2_1", 1, 128, 64, 112, 112, 3, 3, (1, 1)), 1),
        (c("vgg_conv2_2", 1, 128, 128, 112, 112, 3, 3, (1, 1)), 1),
        (c("vgg_conv3_1", 1, 256, 128, 56, 56, 3, 3, (1, 1)), 1),
        (c("vgg_conv3_x", 1, 256, 256, 56, 56, 3, 3, (1, 1)), 2),
        (c("vgg_conv4_1", 1, 512, 256, 28, 28, 3, 3, (1, 1)), 1),
        (c("vgg_conv4_x", 1, 512, 512, 28, 28, 3, 3, (1, 1)), 2),
        (c("vgg_conv5_x", 1, 512, 512, 14, 14, 3, 3, (1, 1)), 3),
        (ProblemShape::gemm("vgg_fc6", 4096, 1, 25088), 1),
        (ProblemShape::gemm("vgg_fc7", 4096, 1, 4096), 1),
        (ProblemShape::gemm("vgg_fc8", 1000, 1, 4096), 1),
    ];
    Suite::new("vgg16", layers)
}

/// The standard (non-depthwise) convolutions of MobileNet-v1: the 3×3
/// stem plus the pointwise (1×1) stack. Depthwise layers are omitted —
/// the canonical 7-dim nest has no group dimension, and pointwise layers
/// dominate MobileNet's MACs anyway. Channel counts that are multiples
/// of 32 misalign with 12-row arrays, making this a Ruby-friendly suite.
pub fn mobilenet_v1_pointwise() -> Suite {
    let c = ProblemShape::conv;
    let layers = vec![
        (c("mbn_conv1", 1, 32, 3, 112, 112, 3, 3, (2, 2)), 1),
        (c("mbn_pw_64", 1, 64, 32, 112, 112, 1, 1, (1, 1)), 1),
        (c("mbn_pw_128a", 1, 128, 64, 56, 56, 1, 1, (1, 1)), 1),
        (c("mbn_pw_128b", 1, 128, 128, 56, 56, 1, 1, (1, 1)), 1),
        (c("mbn_pw_256a", 1, 256, 128, 28, 28, 1, 1, (1, 1)), 1),
        (c("mbn_pw_256b", 1, 256, 256, 28, 28, 1, 1, (1, 1)), 1),
        (c("mbn_pw_512a", 1, 512, 256, 14, 14, 1, 1, (1, 1)), 1),
        (c("mbn_pw_512b", 1, 512, 512, 14, 14, 1, 1, (1, 1)), 5),
        (c("mbn_pw_1024a", 1, 1024, 512, 7, 7, 1, 1, (1, 1)), 1),
        (c("mbn_pw_1024b", 1, 1024, 1024, 7, 7, 1, 1, (1, 1)), 1),
        (ProblemShape::gemm("mbn_fc", 1000, 1, 1024), 1),
    ];
    Suite::new("mobilenet_v1_pw", layers)
}

/// The Fig. 7a/b toy: a GEMM over two 100×100 tensors.
pub fn toy_gemm_100() -> ProblemShape {
    ProblemShape::gemm("toy_gemm_100", 100, 100, 100)
}

/// The Fig. 7c/d toy: a 3×3×64 filter convolved with a 28×28×64 image
/// (valid convolution, 64 output channels).
pub fn toy_conv_28() -> ProblemShape {
    ProblemShape::conv("toy_conv_28", 1, 64, 64, 26, 26, 3, 3, (1, 1))
}

/// Rank-1 problems of the given extents — Table I uses 3…4096, Fig. 8
/// sweeps around a 16-PE linear array (e.g. 113, 127, 128).
pub fn rank1_sweep(extents: &[u64]) -> Vec<ProblemShape> {
    extents
        .iter()
        .map(|&d| ProblemShape::rank1(format!("rank1_{d}"), d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dim;

    #[test]
    fn resnet50_has_expected_structure() {
        let suite = resnet50();
        assert_eq!(suite.name(), "resnet50");
        assert!(
            suite.len() >= 20,
            "expected ≥20 unique layers, got {}",
            suite.len()
        );
        // Total conv layer instances: ResNet-50 has 53 convs + 1 fc.
        let instances: u64 = suite.layers().iter().map(|(_, n)| n).sum();
        assert_eq!(instances, 54);
        // MAC total for batch-1 ResNet-50 is ~4.1 GMACs; allow a band since
        // projection-shortcut conventions vary slightly.
        let gmacs = suite.total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn resnet50_layer_names_unique() {
        let suite = resnet50();
        let mut names: Vec<&str> = suite.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn alexnet_layer2_matches_paper() {
        let l = alexnet_layer2();
        assert_eq!(l.bound(Dim::P), 27);
        assert_eq!(l.bound(Dim::Q), 27);
        assert_eq!(l.bound(Dim::C), 48);
        assert_eq!(l.bound(Dim::M), 96);
        assert_eq!(l.bound(Dim::R), 5);
    }

    #[test]
    fn deepbench_spans_categories() {
        let suite = deepbench();
        for prefix in ["speech", "vision", "face", "speaker", "text"] {
            assert!(
                suite.iter().any(|l| l.name().starts_with(prefix)),
                "missing {prefix} category"
            );
        }
        assert!(suite.len() >= 12);
    }

    #[test]
    fn toys_match_paper_dims() {
        let g = toy_gemm_100();
        assert_eq!(g.macs(), 1_000_000);
        let conv = toy_conv_28();
        assert_eq!(conv.bound(Dim::C), 64);
        assert_eq!(conv.bound(Dim::R), 3);
        assert_eq!(conv.input_height(), 28);
    }

    #[test]
    fn alexnet_full_stack() {
        let suite = alexnet();
        assert_eq!(suite.len(), 8);
        // AlexNet per-group conv stack + dense head: ~0.8-1.2 GMACs.
        let gmacs = suite.total_macs() as f64 / 1e9;
        assert!((0.4..1.5).contains(&gmacs), "got {gmacs}");
        assert!(suite.iter().any(|l| l.name() == "alexnet_conv2"));
    }

    #[test]
    fn vgg16_is_heavy() {
        let suite = vgg16();
        // VGG-16 batch 1 is ~15.5 GMACs.
        let gmacs = suite.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "got {gmacs}");
        let instances: u64 = suite.layers().iter().map(|(_, n)| n).sum();
        assert_eq!(instances, 16);
    }

    #[test]
    fn mobilenet_pointwise_dominated() {
        let suite = mobilenet_v1_pointwise();
        let pw_macs: u64 = suite
            .layers()
            .iter()
            .filter(|(l, _)| l.name().contains("pw"))
            .map(|(l, n)| l.macs() * n)
            .sum();
        assert!(
            pw_macs * 2 > suite.total_macs(),
            "pointwise layers must dominate"
        );
        // All pointwise layers really are 1x1.
        for l in suite.iter().filter(|l| l.name().contains("pw")) {
            assert_eq!(l.bound(Dim::R), 1);
            assert_eq!(l.bound(Dim::S), 1);
        }
    }

    #[test]
    fn rank1_sweep_builds_all() {
        let ws = rank1_sweep(&[3, 113, 4096]);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[1].bound(Dim::M), 113);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_suite_rejected() {
        let _ = Suite::new("empty", vec![]);
    }
}
