//! Problem shapes: the bounds of one tensor operation.

use std::fmt;

use crate::dims::{Dim, DimMap};
use crate::tensor::{Operand, TensorDef};

/// The shape of a single tensor operation expressed as the canonical 7-dim
/// loop nest (see the crate docs), plus convolution strides.
///
/// Construct with [`ProblemShape::conv`], [`ProblemShape::gemm`], or
/// [`ProblemShape::rank1`]; all three validate their inputs.
///
/// # Examples
///
/// ```
/// use ruby_workload::{Dim, ProblemShape};
///
/// let layer = ProblemShape::conv("conv3x3", 1, 64, 64, 56, 56, 3, 3, (1, 1));
/// assert_eq!(layer.bound(Dim::R), 3);
/// assert_eq!(layer.input_height(), 58);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProblemShape {
    name: String,
    bounds: DimMap<u64>,
    /// (vertical, horizontal) convolution stride.
    stride: (u64, u64),
    /// (vertical, horizontal) filter dilation.
    dilation: (u64, u64),
}

serde::impl_serde_struct!(ProblemShape {
    name,
    bounds,
    stride,
    dilation
});

impl ProblemShape {
    /// A convolution layer. Arguments follow the canonical dimension order:
    /// batch `n`, output channels `m`, input channels `c`, output rows `p`,
    /// output cols `q`, filter rows `r`, filter cols `s`, and `(vertical,
    /// horizontal)` stride.
    ///
    /// # Panics
    ///
    /// Panics if any bound or stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        n: u64,
        m: u64,
        c: u64,
        p: u64,
        q: u64,
        r: u64,
        s: u64,
        stride: (u64, u64),
    ) -> Self {
        let bounds = DimMap::from([n, m, c, p, q, r, s]);
        assert!(
            bounds.iter().all(|(_, &b)| b > 0) && stride.0 > 0 && stride.1 > 0,
            "problem bounds and strides must be positive"
        );
        ProblemShape {
            name: name.into(),
            bounds,
            stride,
            dilation: (1, 1),
        }
    }

    /// Returns a copy with the given `(vertical, horizontal)` filter
    /// dilation (atrous convolution).
    ///
    /// # Panics
    ///
    /// Panics if either dilation is zero.
    pub fn with_dilation(mut self, dilation: (u64, u64)) -> Self {
        assert!(
            dilation.0 > 0 && dilation.1 > 0,
            "dilations must be positive"
        );
        self.dilation = dilation;
        self
    }

    /// A GEMM `Z[m, n] = Σ_k A[m, k] · B[k, n]` encoded in the CNN loop
    /// nest: `M = m`, `C = k` (reduction), `P = n`, everything else 1.
    /// Under this encoding the weight tensor plays the role of `A`, the
    /// input tensor the role of `B` and the output the role of `Z`.
    ///
    /// # Panics
    ///
    /// Panics if any of `m`, `n`, `k` is zero.
    pub fn gemm(name: impl Into<String>, m: u64, n: u64, k: u64) -> Self {
        ProblemShape::conv(name, 1, m, k, n, 1, 1, 1, (1, 1))
    }

    /// A rank-1 allocation problem of extent `d` along the `M` dimension —
    /// the single-dimensional tensor used by the paper's Table I and
    /// Fig. 8 toy studies.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn rank1(name: impl Into<String>, d: u64) -> Self {
        ProblemShape::gemm(name, d, 1, 1)
    }

    /// The layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop bound of dimension `dim`.
    #[inline]
    pub fn bound(&self, dim: Dim) -> u64 {
        self.bounds[dim]
    }

    /// All seven loop bounds.
    pub fn bounds(&self) -> &DimMap<u64> {
        &self.bounds
    }

    /// `(vertical, horizontal)` convolution stride.
    pub fn stride(&self) -> (u64, u64) {
        self.stride
    }

    /// `(vertical, horizontal)` filter dilation.
    pub fn dilation(&self) -> (u64, u64) {
        self.dilation
    }

    /// Total multiply-accumulate operations: the product of all bounds.
    pub fn macs(&self) -> u64 {
        self.bounds.product()
    }

    /// Input feature-map height implied by `P`, `R` and the vertical
    /// stride: `(P − 1)·stride + R`.
    pub fn input_height(&self) -> u64 {
        (self.bound(Dim::P) - 1) * self.stride.0 + (self.bound(Dim::R) - 1) * self.dilation.0 + 1
    }

    /// Input feature-map width implied by `Q`, `S` and the horizontal
    /// stride: `(Q − 1)·stride + S`.
    pub fn input_width(&self) -> u64 {
        (self.bound(Dim::Q) - 1) * self.stride.1 + (self.bound(Dim::S) - 1) * self.dilation.1 + 1
    }

    /// The three operand tensor definitions (input, weight, output) with
    /// their projections for this shape.
    pub fn tensors(&self) -> [TensorDef; 3] {
        [
            TensorDef::input_dilated(self.stride, self.dilation),
            TensorDef::weight(),
            TensorDef::output(),
        ]
    }

    /// The definition of one operand.
    pub fn tensor(&self, operand: Operand) -> TensorDef {
        match operand {
            Operand::Input => TensorDef::input_dilated(self.stride, self.dilation),
            Operand::Weight => TensorDef::weight(),
            Operand::Output => TensorDef::output(),
        }
    }

    /// Number of elements of `operand` touched by the whole problem.
    ///
    /// ```
    /// use ruby_workload::{Operand, ProblemShape};
    ///
    /// let g = ProblemShape::gemm("g", 4, 5, 6);
    /// assert_eq!(g.tensor_size(Operand::Weight), 24);  // 4×6
    /// assert_eq!(g.tensor_size(Operand::Input), 30);   // 6×5
    /// assert_eq!(g.tensor_size(Operand::Output), 20);  // 4×5
    /// ```
    pub fn tensor_size(&self, operand: Operand) -> u64 {
        self.tensor(operand).footprint(&self.bounds)
    }

    /// Returns a copy with dimension `dim` padded up to the next multiple
    /// of `multiple`. Used by the padding baseline of Fig. 8: padded
    /// elements perform ineffectual work but restore perfect divisibility.
    ///
    /// # Panics
    ///
    /// Panics if `multiple` is zero.
    pub fn padded_to_multiple(&self, dim: Dim, multiple: u64) -> ProblemShape {
        assert!(multiple > 0, "padding multiple must be positive");
        let mut padded = self.clone();
        let b = padded.bounds[dim];
        padded.bounds[dim] = b.div_ceil(multiple) * multiple;
        if padded.bounds[dim] != b {
            padded.name = format!("{}+pad{}{}", self.name, dim, padded.bounds[dim]);
        }
        padded
    }
}

impl fmt::Display for ProblemShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, (d, b)) in self.bounds.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}={b}")?;
        }
        write!(f, " stride={}x{}]", self.stride.0, self.stride.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_bounds_and_macs() {
        let l = ProblemShape::conv("l", 1, 64, 3, 112, 112, 7, 7, (2, 2));
        assert_eq!(l.bound(Dim::M), 64);
        assert_eq!(l.macs(), 64 * 3 * 112 * 112 * 7 * 7);
        assert_eq!(l.input_height(), 111 * 2 + 7);
    }

    #[test]
    fn gemm_encoding() {
        let g = ProblemShape::gemm("g", 100, 100, 100);
        assert_eq!(g.bound(Dim::M), 100);
        assert_eq!(g.bound(Dim::C), 100);
        assert_eq!(g.bound(Dim::P), 100);
        assert_eq!(g.bound(Dim::Q), 1);
        assert_eq!(g.macs(), 1_000_000);
    }

    #[test]
    fn rank1_encoding() {
        let r = ProblemShape::rank1("d", 113);
        assert_eq!(r.bound(Dim::M), 113);
        assert_eq!(r.macs(), 113);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let _ = ProblemShape::conv("bad", 0, 1, 1, 1, 1, 1, 1, (1, 1));
    }

    #[test]
    fn padding_rounds_up() {
        let r = ProblemShape::rank1("d", 113);
        let padded = r.padded_to_multiple(Dim::M, 16);
        assert_eq!(padded.bound(Dim::M), 128);
        // Already aligned: unchanged, including name.
        let aligned = padded.padded_to_multiple(Dim::M, 16);
        assert_eq!(aligned.bound(Dim::M), 128);
        assert_eq!(aligned.name(), padded.name());
    }

    #[test]
    fn tensor_sizes_for_conv() {
        let l = ProblemShape::conv("l", 1, 8, 4, 10, 10, 3, 3, (1, 1));
        assert_eq!(l.tensor_size(Operand::Weight), 8 * 4 * 3 * 3);
        assert_eq!(l.tensor_size(Operand::Output), 8 * 10 * 10);
        assert_eq!(l.tensor_size(Operand::Input), 4 * 12 * 12);
    }

    #[test]
    fn dilation_grows_input_extents() {
        let l = ProblemShape::conv("d", 1, 8, 4, 10, 10, 3, 3, (1, 1)).with_dilation((2, 2));
        assert_eq!(l.dilation(), (2, 2));
        // (10-1)*1 + (3-1)*2 + 1 = 14 input rows.
        assert_eq!(l.input_height(), 14);
        assert_eq!(l.tensor_size(Operand::Input), 4 * 14 * 14);
        // Weights and outputs are unaffected by dilation.
        assert_eq!(l.tensor_size(Operand::Weight), 8 * 4 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "dilations must be positive")]
    fn zero_dilation_rejected() {
        let _ = ProblemShape::conv("d", 1, 1, 1, 4, 4, 3, 3, (1, 1)).with_dilation((0, 1));
    }

    #[test]
    fn display_is_nonempty_and_named() {
        let l = ProblemShape::gemm("disp", 2, 3, 4);
        let s = l.to_string();
        assert!(s.contains("disp"));
        assert!(s.contains("M=2"));
    }
}
