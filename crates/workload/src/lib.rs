//! Tensor-algebra workload model for the Ruby mapper reproduction.
//!
//! A *workload* is a single tensor operation — a convolution, a GEMM, or a
//! degenerate rank-1 allocation problem — expressed as the canonical 7-dim
//! CNN loop nest used by Timeloop-style mappers:
//!
//! ```text
//! for n in 0..N      // batch
//!  for m in 0..M     // output channels
//!   for c in 0..C    // input channels   (reduction)
//!    for p in 0..P   // output rows
//!     for q in 0..Q  // output cols
//!      for r in 0..R // filter rows      (reduction)
//!       for s in 0..S// filter cols      (reduction)
//!        O[n,m,p,q] += W[m,c,r,s] * I[n,c,p*sh+r,q*sw+s]
//! ```
//!
//! The crate provides:
//!
//! * [`Dim`] / [`DimMap`] — the seven iteration dimensions and a dense map
//!   keyed by them;
//! * [`ProblemShape`] — the bounds of one operation plus convolution
//!   strides;
//! * [`tensor`] — the three operand tensors and their projections from the
//!   iteration space to data coordinates (including sliding-window input
//!   halos);
//! * [`suites`] — the workload suites evaluated in the paper (ResNet-50,
//!   AlexNet layer 2, a DeepBench subset, and the toy problems of Figs. 7–8
//!   and Table I).
//!
//! # Examples
//!
//! ```
//! use ruby_workload::{Dim, ProblemShape};
//!
//! let gemm = ProblemShape::gemm("toy", 100, 100, 100);
//! assert_eq!(gemm.bound(Dim::M), 100);
//! assert_eq!(gemm.macs(), 1_000_000);
//! ```

pub mod dims;
pub mod shape;
pub mod suites;
pub mod tensor;

pub use dims::{Dim, DimMap};
pub use shape::ProblemShape;
pub use tensor::{Operand, Rank, TensorDef};
