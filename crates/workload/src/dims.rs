//! The seven canonical iteration dimensions and a dense map keyed by them.

use std::fmt;
use std::ops::{Index, IndexMut};

/// One of the seven iteration dimensions of the canonical CNN loop nest.
///
/// GEMM and rank-1 problems reuse the same dimension set with the unused
/// dimensions pinned to 1 (see [`crate::ProblemShape::gemm`]).
///
/// # Examples
///
/// ```
/// use ruby_workload::Dim;
///
/// assert!(Dim::C.is_reduction());
/// assert!(!Dim::M.is_reduction());
/// assert_eq!(Dim::ALL.len(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels.
    M,
    /// Input channels (reduction).
    C,
    /// Output feature-map rows.
    P,
    /// Output feature-map columns.
    Q,
    /// Filter rows (reduction).
    R,
    /// Filter columns (reduction).
    S,
}

impl Dim {
    /// All seven dimensions in canonical order.
    pub const ALL: [Dim; 7] = [Dim::N, Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S];

    /// The dense index of this dimension within [`Dim::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::M => 1,
            Dim::C => 2,
            Dim::P => 3,
            Dim::Q => 4,
            Dim::R => 5,
            Dim::S => 6,
        }
    }

    /// Returns the dimension with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 7`.
    #[inline]
    pub const fn from_index(index: usize) -> Dim {
        Dim::ALL[index]
    }

    /// Whether the dimension is a reduction dimension, i.e. one that does
    /// *not* index the output tensor (`C`, `R`, `S`). Iterating a reduction
    /// dimension accumulates into the same output elements.
    #[inline]
    pub const fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }

    /// Single-letter name, as used in loop-nest listings.
    pub const fn letter(self) -> char {
        match self {
            Dim::N => 'N',
            Dim::M => 'M',
            Dim::C => 'C',
            Dim::P => 'P',
            Dim::Q => 'Q',
            Dim::R => 'R',
            Dim::S => 'S',
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A dense map from [`Dim`] to `T`, stored inline.
///
/// This is the workhorse container for per-dimension data: loop bounds,
/// tile sizes, factor assignments. It implements `Index<Dim>` so lookups
/// read naturally:
///
/// ```
/// use ruby_workload::{Dim, DimMap};
///
/// let mut bounds = DimMap::splat(1u64);
/// bounds[Dim::M] = 64;
/// assert_eq!(bounds[Dim::M], 64);
/// assert_eq!(bounds[Dim::C], 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimMap<T>([T; 7]);

serde::impl_serde_unit_enum!(Dim {
    N,
    M,
    C,
    P,
    Q,
    R,
    S
});

impl<T: serde::Serialize> serde::Serialize for DimMap<T> {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl<T: serde::Deserialize> serde::Deserialize for DimMap<T> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        <[T; 7] as serde::Deserialize>::from_value(value).map(DimMap)
    }
}

impl<T> DimMap<T> {
    /// Builds a map by evaluating `f` for every dimension.
    pub fn from_fn(mut f: impl FnMut(Dim) -> T) -> Self {
        DimMap(Dim::ALL.map(&mut f))
    }

    /// Iterates `(Dim, &T)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, &T)> {
        Dim::ALL.iter().copied().zip(self.0.iter())
    }

    /// Iterates `(Dim, &mut T)` pairs in canonical order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Dim, &mut T)> {
        Dim::ALL.iter().copied().zip(self.0.iter_mut())
    }

    /// Returns a map holding references to this map's values.
    pub fn as_ref(&self) -> DimMap<&T> {
        DimMap::from_fn(|d| &self[d])
    }

    /// Maps every value through `f`, producing a new map.
    pub fn map<U>(&self, mut f: impl FnMut(Dim, &T) -> U) -> DimMap<U> {
        DimMap::from_fn(|d| f(d, &self[d]))
    }

    /// The raw values in canonical dimension order.
    pub fn values(&self) -> &[T; 7] {
        &self.0
    }
}

impl<T: Clone> DimMap<T> {
    /// Builds a map with every entry set to `value`.
    pub fn splat(value: T) -> Self {
        DimMap(std::array::from_fn(|_| value.clone()))
    }
}

impl<T: Default> Default for DimMap<T> {
    fn default() -> Self {
        DimMap(std::array::from_fn(|_| T::default()))
    }
}

impl<T> Index<Dim> for DimMap<T> {
    type Output = T;

    #[inline]
    fn index(&self, dim: Dim) -> &T {
        &self.0[dim.index()]
    }
}

impl<T> IndexMut<Dim> for DimMap<T> {
    #[inline]
    fn index_mut(&mut self, dim: Dim) -> &mut T {
        &mut self.0[dim.index()]
    }
}

impl<T> From<[T; 7]> for DimMap<T> {
    /// Interprets the array in canonical `[N, M, C, P, Q, R, S]` order.
    fn from(values: [T; 7]) -> Self {
        DimMap(values)
    }
}

impl DimMap<u64> {
    /// Product of all entries. Saturates at `u64::MAX`.
    pub fn product(&self) -> u64 {
        self.0.iter().fold(1u64, |acc, &v| acc.saturating_mul(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dims_round_trip_through_index() {
        for (i, d) in Dim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), *d);
        }
    }

    #[test]
    fn reduction_dims_are_exactly_c_r_s() {
        let reductions: Vec<Dim> = Dim::ALL
            .iter()
            .copied()
            .filter(|d| d.is_reduction())
            .collect();
        assert_eq!(reductions, vec![Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn dim_map_index_and_mutation() {
        let mut m = DimMap::splat(0u64);
        m[Dim::P] = 28;
        m[Dim::Q] = 28;
        assert_eq!(m[Dim::P], 28);
        assert_eq!(m[Dim::N], 0);
        assert_eq!(m.iter().filter(|(_, &v)| v == 28).count(), 2);
    }

    #[test]
    fn dim_map_from_fn_and_map() {
        let m = DimMap::from_fn(|d| d.index() as u64 + 1);
        assert_eq!(m[Dim::N], 1);
        assert_eq!(m[Dim::S], 7);
        assert_eq!(m.product(), 5040);
        let doubled = m.map(|_, &v| v * 2);
        assert_eq!(doubled[Dim::S], 14);
    }

    #[test]
    fn dim_map_product_saturates() {
        let m = DimMap::splat(u64::MAX);
        assert_eq!(m.product(), u64::MAX);
    }

    #[test]
    fn display_letters() {
        let s: String = Dim::ALL.iter().map(|d| d.letter()).collect();
        assert_eq!(s, "NMCPQRS");
    }
}
