//! Property and invariant tests over the workload suites and the
//! shape/padding algebra.

use proptest::prelude::*;

use ruby_workload::{suites, Dim, DimMap, Operand, ProblemShape};

/// Every suite layer must be internally consistent: positive MACs,
/// tensor sizes bounded by the full iteration space, and input extents
/// matching the stride arithmetic.
#[test]
fn all_suite_layers_are_consistent() {
    let all_suites = [
        suites::resnet50(),
        suites::deepbench(),
        suites::alexnet(),
        suites::vgg16(),
        suites::mobilenet_v1_pointwise(),
    ];
    for suite in &all_suites {
        for layer in suite.iter() {
            assert!(layer.macs() > 0, "{}", layer.name());
            for op in Operand::ALL {
                let size = layer.tensor_size(op);
                assert!(size > 0, "{} {op}", layer.name());
                assert!(
                    size <= layer.macs().max(layer.tensor_size(Operand::Input)),
                    "{} {op}: size {size} exceeds plausible bounds",
                    layer.name()
                );
            }
            let (sh, sw) = layer.stride();
            assert_eq!(
                layer.input_height(),
                (layer.bound(Dim::P) - 1) * sh + layer.bound(Dim::R),
                "{} (dilation 1)",
                layer.name()
            );
            assert_eq!(
                layer.input_width(),
                (layer.bound(Dim::Q) - 1) * sw + layer.bound(Dim::S),
                "{}",
                layer.name()
            );
        }
    }
}

/// Suites never repeat layer names, and weighted MAC totals dominate the
/// unweighted sum.
#[test]
fn suite_bookkeeping() {
    for suite in [suites::resnet50(), suites::deepbench(), suites::vgg16()] {
        let mut names: Vec<&str> = suite.iter().map(|l| l.name()).collect();
        let unique_before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), unique_before, "{}", suite.name());
        let unweighted: u64 = suite.iter().map(|l| l.macs()).sum();
        assert!(suite.total_macs() >= unweighted, "{}", suite.name());
    }
}

proptest! {
    /// Padding is idempotent, monotone and exact-multiple.
    #[test]
    fn padding_algebra(d in 1u64..3000, m in 1u64..64) {
        let shape = ProblemShape::rank1("p", d);
        let padded = shape.padded_to_multiple(Dim::M, m);
        prop_assert_eq!(padded.bound(Dim::M) % m, 0);
        prop_assert!(padded.bound(Dim::M) >= d);
        prop_assert!(padded.bound(Dim::M) < d + m);
        let twice = padded.padded_to_multiple(Dim::M, m);
        prop_assert_eq!(twice.bound(Dim::M), padded.bound(Dim::M));
    }

    /// GEMM encoding conserves the three tensor sizes.
    #[test]
    fn gemm_tensor_sizes(m in 1u64..200, n in 1u64..200, k in 1u64..200) {
        let g = ProblemShape::gemm("g", m, n, k);
        prop_assert_eq!(g.tensor_size(Operand::Weight), m * k);
        prop_assert_eq!(g.tensor_size(Operand::Input), k * n);
        prop_assert_eq!(g.tensor_size(Operand::Output), m * n);
        prop_assert_eq!(g.macs(), m * n * k);
    }

    /// Tensor footprints are monotone in every tile dimension.
    #[test]
    fn footprints_monotone(
        c in 1u64..16, p in 1u64..16, q in 1u64..16, r in 1u64..4, s in 1u64..4,
    ) {
        let shape = ProblemShape::conv("f", 1, 8, 16, 16, 16, 4, 4, (1, 1));
        let mut tile = DimMap::splat(1u64);
        tile[Dim::C] = c;
        tile[Dim::P] = p;
        tile[Dim::Q] = q;
        tile[Dim::R] = r;
        tile[Dim::S] = s;
        for op in Operand::ALL {
            let base = shape.tensor(op).footprint(&tile);
            for d in [Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S] {
                let mut bigger = tile;
                bigger[d] = tile[d] + 1;
                prop_assert!(
                    shape.tensor(op).footprint(&bigger) >= base,
                    "{op} shrank when {d} grew"
                );
            }
        }
    }
}
