//! Fig. 12: Ruby-S vs PFM over ResNet-50 on the Simba-like architecture
//! (15 PEs × four 4-wide vector MACs, C/M parallelism only). The paper
//! reports a 10% net EDP improvement with up to 25% on individual layers,
//! and a 45% improvement on the 9-PE, three 3-wide configuration.

use ruby_core::prelude::*;

use crate::common::{compare_layers, ExperimentBudget, LayerComparison, NetworkTotals};
use crate::table::{pct_delta, TextTable};

/// The study's outcome for one Simba configuration.
#[derive(Debug, Clone)]
pub struct Study {
    /// Configuration description.
    pub config: String,
    /// Per-layer comparisons.
    pub layers: Vec<LayerComparison>,
    /// Layers with no valid mapping in one of the spaces.
    pub skipped: Vec<String>,
    /// Network EDP ratio (Ruby-S / PFM).
    pub network_edp_ratio: f64,
}

/// Runs Fig. 12's main configuration (15 PEs, 4×4-wide vMACs).
pub fn run(budget: &ExperimentBudget) -> Study {
    run_config(budget, 15, 4, 4)
}

/// Runs the secondary configuration the paper quotes (9 PEs, 3×3-wide).
pub fn run_small(budget: &ExperimentBudget) -> Study {
    run_config(budget, 9, 3, 3)
}

/// Runs any Simba configuration.
pub fn run_config(budget: &ExperimentBudget, pes: u64, vmacs: u64, lanes: u64) -> Study {
    let suite = suites::resnet50();
    let explorer = Explorer::new(presets::simba_like(pes, vmacs, lanes))
        .with_constraints(Constraints::simba_cm(3, 1, 2))
        .with_search(budget.search_config());
    let shapes: Vec<ProblemShape> = suite.iter().cloned().collect();
    let (layers, skipped) = compare_layers(&explorer, &shapes, MapspaceKind::RubyS);
    let mut pfm = NetworkTotals::default();
    let mut ruby = NetworkTotals::default();
    for cmp in &layers {
        let repeats = suite
            .layers()
            .iter()
            .find(|(l, _)| l.name() == cmp.layer)
            .map(|(_, n)| *n)
            .unwrap_or(1);
        pfm.add(&cmp.pfm.report, repeats);
        ruby.add(&cmp.ruby.report, repeats);
    }
    Study {
        config: format!("{pes} PEs x {vmacs}x{lanes}-wide vMACs"),
        layers,
        skipped,
        network_edp_ratio: ruby.edp() / pfm.edp(),
    }
}

/// Renders the study.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "EDP vs PFM".into(),
        "cycles vs PFM".into(),
    ]);
    for cmp in &study.layers {
        t.row(vec![
            cmp.layer.clone(),
            pct_delta(cmp.edp_ratio()),
            pct_delta(cmp.cycle_ratio()),
        ]);
    }
    format!(
        "Fig. 12: ResNet-50 on the Simba-like architecture ({})\n{}network EDP {}\n",
        study.config,
        t.render(),
        pct_delta(study.network_edp_ratio),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_config_improves_network_edp() {
        let study = run(&ExperimentBudget::quick());
        assert!(study.skipped.is_empty(), "skipped: {:?}", study.skipped);
        assert!(
            study.network_edp_ratio <= 1.02,
            "network EDP ratio {}",
            study.network_edp_ratio
        );
    }

    #[test]
    fn small_config_shows_larger_wins() {
        // 9 PEs misalign with power-of-two channel counts even harder.
        let small = run_small(&ExperimentBudget::quick());
        assert!(small.skipped.is_empty());
        assert!(
            small.network_edp_ratio < 1.0,
            "9-PE network EDP ratio {}",
            small.network_edp_ratio
        );
    }

    #[test]
    fn render_names_the_configuration() {
        let study = run(&ExperimentBudget::quick());
        assert!(render(&study).contains("15 PEs"));
    }
}
