//! Extension experiment: joint bypass/mapping exploration.
//!
//! The paper situates Ruby among SoTA mapspace optimizations and cites
//! *bypassing* (letting tensors skip levels of the hierarchy, as in
//! ZigZag) as a complementary axis. This experiment explores that axis
//! with Ruby-S mappings: for every subset of operands the Eyeriss-like
//! global buffer could store, search the Ruby-S mapspace and compare the
//! best EDP. The paper's baseline (inputs + outputs in the GLB, weights
//! bypassing) should sit at or near the front.

use ruby_core::arch::bypass_variants;
use ruby_core::prelude::*;

use crate::common::ExperimentBudget;
use crate::table::TextTable;

/// One bypass variant's result.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Which operands the GLB stores, as "IFM,W,OFM" flags.
    pub stores: [bool; 3],
    /// Best Ruby-S EDP, if any valid mapping exists.
    pub edp: Option<f64>,
}

impl VariantResult {
    /// Human-readable stores mask, e.g. `IFM+OFM`.
    pub fn label(&self) -> String {
        let names: Vec<&str> = Operand::ALL
            .iter()
            .filter(|op| self.stores[op.index()])
            .map(|op| op.short_name())
            .collect();
        if names.is_empty() {
            "none".to_string()
        } else {
            names.join("+")
        }
    }
}

/// The study: all eight GLB bypass masks on one representative layer.
#[derive(Debug, Clone)]
pub struct Study {
    /// The layer explored.
    pub layer: String,
    /// Per-variant results, in mask order.
    pub variants: Vec<VariantResult>,
}

impl Study {
    /// The best variant (smallest EDP).
    pub fn best(&self) -> Option<&VariantResult> {
        self.variants
            .iter()
            .filter_map(|v| v.edp.map(|edp| (edp, v)))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, v)| v)
    }

    /// The paper-baseline variant (inputs + outputs stored, weights
    /// bypassing).
    pub fn baseline(&self) -> &VariantResult {
        // lint: allow(panics) — the study constructor enumerates every
        // storage mask, including the baseline's, unconditionally.
        self.variants
            .iter()
            .find(|v| v.stores == [true, false, true])
            .expect("all masks present")
    }
}

/// Runs the bypass exploration on the Eyeriss-like baseline with a
/// ResNet-50 conv layer.
pub fn run(budget: &ExperimentBudget) -> Study {
    run_layer(
        budget,
        &ProblemShape::conv("res3_3x3", 1, 128, 128, 28, 28, 3, 3, (1, 1)),
    )
}

/// Runs the exploration for any layer.
pub fn run_layer(budget: &ExperimentBudget, layer: &ProblemShape) -> Study {
    let base = presets::eyeriss_like(14, 12);
    let variants = bypass_variants(&base, 1)
        .into_iter()
        .map(|arch| {
            let stores = [
                arch.level(1).stores(Operand::Input),
                arch.level(1).stores(Operand::Weight),
                arch.level(1).stores(Operand::Output),
            ];
            let explorer = Explorer::new(arch)
                .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
                .with_search(budget.search_config());
            let edp = explorer
                .explore(layer, MapspaceKind::RubyS)
                .map(|b| b.report.edp());
            VariantResult { stores, edp }
        })
        .collect();
    Study {
        layer: layer.name().to_string(),
        variants,
    }
}

/// Renders the study.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec!["GLB stores".into(), "best Ruby-S EDP".into()]);
    for v in &study.variants {
        t.row(vec![
            v.label(),
            v.edp
                .map(|e| format!("{e:.3e}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let best = study
        .best()
        .map(|v| v.label())
        .unwrap_or_else(|| "-".into());
    format!(
        "Extension: GLB bypass exploration on {} (Eyeriss-like 14x12)\n{}best storage mask: {best} (paper baseline: IFM+OFM)\n",
        study.layer,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_masks_explored_and_baseline_competitive() {
        let study = run(&ExperimentBudget::quick());
        assert_eq!(study.variants.len(), 8);
        let baseline = study.baseline().edp.expect("baseline maps");
        let best = study.best().and_then(|v| v.edp).expect("some variant maps");
        // The paper's baseline must be within 2x of the best mask found
        // at quick budget (it is usually the best or tied).
        assert!(baseline <= best * 2.0, "baseline {baseline} vs best {best}");
    }

    #[test]
    fn labels_are_descriptive() {
        let v = VariantResult {
            stores: [true, false, true],
            edp: None,
        };
        assert_eq!(v.label(), "IFM+OFM");
        let none = VariantResult {
            stores: [false; 3],
            edp: None,
        };
        assert_eq!(none.label(), "none");
    }
}
