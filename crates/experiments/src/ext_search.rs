//! Extension experiment: search strategies over the Ruby-S mapspace.
//!
//! The paper argues its mapspaces are "orthogonal to these search
//! strategies and can leverage them for improved performance" (GAMMA,
//! Mind Mappings, CoSA improve *search*, Ruby improves the *space*).
//! This experiment tests that claim within this codebase: on the same
//! Ruby-S mapspace, compare
//!
//! * the paper's random sampling,
//! * simulated annealing ([`ruby_core::search::anneal`]),
//! * the search-free utilization-first heuristic
//!   ([`ruby_core::mapspace::heuristic`]),
//! * pruned deterministic enumeration
//!   ([`SearchStrategy::Exhaustive`]),
//!
//! at equal evaluation budgets.

use ruby_core::mapspace::heuristic;
use ruby_core::prelude::*;

use crate::common::ExperimentBudget;
use crate::table::TextTable;

/// One strategy's result on one layer.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Strategy name.
    pub strategy: &'static str,
    /// Best EDP found.
    pub edp: Option<f64>,
    /// Mappings evaluated.
    pub evaluations: u64,
}

/// Per-layer strategy comparison.
#[derive(Debug, Clone)]
pub struct Study {
    /// Layer name.
    pub layer: String,
    /// Results in `[random, anneal, heuristic, exhaustive]` order.
    pub results: Vec<StrategyResult>,
}

/// Runs the comparison on an awkward Eyeriss layer (AlexNet conv2).
pub fn run(budget: &ExperimentBudget) -> Study {
    run_layer(budget, &suites::alexnet_layer2())
}

/// Runs the comparison on any layer.
pub fn run_layer(budget: &ExperimentBudget, layer: &ProblemShape) -> Study {
    let arch = presets::eyeriss_like(14, 12);
    let constraints = Constraints::eyeriss_row_stationary(3, 1);
    let space = Mapspace::new(arch.clone(), layer.clone(), MapspaceKind::RubyS)
        .with_constraints(constraints.clone());

    let random_outcome = Engine::new(&space)
        .with_config(SearchConfig {
            seed: budget.seed,
            max_evaluations: Some(budget.max_evaluations),
            termination: Some(budget.termination),
            threads: budget.threads,
            ..SearchConfig::default()
        })
        .run();
    // The engine maps `max_evaluations` onto the annealer's step budget.
    let anneal_outcome = Engine::new(&space)
        .with_config(SearchConfig {
            seed: budget.seed,
            max_evaluations: Some(budget.max_evaluations),
            termination: None,
            strategy: SearchStrategy::Anneal,
            ..SearchConfig::default()
        })
        .run();
    let exhaustive_outcome = Engine::new(&space)
        .with_config(SearchConfig {
            seed: budget.seed,
            max_evaluations: Some(budget.max_evaluations),
            termination: None,
            threads: budget.threads,
            strategy: SearchStrategy::Exhaustive,
            ..SearchConfig::default()
        })
        .run();
    let ctx = EvalContext::new(&arch, layer, ModelOptions::default());
    let heuristic_candidates = heuristic::utilization_first(&arch, layer, &constraints);
    let heuristic_evals = heuristic_candidates.len() as u64;
    let heuristic_edp = heuristic_candidates
        .iter()
        .filter_map(|m| evaluate_with(&ctx, m).ok())
        .map(|r| r.edp())
        .fold(f64::INFINITY, f64::min);

    Study {
        layer: layer.name().to_string(),
        results: vec![
            StrategyResult {
                strategy: "random",
                edp: random_outcome.best.map(|b| b.report.edp()),
                evaluations: random_outcome.evaluations,
            },
            StrategyResult {
                strategy: "anneal",
                edp: anneal_outcome.best.map(|b| b.report.edp()),
                evaluations: anneal_outcome.evaluations,
            },
            StrategyResult {
                strategy: "heuristic",
                edp: heuristic_edp.is_finite().then_some(heuristic_edp),
                evaluations: heuristic_evals,
            },
            StrategyResult {
                strategy: "exhaustive",
                edp: exhaustive_outcome.best.map(|b| b.report.edp()),
                evaluations: exhaustive_outcome.evaluations,
            },
        ],
    }
}

/// Renders the study.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec![
        "strategy".into(),
        "best EDP".into(),
        "evaluations".into(),
    ]);
    for r in &study.results {
        t.row(vec![
            r.strategy.to_string(),
            r.edp
                .map(|e| format!("{e:.3e}"))
                .unwrap_or_else(|| "-".into()),
            r.evaluations.to_string(),
        ]);
    }
    format!(
        "Extension: search strategies over Ruby-S on {} (Eyeriss-like 14x12)\n{}",
        study.layer,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_find_mappings() {
        let study = run(&ExperimentBudget::quick());
        for r in &study.results {
            assert!(r.edp.is_some(), "{} found nothing", r.strategy);
        }
        // The heuristic uses orders of magnitude fewer evaluations.
        let random_evals = study.results[0].evaluations;
        let heuristic_evals = study.results[2].evaluations;
        assert!(heuristic_evals * 10 < random_evals);
    }

    #[test]
    fn heuristic_is_competitive() {
        // The search-free heuristic must land within 2.5x of random
        // search's best EDP (it trades optimality for zero search).
        let study = run(&ExperimentBudget::quick());
        let random = study.results[0].edp.unwrap();
        let heuristic = study.results[2].edp.unwrap();
        assert!(
            heuristic <= random * 2.5,
            "heuristic {heuristic} vs random {random}"
        );
    }

    #[test]
    fn render_lists_strategies() {
        let s = render(&run(&ExperimentBudget::quick()));
        for name in ["random", "anneal", "heuristic", "exhaustive"] {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn exhaustive_is_competitive_at_equal_budget() {
        let study = run(&ExperimentBudget::quick());
        let random = study.results[0].edp.unwrap();
        let exhaustive = study.results[3].edp.unwrap();
        // At the quick budget enumeration only reaches the cheapest
        // cycle-floor regions; it must stay in random sampling's
        // ballpark (larger budgets close the gap, see EXPERIMENTS.md).
        assert!(
            exhaustive <= random * 1.5,
            "exhaustive {exhaustive} vs random {random}"
        );
    }
}
