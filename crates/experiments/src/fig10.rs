//! Fig. 10: Ruby-S vs PFM over the ResNet-50 layers on the Eyeriss-like
//! baseline — per-layer EDP / energy / cycle ratios plus whole-network
//! totals. The paper reports a 14% network EDP improvement from a 17%
//! cycle reduction at a 2% energy increase.

use ruby_core::prelude::*;

use crate::common::{compare_layers, ExperimentBudget, LayerComparison, NetworkTotals};
use crate::table::{pct_delta, TextTable};

/// The study's outcome.
#[derive(Debug, Clone)]
pub struct Study {
    /// Per-layer comparisons (PFM vs Ruby-S).
    pub layers: Vec<LayerComparison>,
    /// Layers skipped for lack of a valid mapping (should be empty).
    pub skipped: Vec<String>,
    /// Network EDP ratio (Ruby-S / PFM), weighting repeated layers.
    pub network_edp_ratio: f64,
    /// Network energy ratio.
    pub network_energy_ratio: f64,
    /// Network cycle ratio.
    pub network_cycle_ratio: f64,
}

/// Runs Fig. 10 on the 14×12 baseline with row-stationary constraints.
pub fn run(budget: &ExperimentBudget) -> Study {
    run_on(
        budget,
        &presets::eyeriss_like(14, 12),
        &Constraints::eyeriss_row_stationary(3, 1),
    )
}

/// Runs the same study on any architecture/constraints (used by the
/// Fig. 12 and sweep experiments).
pub fn run_on(budget: &ExperimentBudget, arch: &Architecture, constraints: &Constraints) -> Study {
    let suite = suites::resnet50();
    let explorer = Explorer::new(arch.clone())
        .with_constraints(constraints.clone())
        .with_search(budget.search_config());
    let shapes: Vec<ProblemShape> = suite.iter().cloned().collect();
    let (layers, skipped) = compare_layers(&explorer, &shapes, MapspaceKind::RubyS);

    let mut pfm = NetworkTotals::default();
    let mut ruby = NetworkTotals::default();
    for cmp in &layers {
        let repeats = suite
            .layers()
            .iter()
            .find(|(l, _)| l.name() == cmp.layer)
            .map(|(_, n)| *n)
            .unwrap_or(1);
        pfm.add(&cmp.pfm.report, repeats);
        ruby.add(&cmp.ruby.report, repeats);
    }
    Study {
        layers,
        skipped,
        network_edp_ratio: ruby.edp() / pfm.edp(),
        network_energy_ratio: ruby.energy / pfm.energy,
        network_cycle_ratio: ruby.cycles / pfm.cycles,
    }
}

/// Renders the per-layer table plus the network summary.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "EDP vs PFM".into(),
        "energy vs PFM".into(),
        "cycles vs PFM".into(),
        "Ruby-S util".into(),
    ]);
    for cmp in &study.layers {
        t.row(vec![
            cmp.layer.clone(),
            pct_delta(cmp.edp_ratio()),
            pct_delta(cmp.energy_ratio()),
            pct_delta(cmp.cycle_ratio()),
            format!("{:.1}%", cmp.ruby.report.utilization() * 100.0),
        ]);
    }
    let mut out = format!(
        "Fig. 10: ResNet-50 on the Eyeriss-like baseline (Ruby-S normalized to PFM)\n{}",
        t.render()
    );
    out.push_str(&format!(
        "network: EDP {}, energy {}, cycles {}\n",
        pct_delta(study.network_edp_ratio),
        pct_delta(study.network_energy_ratio),
        pct_delta(study.network_cycle_ratio),
    ));
    if !study.skipped.is_empty() {
        out.push_str(&format!(
            "skipped (no valid mapping): {:?}\n",
            study.skipped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruby_s_never_loses_to_pfm_and_wins_overall() {
        let study = run(&ExperimentBudget::quick());
        assert!(study.skipped.is_empty(), "skipped: {:?}", study.skipped);
        assert_eq!(study.layers.len(), suites::resnet50().len());
        // Network-level: Ruby-S must improve EDP (the headline result).
        assert!(
            study.network_edp_ratio < 1.0,
            "network EDP ratio {}",
            study.network_edp_ratio
        );
        assert!(study.network_cycle_ratio < 1.0);
    }

    #[test]
    fn render_has_network_summary() {
        let study = run(&ExperimentBudget::quick());
        let s = render(&study);
        assert!(s.contains("network:"));
        assert!(s.contains("conv1"));
    }
}
