//! Experiment harness for the Ruby reproduction: one module per table or
//! figure in the paper's evaluation, each producing a structured result
//! plus a text rendering that mirrors the published rows/series.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig7`]   | Fig. 7 — best-EDP-so-far vs mappings evaluated, four toy scenarios |
//! | [`table1`] | Table I — mapspace size vs tensor size |
//! | [`fig8`]   | Fig. 8 — EDP vs dimension size: Ruby-S vs PFM vs PFM+padding |
//! | [`fig9`]   | Fig. 9 — AlexNet layer-2 case study vs the handcrafted mapping |
//! | [`fig10`]  | Fig. 10 — ResNet-50 per layer on the Eyeriss-like baseline |
//! | [`fig11`]  | Fig. 11 — DeepBench on the Eyeriss-like baseline |
//! | [`fig12`]  | Fig. 12 — ResNet-50 on the Simba-like architecture |
//! | [`fig13`]  | Fig. 13 — area/EDP Pareto over PE-array configurations |
//! | [`fig14`]  | Fig. 14 — per-configuration EDP improvement over the sweep |
//!
//! Three extension studies go beyond the paper: [`ext_bypass`] (joint
//! GLB-bypass/mapping exploration), [`ext_search`] (random vs annealing
//! vs the search-free heuristic on the same Ruby-S space), and
//! [`ext_hierarchy`] (Ruby-S on a four-level clustered design).
//! [`records`] flattens any suite into timed per-layer search-quality
//! JSONL records (the `layer_records` binary writes
//! `BENCH_layers.jsonl`).
//!
//! Every experiment takes an [`ExperimentBudget`] so the same code runs as
//! a fast smoke test ([`ExperimentBudget::quick`]) or at paper scale
//! ([`ExperimentBudget::full`]). Seeds are fixed: runs are reproducible.

pub mod common;
pub mod ext_bypass;
pub mod ext_hierarchy;
pub mod ext_search;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod records;
pub mod table;
pub mod table1;

pub use common::{ExperimentBudget, LayerComparison};
