//! Extension experiment: imperfect factorization on deeper hierarchies.
//!
//! The paper evaluates three-level designs (DRAM/GLB/PE). Nothing in the
//! Ruby formulation is specific to three levels, so this experiment runs
//! the PFM-vs-Ruby-S comparison on a four-level clustered hierarchy
//! (DRAM → GLB → clusters → PEs) where misalignment can occur at *two*
//! fanout boundaries simultaneously — prime cluster or PE counts compound
//! the PFM utilization loss multiplicatively.

use ruby_core::prelude::*;

use crate::common::{compare_layers, geomean, ExperimentBudget, LayerComparison};
use crate::table::{pct_delta, TextTable};

/// The study's outcome for one clustered configuration.
#[derive(Debug, Clone)]
pub struct Study {
    /// Configuration description.
    pub config: String,
    /// Per-layer comparisons.
    pub layers: Vec<LayerComparison>,
    /// Layers without valid mappings.
    pub skipped: Vec<String>,
    /// Geometric-mean EDP ratio.
    pub mean_edp_ratio: f64,
}

/// Runs the study on a deliberately misaligned 5-cluster × 7-PE design
/// over a slice of ResNet-50.
pub fn run(budget: &ExperimentBudget) -> Study {
    run_config(budget, 5, 7)
}

/// Runs any clustered configuration.
pub fn run_config(budget: &ExperimentBudget, clusters: u64, pes: u64) -> Study {
    let arch = presets::clustered(clusters, pes);
    let explorer = Explorer::new(arch).with_search(budget.search_config());
    let layers: Vec<ProblemShape> = suites::resnet50()
        .iter()
        .filter(|l| l.name().contains("1x1") || l.name() == "fc1000")
        .cloned()
        .collect();
    let (comparisons, skipped) = compare_layers(&explorer, &layers, MapspaceKind::RubyS);
    let mean = geomean(comparisons.iter().map(LayerComparison::edp_ratio));
    Study {
        config: format!("{clusters} clusters x {pes} PEs"),
        layers: comparisons,
        skipped,
        mean_edp_ratio: mean,
    }
}

/// Renders the study.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "EDP vs PFM".into(),
        "Ruby-S util".into(),
    ]);
    for cmp in &study.layers {
        t.row(vec![
            cmp.layer.clone(),
            pct_delta(cmp.edp_ratio()),
            format!("{:.1}%", cmp.ruby.report.utilization() * 100.0),
        ]);
    }
    format!(
        "Extension: four-level hierarchy ({})\n{}mean EDP {}\n",
        study.config,
        t.render(),
        pct_delta(study.mean_edp_ratio)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_hierarchy_improves_with_ruby_s() {
        let study = run(&ExperimentBudget::quick());
        assert!(study.skipped.is_empty(), "skipped: {:?}", study.skipped);
        assert!(!study.layers.is_empty());
        assert!(
            study.mean_edp_ratio < 1.0,
            "mean EDP ratio {}",
            study.mean_edp_ratio
        );
    }

    #[test]
    fn aligned_cluster_counts_shrink_the_gap() {
        // Power-of-two fanouts align with channel counts: Ruby-S's edge
        // over PFM must be smaller than on the prime 5x7 design.
        let budget = ExperimentBudget::quick();
        let aligned = run_config(&budget, 4, 8);
        let misaligned = run_config(&budget, 5, 7);
        assert!(
            aligned.mean_edp_ratio >= misaligned.mean_edp_ratio - 0.05,
            "aligned {} vs misaligned {}",
            aligned.mean_edp_ratio,
            misaligned.mean_edp_ratio
        );
    }
}
