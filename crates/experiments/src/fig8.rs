//! Fig. 8: sweeping the dimension size of a rank-1 allocation over a
//! 16-PE linear array, comparing the best PFM mapping, the best PFM
//! mapping after padding to a multiple of 16, and the best Ruby-S
//! mapping. EDP is reported normalized to Ruby-S (the paper's "lower is
//! better" normalization).

use ruby_core::prelude::*;

use crate::common::ExperimentBudget;
use crate::table::TextTable;

/// The swept dimension sizes. 113 and 127 are the paper's callouts: both
/// prime, so PFM cannot parallelize them at all; 127 pads cheaply to 128
/// while 113 pads to 128 with ≈12% ineffectual work.
pub const SIZES: [u64; 10] = [96, 100, 104, 108, 112, 113, 120, 124, 127, 128];

/// One swept point.
#[derive(Debug, Clone)]
pub struct Point {
    /// The dimension size.
    pub size: u64,
    /// Best-EDP of PFM, normalized to Ruby-S.
    pub pfm_vs_ruby_s: f64,
    /// Best-EDP of PFM on the padded problem, normalized to Ruby-S.
    pub padded_vs_ruby_s: f64,
    /// Absolute Ruby-S EDP (the normalization base).
    pub ruby_s_edp: f64,
}

/// Runs the sweep with the paper's 16-PE toy array.
pub fn run(budget: &ExperimentBudget) -> Vec<Point> {
    run_for(budget, 16, &SIZES)
}

/// Runs the sweep for an arbitrary array width and size set.
pub fn run_for(budget: &ExperimentBudget, pes: u64, sizes: &[u64]) -> Vec<Point> {
    let arch = presets::toy_linear(pes, 1024);
    let constraints = Constraints::unconstrained(2);
    let explorer = Explorer::new(arch.clone()).with_search(budget.search_config());
    sizes
        .iter()
        .map(|&size| {
            let shape = ProblemShape::rank1(format!("d{size}"), size);
            // lint: allow(panics) — every mapspace here contains the
            // all-temporal serial mapping, so exploration cannot fail;
            // an empty result is a bug worth dying loudly over in an
            // experiment driver.
            let pfm = explorer
                .explore(&shape, MapspaceKind::Pfm)
                .expect("rank-1 problems always admit the serial mapping");
            // lint: allow(panics) — as above: Ruby-S ⊇ PFM.
            let ruby_s = explorer
                .explore(&shape, MapspaceKind::RubyS)
                .expect("Ruby-S is a superset of PFM");
            let padded_shape = padding::pad_to_array(&shape, &arch, &constraints);
            // lint: allow(panics) — as above for the padded problem.
            let padded = explorer
                .explore(&padded_shape, MapspaceKind::Pfm)
                .expect("padded problems admit the serial mapping");
            Point {
                size,
                pfm_vs_ruby_s: pfm.report.edp() / ruby_s.report.edp(),
                padded_vs_ruby_s: padded.report.edp() / ruby_s.report.edp(),
                ruby_s_edp: ruby_s.report.edp(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[Point]) -> String {
    let mut t = TextTable::new(vec![
        "D".into(),
        "PFM / Ruby-S".into(),
        "PFM+pad / Ruby-S".into(),
        "Ruby-S EDP".into(),
    ]);
    for p in points {
        t.row(vec![
            p.size.to_string(),
            format!("{:.3}", p.pfm_vs_ruby_s),
            format!("{:.3}", p.padded_vs_ruby_s),
            format!("{:.3e}", p.ruby_s_edp),
        ]);
    }
    format!(
        "Fig. 8: rank-1 sweep over a 16-PE array (normalized to Ruby-S; 1.0 = parity)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> ExperimentBudget {
        ExperimentBudget {
            max_evaluations: 2_000,
            ..ExperimentBudget::quick()
        }
    }

    #[test]
    fn prime_sizes_punish_pfm() {
        let pts = run_for(&budget(), 16, &[113, 127]);
        for p in &pts {
            assert!(
                p.pfm_vs_ruby_s > 2.0,
                "D={}: PFM should be far worse than Ruby-S, got {:.2}",
                p.size,
                p.pfm_vs_ruby_s
            );
        }
    }

    #[test]
    fn aligned_sizes_reach_parity() {
        let pts = run_for(&budget(), 16, &[128]);
        assert!(
            (0.9..1.1).contains(&pts[0].pfm_vs_ruby_s),
            "D=128 should be near parity, got {:.3}",
            pts[0].pfm_vs_ruby_s
        );
    }

    #[test]
    fn padding_costs_more_at_113_than_127() {
        // The paper: at D=127 padding adds one ineffectual MAC (cheap);
        // at D=113 it adds 15 (≈12% overhead).
        let pts = run_for(&budget(), 16, &[113, 127]);
        assert!(pts[0].padded_vs_ruby_s > pts[1].padded_vs_ruby_s);
        assert!(
            pts[1].padded_vs_ruby_s < 1.1,
            "127→128 padding is nearly free"
        );
        assert!(
            pts[0].padded_vs_ruby_s > 1.05,
            "113→128 padding is not free"
        );
    }

    #[test]
    fn render_has_every_size() {
        let pts = run_for(&budget(), 16, &[96, 113]);
        let s = render(&pts);
        assert!(s.contains("96"));
        assert!(s.contains("113"));
    }
}
