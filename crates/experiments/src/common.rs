//! Shared experiment plumbing: budgets and per-layer comparison runs.

use ruby_core::prelude::*;
use ruby_core::search::BestMapping;
use ruby_core::search::SearchStrategy;

/// How much search effort an experiment spends. All experiments accept a
/// budget so the same code runs as a CI smoke test or at paper scale.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentBudget {
    /// Cap on sampled mappings per (layer, mapspace) search.
    pub max_evaluations: u64,
    /// Timeloop-style termination: consecutive valid non-improving
    /// mappings (the paper uses 3000).
    pub termination: u64,
    /// Search threads (the paper uses 24).
    pub threads: usize,
    /// Averaging runs for the stochastic-trace study of Fig. 7
    /// (the paper uses 100).
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentBudget {
    /// Small budget for tests (seconds per experiment).
    pub fn quick() -> Self {
        ExperimentBudget {
            max_evaluations: 3_000,
            termination: 400,
            threads: 2,
            repeats: 3,
            seed: 1,
        }
    }

    /// Paper-scale budget for the bench binaries.
    pub fn full() -> Self {
        ExperimentBudget {
            max_evaluations: 60_000,
            termination: 3_000,
            threads: 8,
            repeats: 20,
            seed: 1,
        }
    }

    /// The corresponding search configuration. Experiments use the
    /// `Sampled` strategy — the paper's plain generative sampling — so
    /// that mapspace quality, not search cleverness, drives the
    /// comparisons; the permuted-walk `Random` strategy draws uniformly
    /// over enumeration leaves, a different (and for figure
    /// reproduction, wrong) sampling distribution.
    pub fn search_config(&self) -> SearchConfig {
        SearchConfig {
            seed: self.seed,
            max_evaluations: Some(self.max_evaluations),
            termination: Some(self.termination),
            threads: self.threads,
            strategy: SearchStrategy::Sampled,
            ..SearchConfig::default()
        }
    }
}

/// One layer's best mappings under the PFM baseline and a Ruby variant,
/// with the ratios the paper plots (normalized to PFM).
#[derive(Debug, Clone)]
pub struct LayerComparison {
    /// Layer name.
    pub layer: String,
    /// Best PFM result.
    pub pfm: BestMapping,
    /// Best result in the compared mapspace.
    pub ruby: BestMapping,
}

impl LayerComparison {
    /// EDP normalized to PFM (< 1.0 = Ruby wins).
    pub fn edp_ratio(&self) -> f64 {
        self.ruby.report.edp() / self.pfm.report.edp()
    }

    /// Energy normalized to PFM.
    pub fn energy_ratio(&self) -> f64 {
        self.ruby.report.energy() / self.pfm.report.energy()
    }

    /// Cycles normalized to PFM.
    pub fn cycle_ratio(&self) -> f64 {
        self.ruby.report.cycles() as f64 / self.pfm.report.cycles() as f64
    }
}

/// Runs PFM and `kind` searches for every layer, returning per-layer
/// comparisons. Layers with no valid mapping in either space are skipped
/// (reported by name in the second tuple element).
pub fn compare_layers(
    explorer: &Explorer,
    layers: &[ProblemShape],
    kind: MapspaceKind,
) -> (Vec<LayerComparison>, Vec<String>) {
    let mut out = Vec::with_capacity(layers.len());
    let mut skipped = Vec::new();
    for layer in layers {
        let pfm = explorer.explore(layer, MapspaceKind::Pfm);
        let ruby = explorer.explore(layer, kind);
        match (pfm, ruby) {
            (Some(pfm), Some(ruby)) => out.push(LayerComparison {
                layer: layer.name().to_string(),
                pfm,
                ruby,
            }),
            _ => skipped.push(layer.name().to_string()),
        }
    }
    (out, skipped)
}

/// Whole-network totals: energy sums and cycle sums weighted by layer
/// repeat counts, combined into a network EDP.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkTotals {
    /// Total energy (weighted by repeats).
    pub energy: f64,
    /// Total cycles (weighted by repeats).
    pub cycles: f64,
}

impl NetworkTotals {
    /// Accumulates one layer's report `n` times.
    pub fn add(&mut self, report: &CostReport, n: u64) {
        self.energy += report.energy() * n as f64;
        self.cycles += report.cycles() as f64 * n as f64;
    }

    /// The network-level EDP.
    pub fn edp(&self) -> f64 {
        self.energy * self.cycles
    }
}

/// Geometric mean of an iterator of ratios (1.0 if empty).
pub fn geomean(ratios: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in ratios {
        log_sum += r.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_translate_to_configs() {
        let q = ExperimentBudget::quick();
        let cfg = q.search_config();
        assert_eq!(cfg.max_evaluations, Some(q.max_evaluations));
        assert_eq!(cfg.termination, Some(q.termination));
        assert!(ExperimentBudget::full().max_evaluations > q.max_evaluations);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean([]), 1.0);
        assert!((geomean([0.5, 2.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([0.8, 0.8]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn network_totals_weighting() {
        let mut t = NetworkTotals::default();
        // Two synthetic reports via actual evaluations would be heavy;
        // emulate with the public API instead.
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 16);
        let m = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let r = evaluate(&arch, &shape, &m, &ModelOptions::default()).unwrap();
        t.add(&r, 2);
        assert!((t.energy - 2.0 * r.energy()).abs() < 1e-9);
        assert!((t.cycles - 2.0 * r.cycles() as f64).abs() < 1e-9);
        assert!(t.edp() > 0.0);
    }

    #[test]
    fn compare_layers_on_toy() {
        let explorer = Explorer::new(presets::toy_linear(16, 1024))
            .with_search(ExperimentBudget::quick().search_config());
        let layers = suites::rank1_sweep(&[113]);
        let (cmp, skipped) = compare_layers(&explorer, &layers, MapspaceKind::RubyS);
        assert!(skipped.is_empty());
        assert_eq!(cmp.len(), 1);
        assert!(cmp[0].edp_ratio() < 1.0);
        assert!(cmp[0].cycle_ratio() < 1.0);
    }
}
