//! Table I: mapspace size (number of tilings) for a rank-1 tensor on a
//! two-level hierarchy with a spatial fanout of 9, across tensor sizes
//! 3…4096. PFM is additionally validity-filtered by exhaustive
//! enumeration, as in the paper ("we generate the possible PFM
//! combinations using eq (1) and further select only those mappings which
//! are valid").

use ruby_core::prelude::*;

use crate::table::TextTable;

/// The tensor sizes of Table I.
pub const SIZES: [u64; 8] = [3, 9, 24, 99, 625, 1000, 2048, 4096];

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Row {
    /// Tensor size `D`.
    pub size: u64,
    /// Total PFM tilings.
    pub pfm: u128,
    /// PFM tilings surviving the validity filter (capacity + fanout).
    pub pfm_valid: u128,
    /// Ruby (unconstrained) tilings.
    pub ruby: u128,
    /// Ruby-S tilings.
    pub ruby_s: u128,
    /// Ruby-T tilings.
    pub ruby_t: u128,
}

/// Computes Table I for the paper's setup (9 PEs, 1 KiB scratchpads).
pub fn run() -> Vec<Row> {
    run_for(9, 1024, &SIZES)
}

/// Computes the table for an arbitrary fanout/scratchpad/size set.
pub fn run_for(pes: u64, scratch_bytes: u64, sizes: &[u64]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&size| {
            let shape = ProblemShape::rank1(format!("d{size}"), size);
            let arch = presets::toy_linear(pes, scratch_bytes);
            let count = |kind| Mapspace::new(arch.clone(), shape.clone(), kind).count_tilings();
            let pfm_space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::Pfm);
            let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
            let pfm_valid = pfm_space
                .enumerate_perfect(usize::MAX)
                .iter()
                .filter(|m| evaluate_with(&ctx, m).is_ok())
                .count() as u128;
            Row {
                size,
                pfm: count(MapspaceKind::Pfm),
                pfm_valid,
                ruby: count(MapspaceKind::Ruby),
                ruby_s: count(MapspaceKind::RubyS),
                ruby_t: count(MapspaceKind::RubyT),
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "size".into(),
        "PFM".into(),
        "PFM(valid)".into(),
        "Ruby-S".into(),
        "Ruby-T".into(),
        "Ruby".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            r.pfm.to_string(),
            r.pfm_valid.to_string(),
            r.ruby_s.to_string(),
            r.ruby_t.to_string(),
            r.ruby.to_string(),
        ]);
    }
    format!(
        "Table I: mapspace sizes (rank-1 tensor, 2 levels, fanout 9)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_paper() {
        for row in run_for(9, 1024, &[24, 99, 625]) {
            assert!(row.pfm_valid <= row.pfm, "size {}", row.size);
            assert!(row.pfm <= row.ruby_s, "size {}", row.size);
            assert!(row.ruby_s <= row.ruby_t, "size {}", row.size);
            assert!(row.ruby_t <= row.ruby, "size {}", row.size);
        }
    }

    #[test]
    fn ruby_explodes_with_size() {
        let rows = run_for(9, 1024, &[99, 4096]);
        assert!(rows[1].ruby > rows[0].ruby * 100);
        // Ruby-S stays manageable: within a small factor of PFM·fanout·D.
        assert!(rows[1].ruby_s < rows[1].ruby / 100);
    }

    #[test]
    fn tiny_prime_has_trivial_pfm_space() {
        let rows = run_for(9, 1024, &[3]);
        // 3 across (spad T, DRAM spatial, DRAM T) = 3 placements.
        assert_eq!(rows[0].pfm, 3);
        assert!(rows[0].pfm_valid >= 1);
    }

    #[test]
    fn render_lists_all_sizes() {
        let s = render(&run_for(9, 1024, &[3, 24]));
        assert!(s.contains("Table I"));
        assert!(s.contains("24"));
    }
}
