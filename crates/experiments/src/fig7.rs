//! Fig. 7: quality of the best mapping found vs number of evaluated
//! mappings, for PFM / Ruby / Ruby-S / Ruby-T on four toy scenarios:
//!
//! * (a) GEMM over two 100×100 tensors, 5 linear PEs (aligned),
//! * (b) the same GEMM on 16 PEs (misaligned),
//! * (c) a 3×3×64 filter over a 28×28×64 image, 8 PEs, C/M spatial only
//!   (aligned),
//! * (d) the same convolution on 15 PEs (misaligned).
//!
//! Each PE carries a 1 KiB scratchpad, as in the paper. The search is
//! plain random sampling; traces are averaged over `budget.repeats` runs
//! ("we only evaluate the first 10,000 generated mappings over 100 runs
//! to average out the effect of the stochastic search algorithm").

use ruby_core::prelude::*;

use crate::common::ExperimentBudget;
use crate::table::TextTable;

/// Checkpoints (mappings evaluated) at which the best EDP is recorded.
pub const CHECKPOINTS: [u64; 7] = [10, 30, 100, 300, 1_000, 3_000, 10_000];

/// One toy scenario of Fig. 7.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Sub-figure label ("a" through "d").
    pub label: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The mapspaces under comparison, keyed by kind.
    pub spaces: Vec<Mapspace>,
}

/// Averaged best-EDP-so-far for one scenario: `traces[kind][checkpoint]`
/// (`f64::INFINITY` until the first valid mapping appears).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: &'static str,
    /// The scenario's description.
    pub description: &'static str,
    /// Per-kind averaged traces, in [`MapspaceKind::ALL`] order.
    pub traces: [Vec<f64>; 4],
}

/// Builds the four scenarios.
pub fn scenarios() -> Vec<Scenario> {
    let gemm = suites::toy_gemm_100();
    let conv = suites::toy_conv_28();
    let mk = |shape: &ProblemShape, pes: u64, constrained: bool| -> Vec<Mapspace> {
        MapspaceKind::ALL
            .iter()
            .map(|&kind| {
                let arch = presets::toy_linear(pes, 1024);
                let space = Mapspace::new(arch, shape.clone(), kind);
                if constrained {
                    space.with_constraints(Constraints::toy_cm(2))
                } else {
                    space
                }
            })
            .collect()
    };
    vec![
        Scenario {
            label: "a",
            description: "GEMM 100x100x100, 5 PEs (aligned)",
            spaces: mk(&gemm, 5, false),
        },
        Scenario {
            label: "b",
            description: "GEMM 100x100x100, 16 PEs (misaligned)",
            spaces: mk(&gemm, 16, false),
        },
        Scenario {
            label: "c",
            description: "conv 3x3x64 on 28x28x64, 8 PEs, C/M spatial (aligned)",
            spaces: mk(&conv, 8, true),
        },
        Scenario {
            label: "d",
            description: "conv 3x3x64 on 28x28x64, 15 PEs, C/M spatial (misaligned)",
            spaces: mk(&conv, 15, true),
        },
    ]
}

/// Runs the full Fig. 7 study.
pub fn run(budget: &ExperimentBudget) -> Vec<ScenarioResult> {
    scenarios()
        .into_iter()
        .map(|scenario| {
            let traces = std::array::from_fn(|k| averaged_trace(&scenario.spaces[k], budget));
            ScenarioResult {
                label: scenario.label,
                description: scenario.description,
                traces,
            }
        })
        .collect()
}

/// Average best-EDP at each checkpoint over `budget.repeats` independent
/// random-search runs of one mapspace.
pub fn averaged_trace(space: &Mapspace, budget: &ExperimentBudget) -> Vec<f64> {
    // lint: allow(panics) — CHECKPOINTS is a non-empty const array.
    let max_evals = budget
        .max_evaluations
        .min(*CHECKPOINTS.last().expect("non-empty"));
    let checkpoints: Vec<u64> = CHECKPOINTS
        .iter()
        .copied()
        .filter(|&c| c <= max_evals)
        .collect();
    let mut sums = vec![0.0f64; checkpoints.len()];
    let mut counts = vec![0u64; checkpoints.len()];
    for rep in 0..budget.repeats {
        let config = SearchConfig {
            seed: budget.seed + 1000 * rep as u64,
            max_evaluations: Some(max_evals),
            termination: None,
            threads: 1,
            ..SearchConfig::default()
        };
        let outcome = ruby_core::search::Engine::new(space)
            .with_config(config)
            .run();
        for (i, &cp) in checkpoints.iter().enumerate() {
            // Best cost achieved at or before this checkpoint.
            let best = outcome
                .trace
                .iter()
                .take_while(|&&(e, _)| e <= cp)
                .map(|&(_, c)| c)
                .last();
            if let Some(best) = best {
                sums[i] += best;
                counts[i] += 1;
            }
        }
    }
    checkpoints
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if counts[i] > 0 {
                sums[i] / counts[i] as f64
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

/// Renders the study as one table per scenario.
pub fn render(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!("Fig. 7({}): {}\n", r.label, r.description));
        let mut header = vec!["evaluated".to_string()];
        header.extend(MapspaceKind::ALL.iter().map(|k| k.name().to_string()));
        let mut table = TextTable::new(header);
        let rows = r.traces.iter().map(Vec::len).max().unwrap_or(0);
        for (i, &cp) in CHECKPOINTS.iter().take(rows).enumerate() {
            let mut row = vec![cp.to_string()];
            for trace in &r.traces {
                row.push(match trace.get(i) {
                    Some(v) if v.is_finite() => format!("{v:.3e}"),
                    _ => "-".to_string(),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_paper_setup() {
        let s = scenarios();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].spaces.len(), 4);
        assert_eq!(s[1].spaces[0].arch().total_mac_units(), 16);
        assert_eq!(s[3].spaces[0].arch().total_mac_units(), 15);
        // The conv scenarios restrict spatial dims to C and M.
        assert!(s[2].spaces[0].constraints().spatial_x(0).contains(Dim::C));
        assert!(!s[2].spaces[0].constraints().spatial_x(0).contains(Dim::Q));
    }

    #[test]
    fn traces_improve_monotonically() {
        let budget = ExperimentBudget {
            repeats: 2,
            max_evaluations: 300,
            ..ExperimentBudget::quick()
        };
        let space = &scenarios()[1].spaces[2]; // Ruby-S on 16 PEs
        let trace = averaged_trace(space, &budget);
        let finite: Vec<f64> = trace.into_iter().filter(|v| v.is_finite()).collect();
        assert!(!finite.is_empty());
        assert!(finite.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn misaligned_gemm_favors_imperfect_spaces() {
        // Fig. 7b: on 16 PEs the best Ruby-S mapping must beat the best
        // PFM mapping (100 shares no factor ≥ 10 with 16).
        let budget = ExperimentBudget {
            repeats: 2,
            max_evaluations: 2_000,
            ..ExperimentBudget::quick()
        };
        let r = run(&budget);
        let b = &r[1];
        let last_pfm = *b.traces[0].last().unwrap();
        let last_ruby_s = *b.traces[2].last().unwrap();
        assert!(
            last_ruby_s < last_pfm,
            "Ruby-S {last_ruby_s} should beat PFM {last_pfm} on 16 PEs"
        );
    }

    #[test]
    fn render_contains_all_scenarios() {
        let budget = ExperimentBudget {
            repeats: 1,
            max_evaluations: 100,
            ..ExperimentBudget::quick()
        };
        let results = run(&budget);
        let s = render(&results);
        for label in ["7(a)", "7(b)", "7(c)", "7(d)"] {
            assert!(s.contains(label), "missing {label}:\n{s}");
        }
        assert!(s.contains("Ruby-S"));
    }
}
