//! Minimal text-table rendering for experiment reports.

/// A simple left-padded text table.
///
/// # Examples
///
/// ```
/// use ruby_experiments::table::TextTable;
///
/// let mut t = TextTable::new(vec!["layer".into(), "EDP".into()]);
/// t.row(vec!["conv1".into(), "0.86".into()]);
/// let s = t.render();
/// assert!(s.contains("conv1"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
        self
    }

    /// The number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl TextTable {
    /// Renders the table as CSV (RFC 4180-style quoting for cells
    /// containing commas, quotes or newlines).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |row: &[String], out: &mut String| {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a ratio as a percentage delta vs 1.0 (e.g. 0.86 → "-14.0%").
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a float in compact scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = TextTable::new(vec!["name".into(), "note".into()]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["quoted\"x".into(), "fine".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert_eq!(lines[2], "\"quoted\"\"x\",fine");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct_delta(0.86), "-14.0%");
        assert_eq!(pct_delta(1.10), "+10.0%");
        assert!(sci(1234.5).contains('e'));
    }
}
