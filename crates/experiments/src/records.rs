//! Per-layer search records: one timed, search-quality-annotated record
//! per unique suite layer, serialized as JSONL for offline analysis.
//!
//! Where the figure modules aggregate (geomean ratios, network totals),
//! this module preserves the raw per-layer picture the telemetry layer
//! exposes: wall-clock seconds, the evaluation/valid/duplicate split,
//! pruning counters, and the best mapping's headline numbers. The
//! `layer_records` bench binary writes `BENCH_layers.jsonl` from it.

use std::time::Instant;

use ruby_core::prelude::*;

use crate::common::ExperimentBudget;

/// One layer's timed search, flattened for JSONL consumption. Shares
/// the versioned schema of `SearchOutcome` and the telemetry stream.
#[derive(Debug, Clone)]
pub struct LayerRecord {
    /// Record schema version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Suite the layer came from.
    pub suite: String,
    /// Layer name.
    pub layer: String,
    /// Mapspace kind searched.
    pub mapspace: String,
    /// How many times the network repeats this layer.
    pub repeats: u64,
    /// Wall-clock seconds spent searching this layer.
    pub seconds: f64,
    /// Candidates scored (valid + invalid + duplicates).
    pub evaluations: u64,
    /// Fully evaluated, model-valid mappings.
    pub valid: u64,
    /// Model-rejected candidates.
    pub invalid: u64,
    /// Memo-cache hits.
    pub duplicates: u64,
    /// Enumeration subtrees discarded by the cost lower bound.
    pub pruned_subtrees: u64,
    /// Candidates discarded by the cost lower bound.
    pub pruned_mappings: u64,
    /// Whether the search provably covered the deduplicated space.
    pub exhausted: bool,
    /// Whether the run was cut short (budget, deadline, interrupt, or
    /// exhausted worker-restart budget) rather than finishing.
    pub stopped_early: bool,
    /// Panicking worker bodies restarted by the supervisor.
    pub worker_restarts: u64,
    /// Best EDP found, or `-1.0` when no valid mapping was found.
    pub best_edp: f64,
    /// Best mapping's cycle count (0 when none was found).
    pub best_cycles: u64,
    /// Best mapping's PE-array utilization (0.0 when none was found).
    pub utilization: f64,
}

serde::impl_serde_struct!(LayerRecord {
    schema,
    suite,
    layer,
    mapspace,
    repeats,
    seconds,
    evaluations,
    valid,
    invalid,
    duplicates,
    pruned_subtrees,
    pruned_mappings,
    exhausted,
    stopped_early,
    worker_restarts,
    best_edp,
    best_cycles,
    utilization,
});

impl LayerRecord {
    fn from_outcome(
        suite: &str,
        layer: &str,
        kind: MapspaceKind,
        repeats: u64,
        seconds: f64,
        outcome: &SearchOutcome,
    ) -> LayerRecord {
        let best = outcome.best.as_ref();
        LayerRecord {
            schema: SCHEMA_VERSION,
            suite: suite.to_owned(),
            layer: layer.to_owned(),
            mapspace: kind.name().to_owned(),
            repeats,
            seconds,
            evaluations: outcome.evaluations,
            valid: outcome.valid,
            invalid: outcome.invalid,
            duplicates: outcome.duplicates,
            pruned_subtrees: outcome.pruned_subtrees,
            pruned_mappings: outcome.pruned_mappings,
            exhausted: outcome.exhausted,
            stopped_early: outcome.stopped_early,
            worker_restarts: outcome.worker_restarts,
            best_edp: best.map_or(-1.0, |b| b.report.edp()),
            best_cycles: best.map_or(0, |b| b.report.cycles()),
            utilization: best.map_or(0.0, |b| b.report.utilization()),
        }
    }
}

/// Searches every unique layer of `suite` in the `kind` mapspace on the
/// Eyeriss-like 14×12 baseline (row-stationary constraints, the Fig. 10
/// setup) and returns one timed record per layer, in suite order.
pub fn suite_records(
    suite: &suites::Suite,
    budget: &ExperimentBudget,
    kind: MapspaceKind,
) -> Vec<LayerRecord> {
    let explorer = Explorer::new(presets::eyeriss_like(14, 12))
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(budget.search_config());
    records_with(&explorer, suite, kind)
}

/// Like [`suite_records`], but over a caller-supplied explorer (any
/// architecture, constraints and search configuration).
pub fn records_with(
    explorer: &Explorer,
    suite: &suites::Suite,
    kind: MapspaceKind,
) -> Vec<LayerRecord> {
    suite
        .layers()
        .iter()
        .map(|(layer, repeats)| {
            let start = Instant::now();
            let outcome = explorer.explore_with_outcome(layer, kind);
            let seconds = start.elapsed().as_secs_f64();
            LayerRecord::from_outcome(
                suite.name(),
                layer.name(),
                kind,
                *repeats,
                seconds,
                &outcome,
            )
        })
        .collect()
}

/// Serializes records as JSONL: one record per line, in input order.
pub fn to_jsonl(records: &[LayerRecord]) -> String {
    let mut out = String::new();
    for record in records {
        // lint: allow(panics) — record trees contain no non-serializable
        // values, so serialization cannot fail.
        out.push_str(&serde_json::to_string(record).expect("records always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize as _;

    fn tiny_suite() -> suites::Suite {
        suites::Suite::new(
            "tiny",
            vec![
                (ProblemShape::rank1("r113", 113), 2),
                (ProblemShape::rank1("r64", 64), 1),
            ],
        )
    }

    fn toy_explorer() -> Explorer {
        let budget = ExperimentBudget {
            max_evaluations: 500,
            termination: 100,
            threads: 1,
            repeats: 1,
            seed: 1,
        };
        Explorer::new(presets::toy_linear(16, 1024)).with_search(budget.search_config())
    }

    #[test]
    fn records_cover_every_layer_with_consistent_counters() {
        let records = records_with(&toy_explorer(), &tiny_suite(), MapspaceKind::RubyS);
        assert_eq!(records.len(), 2);
        let r = &records[0];
        assert_eq!(r.schema, SCHEMA_VERSION);
        assert_eq!(r.suite, "tiny");
        assert_eq!(r.layer, "r113");
        assert_eq!(r.mapspace, "Ruby-S");
        assert_eq!(r.repeats, 2);
        assert_eq!(r.evaluations, r.valid + r.invalid + r.duplicates);
        assert!(!r.stopped_early, "uninterrupted smoke run finishes");
        assert_eq!(r.worker_restarts, 0);
        assert!(r.seconds >= 0.0);
        assert!(r.best_edp > 0.0, "113 has a valid Ruby-S mapping");
        assert_eq!(r.best_cycles, 8, "imperfect factors reach the floor");
        assert!(r.utilization > 0.0);
    }

    #[test]
    fn jsonl_emits_one_round_trippable_record_per_line() {
        let records = records_with(&toy_explorer(), &tiny_suite(), MapspaceKind::RubyS);
        let jsonl = to_jsonl(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), records.len());
        for (line, record) in lines.iter().zip(&records) {
            let value = serde_json::from_str::<serde::Value>(line).expect("line parses");
            assert_eq!(
                value.get("schema"),
                Some(&serde::Value::U64(SCHEMA_VERSION))
            );
            let back = LayerRecord::from_value(&value).expect("record round-trips");
            assert_eq!(back.layer, record.layer);
            assert_eq!(back.evaluations, record.evaluations);
            assert_eq!(back.best_edp.to_bits(), record.best_edp.to_bits());
        }
    }
}
