//! Fig. 14: per-configuration EDP improvement of Ruby-S over PFM across
//! the PE-array sweep (2×7 … 16×16). The paper reports an average
//! improvement around 24% for ResNet-50 (up to 55% on some
//! configurations) and about 20% for the DeepBench subselection.

use crate::common::{geomean, ExperimentBudget};
use crate::fig13::{self, Strategy, SuiteChoice, SweepPoint};
use crate::table::{pct_delta, TextTable};

/// EDP ratios per configuration.
#[derive(Debug, Clone)]
pub struct ConfigImprovement {
    /// Architecture name.
    pub config: String,
    /// Ruby-S EDP / PFM EDP (< 1.0 = improvement).
    pub ruby_s_ratio: f64,
    /// Padded-PFM EDP / PFM EDP.
    pub padded_ratio: f64,
}

/// The study's outcome.
#[derive(Debug, Clone)]
pub struct Study {
    /// Which suite was swept.
    pub choice: SuiteChoice,
    /// Per-configuration improvements.
    pub configs: Vec<ConfigImprovement>,
    /// Geometric-mean Ruby-S ratio.
    pub mean_ruby_s_ratio: f64,
    /// Best (smallest) Ruby-S ratio.
    pub best_ruby_s_ratio: f64,
}

/// Derives Fig. 14 from a Fig. 13 sweep (re-running the underlying
/// searches).
pub fn run(budget: &ExperimentBudget, choice: SuiteChoice) -> Study {
    from_points(&fig13::run(budget, choice), choice)
}

/// Computes the improvement table from existing sweep points.
pub fn from_points(points: &[SweepPoint], choice: SuiteChoice) -> Study {
    let mut configs = Vec::new();
    let mut names: Vec<&str> = points.iter().map(|p| p.config.as_str()).collect();
    names.dedup();
    for name in names {
        let edp_of = |s: Strategy| {
            points
                .iter()
                .find(|p| p.config == name && p.strategy == s)
                .map(|p| p.edp)
        };
        if let (Some(pfm), Some(ruby), Some(padded)) = (
            edp_of(Strategy::Pfm),
            edp_of(Strategy::RubyS),
            edp_of(Strategy::PfmPadded),
        ) {
            configs.push(ConfigImprovement {
                config: name.to_string(),
                ruby_s_ratio: ruby / pfm,
                padded_ratio: padded / pfm,
            });
        }
    }
    let mean = geomean(configs.iter().map(|c| c.ruby_s_ratio));
    let best = configs
        .iter()
        .map(|c| c.ruby_s_ratio)
        .fold(f64::INFINITY, f64::min);
    Study {
        choice,
        configs,
        mean_ruby_s_ratio: mean,
        best_ruby_s_ratio: best,
    }
}

/// Renders the study.
pub fn render(study: &Study) -> String {
    let label = match study.choice {
        SuiteChoice::Resnet => "a: ResNet-50",
        SuiteChoice::DeepBench => "b: DeepBench subselection",
    };
    let mut t = TextTable::new(vec![
        "config".into(),
        "Ruby-S EDP vs PFM".into(),
        "PFM+pad EDP vs PFM".into(),
    ]);
    for c in &study.configs {
        t.row(vec![
            c.config.clone(),
            pct_delta(c.ruby_s_ratio),
            pct_delta(c.padded_ratio),
        ]);
    }
    format!(
        "Fig. 14{label}: per-configuration EDP improvement\n{}mean {}, best {}\n",
        t.render(),
        pct_delta(study.mean_ruby_s_ratio),
        pct_delta(study.best_ruby_s_ratio),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_improves_or_ties() {
        let study = run(&ExperimentBudget::quick(), SuiteChoice::Resnet);
        assert!(!study.configs.is_empty());
        for c in &study.configs {
            assert!(
                c.ruby_s_ratio <= 1.05,
                "{}: Ruby-S should not lose, ratio {}",
                c.config,
                c.ruby_s_ratio
            );
        }
        assert!(
            study.mean_ruby_s_ratio < 1.0,
            "mean {}",
            study.mean_ruby_s_ratio
        );
    }

    #[test]
    fn from_points_reuses_sweep() {
        let points = fig13::run(&ExperimentBudget::quick(), SuiteChoice::DeepBench);
        let study = from_points(&points, SuiteChoice::DeepBench);
        assert_eq!(study.configs.len(), points.len() / 3);
        assert!(render(&study).contains("Fig. 14b"));
    }
}
