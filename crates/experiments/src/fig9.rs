//! Fig. 9: the AlexNet layer-2 case study on the Eyeriss-like baseline.
//!
//! Layer 2 of AlexNet (per-group IFM 27×27×48, 5×5 filters, 96 output
//! channels) is the classic case where a handcrafted strip-mined mapping
//! beats the PFM mapper: the handcrafted schedule *folds* a whole output
//! row across the array — an imperfect spatial split (27 over 14 columns)
//! that the perfect-factorization space cannot express. Ruby-S reaches
//! the handcrafted utilization automatically and trims GLB traffic.

use ruby_core::prelude::*;

use crate::common::ExperimentBudget;
use crate::table::TextTable;

/// One contender's results.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Contender name.
    pub name: &'static str,
    /// Its evaluation.
    pub report: CostReport,
}

/// The case-study results: handcrafted vs PFM vs Ruby-S.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The three contenders.
    pub entries: Vec<Entry>,
}

impl CaseStudy {
    /// The entry by name.
    pub fn entry(&self, name: &str) -> &Entry {
        // lint: allow(panics) — callers pass the fixed contender names
        // this module itself defines; a miss is a typo in this file.
        self.entries
            .iter()
            .find(|e| e.name == name)
            .expect("known contender")
    }

    /// Ruby-S EDP relative to PFM.
    pub fn ruby_s_edp_vs_pfm(&self) -> f64 {
        self.entry("Ruby-S").report.edp() / self.entry("PFM").report.edp()
    }

    /// Ruby-S energy relative to PFM.
    pub fn ruby_s_energy_vs_pfm(&self) -> f64 {
        self.entry("Ruby-S").report.energy() / self.entry("PFM").report.energy()
    }
}

/// The handcrafted strip-mined mapping: a whole output row (`Q = 27`)
/// folded over the 14 array columns, output channels over the 12 rows,
/// weights held stationary per PE with channels streamed in blocks.
pub fn handcrafted_mapping(shape: &ProblemShape) -> Mapping {
    let mut b = Mapping::builder(3);
    // Array: fold the 27-wide output row across the 14 columns
    // (27 = 14 + 13); a filter row (R = 5) and two output channels share
    // the 12 array rows, Eyeriss-style one-filter-row-per-PE.
    b.set_tile(Dim::Q, 1, SlotKind::SpatialX, 14);
    b.set_tile(Dim::R, 1, SlotKind::SpatialY, 5);
    b.set_tile(Dim::M, 1, SlotKind::SpatialY, 2);
    // Per-PE: one 1-D convolution — a filter row segment (S = 5) over a
    // two-channel block (ifmap spad: 2·5 = 10 ≤ 12 words; weight spad:
    // 2·5 = 10 ≤ 224).
    b.set_tile(Dim::S, 2, SlotKind::Temporal, 5);
    b.set_tile(Dim::C, 2, SlotKind::Temporal, 2);
    // GLB: finish each output row before moving on — remaining channels
    // (24) and the fold (2) iterate at the GLB with Q/P inside C so
    // weights stay PE-stationary across output positions; the remaining
    // M (48) streams from DRAM.
    b.set_tile(Dim::C, 1, SlotKind::Temporal, 24);
    b.set_tile(Dim::Q, 1, SlotKind::Temporal, 2);
    b.set_tile(Dim::P, 1, SlotKind::Temporal, 27);
    b.set_permutation(1, [Dim::Q, Dim::P, Dim::C, Dim::M, Dim::N, Dim::R, Dim::S]);
    // lint: allow(panics) — the handcrafted tile factors above multiply
    // back to the fixed workload bounds; a failure is a typo here.
    b.build_for_bounds(shape.bounds())
        .expect("handcrafted chain is valid")
}

/// Runs the case study.
pub fn run(budget: &ExperimentBudget) -> CaseStudy {
    let shape = suites::alexnet_layer2();
    let arch = presets::eyeriss_like(14, 12);
    let explorer = Explorer::new(arch.clone())
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(budget.search_config());

    let handcrafted = evaluate(
        &arch,
        &shape,
        &handcrafted_mapping(&shape),
        &ModelOptions::default(),
    )
    // lint: allow(panics) — the fixed handcrafted mapping fits the
    // fixed baseline architecture; dying loudly beats a silent figure.
    .expect("the handcrafted mapping fits the baseline");
    // lint: allow(panics) — both mapspaces contain the serial mapping,
    // so exploration cannot come up empty.
    let pfm = explorer
        .explore(&shape, MapspaceKind::Pfm)
        .expect("PFM finds a valid mapping");
    // lint: allow(panics) — as above: Ruby-S ⊇ PFM.
    let ruby_s = explorer
        .explore(&shape, MapspaceKind::RubyS)
        .expect("Ruby-S finds a valid mapping");

    CaseStudy {
        entries: vec![
            Entry {
                name: "handcrafted",
                report: handcrafted,
            },
            Entry {
                name: "PFM",
                report: pfm.report,
            },
            Entry {
                name: "Ruby-S",
                report: ruby_s.report,
            },
        ],
    }
}

/// Renders the case study.
pub fn render(study: &CaseStudy) -> String {
    let mut t = TextTable::new(vec![
        "mapping".into(),
        "utilization".into(),
        "cycles".into(),
        "energy".into(),
        "EDP".into(),
    ]);
    for e in &study.entries {
        t.row(vec![
            e.name.to_string(),
            format!("{:.1}%", e.report.utilization() * 100.0),
            e.report.cycles().to_string(),
            format!("{:.3e}", e.report.energy()),
            format!("{:.3e}", e.report.edp()),
        ]);
    }
    format!(
        "Fig. 9: AlexNet layer 2 on the 14x12 Eyeriss-like baseline\n{}\nRuby-S EDP vs PFM: {:+.1}%, energy vs PFM: {:+.1}%\n",
        t.render(),
        (study.ruby_s_edp_vs_pfm() - 1.0) * 100.0,
        (study.ruby_s_energy_vs_pfm() - 1.0) * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handcrafted_mapping_is_valid_and_imperfect() {
        let shape = suites::alexnet_layer2();
        let m = handcrafted_mapping(&shape);
        assert!(m.is_imperfect());
        let arch = presets::eyeriss_like(14, 12);
        let r = evaluate(&arch, &shape, &m, &ModelOptions::default()).expect("valid");
        // The fold reaches high utilization: well above the 9×12 PFM cap.
        assert!(r.utilization() > 0.7, "got {}", r.utilization());
    }

    #[test]
    fn ruby_s_matches_handcrafted_and_beats_pfm() {
        let study = run(&ExperimentBudget {
            max_evaluations: 12_000,
            termination: 1_500,
            ..ExperimentBudget::quick()
        });
        let hand = study.entry("handcrafted").report.utilization();
        let pfm = study.entry("PFM").report.utilization();
        let ruby = study.entry("Ruby-S").report.utilization();
        assert!(hand > pfm, "handcrafted {hand} should beat PFM {pfm}");
        assert!(ruby >= pfm, "Ruby-S {ruby} at least matches PFM {pfm}");
        assert!(
            study.ruby_s_edp_vs_pfm() < 1.0,
            "Ruby-S EDP ratio {}",
            study.ruby_s_edp_vs_pfm()
        );
    }

    #[test]
    fn render_mentions_all_contenders() {
        let study = run(&ExperimentBudget::quick());
        let s = render(&study);
        for name in ["handcrafted", "PFM", "Ruby-S"] {
            assert!(s.contains(name));
        }
    }
}
