//! Fig. 11: Ruby-S vs PFM over the DeepBench suite on the Eyeriss-like
//! baseline. The paper reports a 10% average EDP improvement (up to
//! 33–45% on layers whose shapes misalign with the 14×12 array), near
//! parity on ImageNet-geometry vision layers, and a 14% latency win when
//! optimizing for delay instead.

use ruby_core::prelude::*;

use crate::common::{compare_layers, geomean, ExperimentBudget, LayerComparison};
use crate::table::{pct_delta, TextTable};

/// The study's outcome.
#[derive(Debug, Clone)]
pub struct Study {
    /// Per-layer comparisons, in suite order.
    pub layers: Vec<LayerComparison>,
    /// Layers with no valid mapping (should be empty).
    pub skipped: Vec<String>,
    /// Geometric-mean EDP ratio across the suite.
    pub mean_edp_ratio: f64,
    /// Best (smallest) EDP ratio across the suite.
    pub best_edp_ratio: f64,
}

/// Runs Fig. 11 with the EDP objective.
pub fn run(budget: &ExperimentBudget) -> Study {
    run_with_objective(budget, Objective::Edp)
}

/// Runs the suite under any objective (the paper also reports a latency
/// run: "When targeting latency instead of EDP, Ruby-S generates
/// mappings that reduce the latency 14%").
pub fn run_with_objective(budget: &ExperimentBudget, objective: Objective) -> Study {
    let suite = suites::deepbench();
    let config = SearchConfig {
        objective,
        ..budget.search_config()
    };
    let explorer = Explorer::new(presets::eyeriss_like(14, 12))
        .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
        .with_search(config);
    let shapes: Vec<ProblemShape> = suite.iter().cloned().collect();
    let (layers, skipped) = compare_layers(&explorer, &shapes, MapspaceKind::RubyS);
    let ratio = |cmp: &LayerComparison| match objective {
        Objective::Edp => cmp.edp_ratio(),
        Objective::Energy => cmp.energy_ratio(),
        Objective::Delay => cmp.cycle_ratio(),
    };
    let mean = geomean(layers.iter().map(ratio));
    let best = layers.iter().map(ratio).fold(f64::INFINITY, f64::min);
    Study {
        layers,
        skipped,
        mean_edp_ratio: mean,
        best_edp_ratio: best,
    }
}

/// Renders the per-layer table plus the summary line.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "EDP vs PFM".into(),
        "cycles vs PFM".into(),
        "Ruby-S util".into(),
    ]);
    for cmp in &study.layers {
        t.row(vec![
            cmp.layer.clone(),
            pct_delta(cmp.edp_ratio()),
            pct_delta(cmp.cycle_ratio()),
            format!("{:.1}%", cmp.ruby.report.utilization() * 100.0),
        ]);
    }
    format!(
        "Fig. 11: DeepBench on the Eyeriss-like baseline (Ruby-S normalized to PFM)\n{}mean {}, best {}\n",
        t.render(),
        pct_delta(study.mean_edp_ratio),
        pct_delta(study.best_edp_ratio),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_improves_on_average_and_has_big_wins() {
        let study = run(&ExperimentBudget::quick());
        assert!(study.skipped.is_empty(), "skipped: {:?}", study.skipped);
        assert!(
            study.mean_edp_ratio < 1.0,
            "mean EDP ratio {}",
            study.mean_edp_ratio
        );
        assert!(
            study.best_edp_ratio < 0.8,
            "expected a ≥20% win somewhere, best {}",
            study.best_edp_ratio
        );
    }

    #[test]
    fn latency_objective_reduces_cycles() {
        let study = run_with_objective(&ExperimentBudget::quick(), Objective::Delay);
        assert!(
            study.mean_edp_ratio <= 1.0,
            "mean cycle ratio {}",
            study.mean_edp_ratio
        );
    }

    #[test]
    fn render_covers_categories() {
        let study = run(&ExperimentBudget::quick());
        let s = render(&study);
        for prefix in ["speech", "vision", "face"] {
            assert!(s.contains(prefix), "missing {prefix}");
        }
    }
}
