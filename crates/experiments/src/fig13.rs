//! Fig. 13: architectural design-space exploration — sweeping Eyeriss-like
//! PE arrays from 2×7 to 16×16 and plotting EDP against accelerator area
//! for PFM, PFM+padding and Ruby-S. The paper finds Ruby-S mappings form
//! the Pareto frontier for both ResNet-50 (a) and DeepBench (b).

use ruby_core::prelude::*;

use crate::common::{ExperimentBudget, NetworkTotals};
use crate::table::TextTable;

/// Mapping strategies compared across the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Perfect factorization.
    Pfm,
    /// Perfect factorization on the padded problem.
    PfmPadded,
    /// Ruby-S.
    RubyS,
}

impl Strategy {
    /// All strategies in presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Pfm, Strategy::PfmPadded, Strategy::RubyS];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Strategy::Pfm => "PFM",
            Strategy::PfmPadded => "PFM+pad",
            Strategy::RubyS => "Ruby-S",
        }
    }
}

/// One `(configuration, strategy)` point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Architecture name (encodes the array size).
    pub config: String,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Strategy used.
    pub strategy: Strategy,
    /// Suite EDP (energy and cycle totals multiplied).
    pub edp: f64,
}

/// Which workload suite the sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteChoice {
    /// ResNet-50 (Fig. 13a); `quick` budgets use a representative layer
    /// subset.
    Resnet,
    /// DeepBench subselection (Fig. 13b).
    DeepBench,
}

/// The layers the sweep maps. Full budgets use whole suites; quick
/// budgets use a misalignment-spanning subset so tests stay fast.
pub fn sweep_layers(choice: SuiteChoice, quick: bool) -> Vec<ProblemShape> {
    let suite = match choice {
        SuiteChoice::Resnet => suites::resnet50(),
        SuiteChoice::DeepBench => suites::deepbench(),
    };
    let all: Vec<ProblemShape> = suite.iter().cloned().collect();
    if quick {
        all.into_iter().step_by(4).take(5).collect()
    } else {
        all
    }
}

/// Runs the sweep over the paper's array configurations.
pub fn run(budget: &ExperimentBudget, choice: SuiteChoice) -> Vec<SweepPoint> {
    let quick = budget.max_evaluations < 10_000;
    let layers = sweep_layers(choice, quick);
    let archs = if quick {
        let all = presets::eyeriss_sweep();
        vec![all[0].clone(), all[5].clone(), all[9].clone()]
    } else {
        presets::eyeriss_sweep()
    };
    let mut points = Vec::new();
    for arch in archs {
        let constraints = Constraints::eyeriss_row_stationary(3, 1);
        let explorer = Explorer::new(arch.clone())
            .with_constraints(constraints.clone())
            .with_search(budget.search_config());
        for strategy in Strategy::ALL {
            let mut totals = NetworkTotals::default();
            let mut complete = true;
            for layer in &layers {
                let best = match strategy {
                    Strategy::Pfm => explorer.explore(layer, MapspaceKind::Pfm),
                    Strategy::RubyS => explorer.explore(layer, MapspaceKind::RubyS),
                    Strategy::PfmPadded => {
                        let padded = padding::pad_to_array(layer, &arch, &constraints);
                        explorer.explore(&padded, MapspaceKind::Pfm)
                    }
                };
                match best {
                    Some(b) => totals.add(&b.report, 1),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                points.push(SweepPoint {
                    config: arch.name().to_string(),
                    area_mm2: arch.area_mm2(),
                    strategy,
                    edp: totals.edp(),
                });
            }
        }
    }
    points
}

/// The Pareto-optimal subset of points (minimal EDP for their area).
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut sorted: Vec<&SweepPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.area_mm2
            .total_cmp(&b.area_mm2)
            .then(a.edp.total_cmp(&b.edp))
    });
    let mut frontier: Vec<&SweepPoint> = Vec::new();
    let mut best_edp = f64::INFINITY;
    for p in sorted {
        if p.edp < best_edp {
            best_edp = p.edp;
            frontier.push(p);
        }
    }
    frontier
}

/// Renders the sweep and its Pareto frontier.
pub fn render(points: &[SweepPoint], choice: SuiteChoice) -> String {
    let label = match choice {
        SuiteChoice::Resnet => "a: ResNet-50",
        SuiteChoice::DeepBench => "b: DeepBench subselection",
    };
    let mut t = TextTable::new(vec![
        "config".into(),
        "area mm²".into(),
        "strategy".into(),
        "EDP".into(),
    ]);
    for p in points {
        t.row(vec![
            p.config.clone(),
            format!("{:.1}", p.area_mm2),
            p.strategy.name().to_string(),
            format!("{:.3e}", p.edp),
        ]);
    }
    let frontier = pareto_frontier(points);
    let frontier_desc: Vec<String> = frontier
        .iter()
        .map(|p| format!("{} [{}]", p.config, p.strategy.name()))
        .collect();
    format!(
        "Fig. 13{label}: EDP vs area over the array sweep\n{}Pareto frontier: {}\n",
        t.render(),
        frontier_desc.join(" -> ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruby_s_traces_the_pareto_frontier() {
        let points = run(&ExperimentBudget::quick(), SuiteChoice::Resnet);
        assert!(!points.is_empty());
        let frontier = pareto_frontier(&points);
        assert!(
            frontier.iter().all(|p| p.strategy == Strategy::RubyS),
            "non-Ruby-S point on the frontier: {frontier:?}"
        );
    }

    #[test]
    fn sweep_covers_all_strategies_per_config() {
        let points = run(&ExperimentBudget::quick(), SuiteChoice::DeepBench);
        let configs: std::collections::BTreeSet<&str> =
            points.iter().map(|p| p.config.as_str()).collect();
        for c in configs {
            let n = points.iter().filter(|p| p.config == c).count();
            assert_eq!(n, 3, "config {c} missing strategies");
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let points = run(&ExperimentBudget::quick(), SuiteChoice::Resnet);
        let frontier = pareto_frontier(&points);
        for w in frontier.windows(2) {
            assert!(w[1].area_mm2 >= w[0].area_mm2);
            assert!(w[1].edp < w[0].edp);
        }
    }

    #[test]
    fn render_labels_subfigure() {
        let points = run(&ExperimentBudget::quick(), SuiteChoice::Resnet);
        assert!(render(&points, SuiteChoice::Resnet).contains("Fig. 13a"));
    }
}
