//! Hardware-style loop pattern generators for imperfect factorization.
//!
//! The paper's §III-C argues that supporting Ruby mappings in hardware is
//! essentially free: accelerator loop bounds and strides "are typically
//! implemented through pattern generators implemented as finite state
//! machines", and "a minor augmentation to such a state machine can
//! accommodate the requirement for a different final loop. This static
//! configuration adds no extra penalty in terms of complexity, energy, or
//! cycles."
//!
//! This crate makes that claim executable. A [`TileFsm`] is a
//! register-level model of such a pattern generator: per loop level it
//! holds one iteration counter plus one *remaining-extent* register (the
//! augmentation — a subtract-and-clamp per level). Stepping the FSM emits
//! the innermost tile sequence of an imperfect tile chain:
//!
//! * configuration is **static** ([`DimProgram::config_words`] words,
//!   independent of the data);
//! * the FSM produces exactly one tile per step — **no dead cycles** —
//!   and the emitted tiles partition the dimension exactly, matching
//!   [`ruby_mapping::profile::boundary_profiles`].
//!
//! # Examples
//!
//! ```
//! use ruby_patterngen::{DimProgram, TileFsm};
//!
//! // 100 elements, spatial chunks of 6 (the paper's Fig. 5 toy):
//! let program = DimProgram::new(&[1, 6, 100]);
//! let tiles: Vec<(u64, u64)> = TileFsm::new(&program).collect();
//! assert_eq!(tiles.len(), 100); // unit tiles at the innermost level
//! let chunks: Vec<(u64, u64)> = program.tiles_at(1).collect();
//! assert_eq!(chunks.len(), 17); // 16 full chunks of 6 plus one of 4
//! assert_eq!(chunks[16], (96, 4));
//! ```

use ruby_mapping::profile;
use ruby_mapping::Mapping;
use ruby_workload::{Dim, DimMap};

/// The static configuration of one dimension's pattern generator: the
/// tile-size chain (`chain[0] = innermost granularity … chain.last() =
/// dimension bound`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimProgram {
    chain: Vec<u64>,
}

impl DimProgram {
    /// Builds the program from a tile chain (use
    /// [`ruby_mapping::Mapping::tile_chain`] for real mappings).
    ///
    /// # Panics
    ///
    /// Panics if the chain is shorter than two entries, does not start
    /// at a positive granularity, or is not non-decreasing.
    pub fn new(chain: &[u64]) -> Self {
        assert!(chain.len() >= 2, "a chain needs at least one slot");
        assert!(chain[0] > 0, "granularities must be positive");
        assert!(
            chain.windows(2).all(|w| w[0] <= w[1]),
            "tile chains must be non-decreasing"
        );
        DimProgram {
            chain: chain.to_vec(),
        }
    }

    /// The dimension bound the program covers.
    pub fn bound(&self) -> u64 {
        // lint: allow(panics) — the constructor rejects empty chains,
        // so a built value always has a last element.
        *self.chain.last().expect("validated non-empty")
    }

    /// Number of loop levels (slots).
    pub fn num_levels(&self) -> usize {
        self.chain.len() - 1
    }

    /// Static configuration size in words: one granularity per slot plus
    /// the bound. This is the entirety of what must be programmed —
    /// remainders need no extra configuration state.
    pub fn config_words(&self) -> usize {
        self.chain.len()
    }

    /// Iterates the `(base, size)` tiles at chain boundary `b`
    /// (0 = innermost granularity).
    ///
    /// # Panics
    ///
    /// Panics if `b` exceeds the number of levels.
    pub fn tiles_at(&self, b: usize) -> TileFsm {
        assert!(b < self.chain.len(), "boundary {b} out of range");
        TileFsm::with_granularity(self, self.chain[b])
    }
}

/// A register-level pattern-generator FSM emitting the tile sequence of a
/// [`DimProgram`] at a chosen granularity. Implements [`Iterator`]; each
/// `next()` is one FSM step (one emitted tile, no dead cycles).
#[derive(Debug, Clone)]
pub struct TileFsm {
    /// Granularities outer→inner down to the emission granularity.
    grans: Vec<u64>,
    /// Per-level iteration counter (register).
    counter: Vec<u64>,
    /// Per-level remaining extent at entry (register — the paper's
    /// "minor augmentation": a subtract-and-clamp per level).
    remaining: Vec<u64>,
    base: u64,
    done: bool,
    /// FSM steps taken so far.
    steps: u64,
}

impl TileFsm {
    /// An FSM emitting the innermost-granularity tiles.
    pub fn new(program: &DimProgram) -> Self {
        program.tiles_at(0)
    }

    fn with_granularity(program: &DimProgram, gran: u64) -> Self {
        // Levels with granularity > `gran`, outer first, ending at `gran`.
        let mut grans: Vec<u64> = program
            .chain
            .iter()
            .copied()
            .filter(|&g| g > gran)
            .rev()
            .collect();
        grans.push(gran);
        let levels = grans.len();
        let mut fsm = TileFsm {
            grans,
            counter: vec![0; levels],
            remaining: vec![0; levels],
            base: 0,
            done: program.bound() == 0,
            steps: 0,
        };
        // Reset: the outer "level" holds the whole bound.
        fsm.remaining[0] = program.bound();
        for l in 1..levels {
            fsm.remaining[l] = fsm.grans[l - 1].min(fsm.remaining[l - 1]);
        }
        fsm
    }

    /// FSM steps taken so far (equals tiles emitted — the no-dead-cycles
    /// property).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current tile without advancing.
    fn current(&self) -> (u64, u64) {
        let l = self.grans.len() - 1;
        let size = self.grans[l].min(self.remaining[l] - self.counter[l] * self.grans[l]);
        (self.base, size)
    }

    /// Advances the counters with carry propagation, updating the
    /// remaining-extent registers on each re-entry (the final-loop
    /// clamp).
    fn advance(&mut self, emitted: u64) {
        self.base += emitted;
        let mut l = self.grans.len() - 1;
        loop {
            self.counter[l] += 1;
            let consumed = self.counter[l] * self.grans[l];
            if consumed < self.remaining[l] {
                break;
            }
            self.counter[l] = 0;
            if l == 0 {
                self.done = true;
                return;
            }
            l -= 1;
        }
        // Recompute remaining extents inward of the level that advanced.
        for inner in l + 1..self.grans.len() {
            let outer_left =
                self.remaining[inner - 1] - self.counter[inner - 1] * self.grans[inner - 1];
            self.remaining[inner] = self.grans[inner - 1].min(outer_left);
        }
    }
}

impl Iterator for TileFsm {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.done {
            return None;
        }
        let tile = self.current();
        self.steps += 1;
        self.advance(tile.1);
        Some(tile)
    }
}

/// The per-dimension pattern-generator programs of a full mapping — one
/// address-stream generator per problem dimension, exactly what a DMA
/// front-end would be configured with.
///
/// # Examples
///
/// ```
/// use ruby_mapping::{Mapping, SlotKind};
/// use ruby_patterngen::programs_for_mapping;
/// use ruby_workload::{Dim, DimMap};
///
/// let mut b = Mapping::builder(2);
/// b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
/// let mut bounds = DimMap::splat(1u64);
/// bounds[Dim::M] = 100;
/// let m = b.build_for_bounds(&bounds).unwrap();
/// let programs = programs_for_mapping(&m);
/// assert_eq!(programs[Dim::M].bound(), 100);
/// // Total static configuration across all seven dims:
/// let words: usize = ruby_workload::Dim::ALL
///     .iter().map(|&d| programs[d].config_words()).sum();
/// assert_eq!(words, 7 * programs[Dim::M].config_words());
/// ```
pub fn programs_for_mapping(mapping: &Mapping) -> DimMap<DimProgram> {
    DimMap::from_fn(|d: Dim| DimProgram::new(mapping.tile_chain(d)))
}

/// Convenience: checks that a program's emitted tiles at boundary `b`
/// match the analytical tile profile of the same chain — the bridge
/// between the hardware model and the cost model.
pub fn matches_profile(program: &DimProgram, b: usize) -> bool {
    let tiles: Vec<(u64, u64)> = program.tiles_at(b).collect();
    let mut sizes: Vec<u64> = tiles.iter().map(|&(_, s)| s).collect();
    sizes.sort_unstable();
    let profile = profile::boundary_profiles(&program.chain)[b].clone();
    let mut expected: Vec<u64> = profile
        .entries()
        .iter()
        .flat_map(|&(s, c)| std::iter::repeat_n(s, c as usize))
        .collect();
    expected.sort_unstable();
    sizes == expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn programs_for_mapping_cover_all_dims() {
        use ruby_mapping::{Mapping, SlotKind};
        use ruby_workload::DimMap as WDimMap;
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 6);
        b.set_tile(Dim::C, 1, SlotKind::Temporal, 3);
        let mut bounds = WDimMap::splat(1u64);
        bounds[Dim::M] = 100;
        bounds[Dim::C] = 7;
        let m = b.build_for_bounds(&bounds).unwrap();
        let programs = programs_for_mapping(&m);
        assert_eq!(programs[Dim::M].bound(), 100);
        assert_eq!(programs[Dim::C].bound(), 7);
        // The C stream: 3 tiles of 3,3,1 (residual) at the spad boundary.
        let c_boundary = m.tile_chain(Dim::C).iter().position(|&g| g == 3).unwrap();
        let tiles: Vec<(u64, u64)> = programs[Dim::C].tiles_at(c_boundary).collect();
        assert_eq!(tiles, vec![(0, 3), (3, 3), (6, 1)]);
    }

    #[test]
    fn fig5_sequence() {
        let p = DimProgram::new(&[1, 6, 100]);
        let chunks: Vec<(u64, u64)> = p.tiles_at(1).collect();
        assert_eq!(chunks.len(), 17);
        assert_eq!(chunks[0], (0, 6));
        assert_eq!(chunks[15], (90, 6));
        assert_eq!(chunks[16], (96, 4));
    }

    #[test]
    fn tiles_are_contiguous_and_cover_bound() {
        let p = DimProgram::new(&[1, 3, 10, 100]);
        for b in 0..3 {
            let tiles: Vec<(u64, u64)> = p.tiles_at(b).collect();
            let mut expected_base = 0;
            for &(base, size) in &tiles {
                assert_eq!(base, expected_base, "boundary {b}");
                assert!(size > 0);
                expected_base = base + size;
            }
            assert_eq!(expected_base, 100, "boundary {b}");
        }
    }

    #[test]
    fn no_dead_cycles() {
        let p = DimProgram::new(&[1, 7, 100]);
        let mut fsm = TileFsm::new(&p);
        let mut emitted = 0u64;
        while fsm.next().is_some() {
            emitted += 1;
        }
        assert_eq!(fsm.steps(), emitted);
        assert_eq!(emitted, 100);
    }

    #[test]
    fn static_configuration_is_small() {
        let p = DimProgram::new(&[1, 1, 1, 2, 12, 100]);
        assert_eq!(p.config_words(), 6);
        assert_eq!(p.num_levels(), 5);
    }

    #[test]
    fn perfect_chain_emits_uniform_tiles() {
        let p = DimProgram::new(&[1, 5, 20, 100]);
        let tiles: Vec<(u64, u64)> = p.tiles_at(1).collect();
        assert_eq!(tiles.len(), 20);
        assert!(tiles.iter().all(|&(_, s)| s == 5));
    }

    #[test]
    fn matches_profiles_on_nested_residuals() {
        // 100 -> tiles of 10 -> tiles of 3: residuals of residuals.
        let p = DimProgram::new(&[1, 3, 10, 100]);
        for b in 0..3 {
            assert!(matches_profile(&p, b), "boundary {b}");
        }
    }

    proptest! {
        /// For arbitrary non-decreasing chains, the FSM partitions the
        /// bound exactly and agrees with the analytical profiles at
        /// every boundary.
        #[test]
        fn fsm_agrees_with_profiles(
            bound in 1u64..3000,
            a in 1u64..64,
            b in 1u64..64,
        ) {
            let mut chain = vec![1u64, a.min(bound), (a * b).min(bound), bound];
            chain.sort_unstable();
            let p = DimProgram::new(&chain);
            for boundary in 0..p.num_levels() {
                prop_assert!(matches_profile(&p, boundary), "boundary {boundary}");
                let total: u64 = p.tiles_at(boundary).map(|(_, s)| s).sum();
                prop_assert_eq!(total, bound);
            }
        }

        /// The innermost FSM step count equals the number of unit tiles:
        /// the no-extra-cycles claim, property-tested.
        #[test]
        fn step_count_is_tile_count(bound in 1u64..2000, g in 1u64..50) {
            let p = DimProgram::new(&[1, g.min(bound), bound]);
            let mut fsm = p.tiles_at(1);
            let n = fsm.by_ref().count() as u64;
            prop_assert_eq!(n, bound.div_ceil(g.min(bound)));
            prop_assert_eq!(fsm.steps(), n);
        }
    }
}
