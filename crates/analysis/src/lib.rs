//! Correctness analysis layer for the Ruby reproduction.
//!
//! Two independent instruments that machine-check what the rest of the
//! workspace otherwise only asserts:
//!
//! - **Semantic mapping verifier** ([`MappingAnalyzer`]): walks any
//!   [`ruby_mapping::Mapping`] against an architecture and workload and
//!   reports every problem as a structured [`Diagnostic`] with a stable
//!   `RBYxxx` code, instead of the cost model's fail-fast single error.
//!   Capacity/fanout findings are produced by the model's own validity
//!   predicates (via `EvalContext::violations`), so analyzer verdicts
//!   and evaluation-time rejection agree by construction — a property
//!   pinned down by differential tests over sampled and enumerated
//!   mappings.
//! - **Mini-loom interleaving checker** ([`interleave`]): a
//!   deterministic DFS over thread schedules, driven through shim
//!   atomics with yield points, that runs *every* interleaving of small
//!   lock-free protocols. The search crate uses it under `cfg(test)` to
//!   model-check its memo-cache publish protocol and best-cost CAS
//!   loop.
//!
//! | Code   | Name                       | Severity | Meaning |
//! |--------|----------------------------|----------|---------|
//! | RBY001 | CapacityExceeded           | error    | tile footprint exceeds a buffer |
//! | RBY002 | FanoutOverflow             | error    | spatial extent exceeds a fanout |
//! | RBY003 | IncompleteFactorization    | error    | chains do not factor the workload |
//! | RBY004 | BypassConflict             | error    | contradictory storage declarations |
//! | RBY005 | ImperfectRemainderMismatch | error    | residual-tile bookkeeping inconsistent |
//! | RBY101 | FanoutUnderutilized        | warning  | mapping leaves compute units idle |

pub mod analyzer;
pub mod diag;
pub mod interleave;

pub use analyzer::MappingAnalyzer;
pub use diag::{Analysis, DiagCode, Diagnostic, Severity};
