//! Mini-loom: bounded-exhaustive deterministic interleaving exploration
//! for small lock-free protocols.
//!
//! The search engine's hot path relies on two hand-rolled lock-free
//! protocols (the memo cache's claim-then-publish insert and the
//! best-cost CAS loop) whose correctness arguments live in comments. A
//! comment is not a check. This module provides a tiny loom/shuttle-style
//! model checker that *runs every interleaving* of a small concurrent
//! test, so those arguments become executable:
//!
//! - [`shim`] wraps the std atomics with a **yield point before every
//!   atomic access**. Outside an exploration the wrappers compile down to
//!   direct delegation (a thread-local lookup and a branch); inside one,
//!   each access blocks until the scheduler grants that thread the next
//!   step.
//! - [`Explorer`] drives a depth-first search over scheduling decisions:
//!   each run replays a recorded decision prefix, extends it
//!   first-choice, and the next run flips the deepest unexplored
//!   decision. Because every thread parks at its next atomic access, the
//!   set of runnable threads at each decision point is a pure function of
//!   the prefix, making replay exact.
//!
//! The exploration uses real OS threads with a mutex/condvar handshake —
//! only one thread runs between yield points, so schedules are
//! deterministic regardless of the host's actual scheduling.
//!
//! # Example
//!
//! ```
//! use ruby_analysis::interleave::{shim::{AtomicU64, Ordering}, Explorer};
//!
//! // Two racing increments over a CAS loop never lose an update.
//! let report = Explorer::new(10_000).explore(|sched| {
//!     let counter = AtomicU64::new(0);
//!     sched.run(vec![
//!         Box::new(|| {
//!             let mut cur = counter.load(Ordering::Relaxed);
//!             loop {
//!                 match counter.compare_exchange(
//!                     cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed,
//!                 ) {
//!                     Ok(_) => break,
//!                     Err(seen) => cur = seen,
//!                 }
//!             }
//!         }),
//!         Box::new(|| {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         }),
//!     ]);
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.complete);
//! assert!(report.schedules > 1);
//! ```

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

thread_local! {
    /// The scheduler this OS thread participates in, with its logical
    /// thread index — `None` on threads outside an exploration, which
    /// makes the [`shim`] wrappers pass straight through.
    static PARTICIPANT: RefCell<Option<(Arc<SchedState>, usize)>> = const { RefCell::new(None) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned (or granted) and executing; not at a yield point.
    Running,
    /// Parked at a yield point, waiting for a grant.
    AtYield,
    /// Task returned (or unwound).
    Finished,
}

/// One scheduling decision: which position in the (rotated) runnable
/// list was chosen, out of how many.
#[derive(Debug, Clone, Copy)]
struct Choice {
    pos: usize,
    available: usize,
}

struct Inner {
    status: Vec<Status>,
    /// The thread currently holding the right to run, if any. Held from
    /// grant until that thread's next yield/finish.
    granted: Option<usize>,
    /// Decision positions to replay from the previous run (DFS prefix).
    replay: Vec<usize>,
    /// Decisions actually taken this run.
    trail: Vec<Choice>,
}

/// Shared scheduler state for one schedule execution.
struct SchedState {
    inner: Mutex<Inner>,
    cv: Condvar,
    seed: u64,
}

impl SchedState {
    fn new(threads: usize, seed: u64, replay: Vec<usize>) -> Self {
        SchedState {
            inner: Mutex::new(Inner {
                status: vec![Status::Running; threads],
                granted: None,
                replay,
                trail: Vec::new(),
            }),
            cv: Condvar::new(),
            seed,
        }
    }

    /// If every live thread is parked and nobody holds a grant, pick the
    /// next thread to run: replay the recorded decision at this depth or
    /// extend the trail first-choice.
    fn try_dispatch(&self, inner: &mut Inner) {
        if inner.granted.is_some() {
            return;
        }
        if inner.status.contains(&Status::Running) {
            return;
        }
        let mut runnable: Vec<usize> = (0..inner.status.len())
            .filter(|&i| inner.status[i] == Status::AtYield)
            .collect();
        if runnable.is_empty() {
            return; // All finished; the scope join completes the run.
        }
        // Seed-dependent rotation varies which branch the DFS explores
        // first without affecting which schedules exist.
        let depth = inner.trail.len();
        let rot = (splitmix(self.seed ^ depth as u64) as usize) % runnable.len();
        runnable.rotate_left(rot);
        let pos = inner
            .replay
            .get(depth)
            .copied()
            .unwrap_or(0)
            .min(runnable.len() - 1);
        inner.trail.push(Choice {
            pos,
            available: runnable.len(),
        });
        inner.granted = Some(runnable[pos]);
        self.cv.notify_all();
    }

    /// Blocks the calling logical thread until the scheduler grants it
    /// the next step.
    fn yield_point(&self, me: usize) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        g.status[me] = Status::AtYield;
        if g.granted == Some(me) {
            g.granted = None;
        }
        self.try_dispatch(&mut g);
        while g.granted != Some(me) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g.status[me] = Status::Running;
    }

    /// Marks a logical thread finished and hands the schedule onward.
    /// Runs from a drop guard so a panicking assertion inside a task
    /// still releases the remaining threads (the panic itself surfaces
    /// through the scope join).
    fn finish(&self, me: usize) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        g.status[me] = Status::Finished;
        if g.granted == Some(me) {
            g.granted = None;
        }
        self.try_dispatch(&mut g);
        self.cv.notify_all();
    }
}

fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clears this OS thread's participant registration and marks the
/// logical thread finished, even when the task unwinds.
struct FinishGuard {
    state: Arc<SchedState>,
    me: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        PARTICIPANT.with(|p| *p.borrow_mut() = None);
        self.state.finish(self.me);
    }
}

/// Handle passed to the exploration body; spawns the logical threads of
/// one schedule.
pub struct Sched {
    state: Arc<SchedState>,
}

impl Sched {
    /// Runs `tasks` as logical threads under the scheduler and joins
    /// them all. Each task runs on a real OS thread but only one makes
    /// progress between yield points. May be called more than once per
    /// schedule; later calls continue the same decision trail.
    ///
    /// Panics raised by tasks (failed assertions) propagate out of the
    /// join, failing the surrounding test.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        {
            let mut g = self
                .state
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            g.status = vec![Status::Running; tasks.len()];
            g.granted = None;
        }
        std::thread::scope(|scope| {
            for (me, task) in tasks.into_iter().enumerate() {
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    PARTICIPANT.with(|p| *p.borrow_mut() = Some((Arc::clone(&state), me)));
                    let _guard = FinishGuard { state, me };
                    task();
                });
            }
        });
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Whether the decision tree was exhausted (`false` when the
    /// schedule budget cut the search short).
    pub complete: bool,
}

/// Depth-first exhaustive scheduler. See the module docs.
pub struct Explorer {
    max_schedules: usize,
    seed: u64,
}

impl Explorer {
    /// An explorer that runs at most `max_schedules` schedules.
    pub fn new(max_schedules: usize) -> Self {
        Explorer {
            max_schedules: max_schedules.max(1),
            seed: 0,
        }
    }

    /// Sets the seed that rotates first-choice order at each decision
    /// depth. Different seeds visit the same schedule set in a
    /// different order — useful when a budget truncates the search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `body` once per schedule until the decision tree is
    /// exhausted or the budget runs out. The body must be
    /// deterministic: all cross-thread communication must go through
    /// [`shim`] atomics, and per-run state must be created inside the
    /// body.
    pub fn explore<F: FnMut(&Sched)>(&self, mut body: F) -> Report {
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let state = Arc::new(SchedState::new(0, self.seed, std::mem::take(&mut replay)));
            let sched = Sched {
                state: Arc::clone(&state),
            };
            body(&sched);
            schedules += 1;
            let trail = {
                let g = state.inner.lock().unwrap_or_else(PoisonError::into_inner);
                g.trail.clone()
            };
            match next_prefix(&trail) {
                None => {
                    return Report {
                        schedules,
                        complete: true,
                    }
                }
                Some(_) if schedules >= self.max_schedules => {
                    return Report {
                        schedules,
                        complete: false,
                    }
                }
                Some(next) => replay = next,
            }
        }
    }
}

/// The DFS successor of a completed decision trail: flip the deepest
/// decision that still has an unexplored sibling, drop everything
/// after it. `None` when the tree is exhausted.
fn next_prefix(trail: &[Choice]) -> Option<Vec<usize>> {
    for (i, c) in trail.iter().enumerate().rev() {
        if c.pos + 1 < c.available {
            let mut prefix: Vec<usize> = trail[..i].iter().map(|c| c.pos).collect();
            prefix.push(c.pos + 1);
            return Some(prefix);
        }
    }
    None
}

/// Atomic wrappers with a scheduler yield before every access.
///
/// Drop-in for the std types the search hot path uses. On threads not
/// participating in an exploration (production, ordinary tests) every
/// operation delegates directly to the underlying std atomic.
///
/// `compare_exchange_weak` deliberately delegates to the strong
/// variant: a spurious failure is a scheduling artifact of the host
/// CPU, and the model checker needs behavior to be a pure function of
/// the schedule.
pub mod shim {
    use std::sync::Arc;

    pub use std::sync::atomic::Ordering;

    use super::{SchedState, PARTICIPANT};

    /// Yields to the active scheduler, if this thread is participating
    /// in an exploration.
    fn maybe_yield() {
        let participant: Option<(Arc<SchedState>, usize)> =
            PARTICIPANT.with(|p| p.borrow().clone());
        if let Some((state, me)) = participant {
            state.yield_point(me);
        }
    }

    /// [`std::sync::atomic::AtomicU64`] with exploration yield points.
    #[derive(Debug, Default)]
    pub struct AtomicU64(std::sync::atomic::AtomicU64);

    impl AtomicU64 {
        /// See [`std::sync::atomic::AtomicU64::new`].
        pub const fn new(v: u64) -> Self {
            AtomicU64(std::sync::atomic::AtomicU64::new(v))
        }

        /// See [`std::sync::atomic::AtomicU64::load`].
        pub fn load(&self, order: Ordering) -> u64 {
            maybe_yield();
            self.0.load(order)
        }

        /// See [`std::sync::atomic::AtomicU64::store`].
        pub fn store(&self, v: u64, order: Ordering) {
            maybe_yield();
            self.0.store(v, order);
        }

        /// See [`std::sync::atomic::AtomicU64::fetch_add`].
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            maybe_yield();
            self.0.fetch_add(v, order)
        }

        /// See [`std::sync::atomic::AtomicU64::fetch_sub`].
        pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
            maybe_yield();
            self.0.fetch_sub(v, order)
        }

        /// See [`std::sync::atomic::AtomicU64::compare_exchange`].
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            maybe_yield();
            self.0.compare_exchange(current, new, success, failure)
        }

        /// See [`std::sync::atomic::AtomicU64::compare_exchange_weak`].
        /// Delegates to the strong variant so failures are a pure
        /// function of the schedule (see the module docs).
        pub fn compare_exchange_weak(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            maybe_yield();
            self.0.compare_exchange(current, new, success, failure)
        }

        /// See [`std::sync::atomic::AtomicU64::into_inner`].
        pub fn into_inner(self) -> u64 {
            self.0.into_inner()
        }
    }

    /// [`std::sync::atomic::AtomicBool`] with exploration yield points.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// See [`std::sync::atomic::AtomicBool::new`].
        pub const fn new(v: bool) -> Self {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }

        /// See [`std::sync::atomic::AtomicBool::load`].
        pub fn load(&self, order: Ordering) -> bool {
            maybe_yield();
            self.0.load(order)
        }

        /// See [`std::sync::atomic::AtomicBool::store`].
        pub fn store(&self, v: bool, order: Ordering) {
            maybe_yield();
            self.0.store(v, order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::shim::{AtomicBool, AtomicU64, Ordering};
    use super::*;

    #[test]
    fn passthrough_outside_exploration() {
        let a = AtomicU64::new(1);
        assert_eq!(a.load(Ordering::SeqCst), 1);
        a.store(5, Ordering::SeqCst);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(a.into_inner(), 7);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
    }

    #[test]
    fn explores_all_two_thread_interleavings_of_two_stores() {
        // Two threads, one store each: exactly 2 schedules.
        let report = Explorer::new(1000).explore(|sched| {
            let a = AtomicU64::new(0);
            sched.run(vec![
                Box::new(|| a.store(1, Ordering::SeqCst)),
                Box::new(|| a.store(2, Ordering::SeqCst)),
            ]);
            let last = a.load(Ordering::SeqCst);
            assert!(last == 1 || last == 2);
        });
        assert!(report.complete);
        assert_eq!(report.schedules, 2);
    }

    #[test]
    fn schedule_count_matches_interleaving_combinatorics() {
        // Two threads with two ops each: C(4, 2) = 6 interleavings.
        let report = Explorer::new(1000).explore(|sched| {
            let a = AtomicU64::new(0);
            let b = AtomicU64::new(0);
            sched.run(vec![
                Box::new(|| {
                    a.store(1, Ordering::SeqCst);
                    b.store(1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    b.store(2, Ordering::SeqCst);
                    a.store(2, Ordering::SeqCst);
                }),
            ]);
        });
        assert!(report.complete);
        assert_eq!(report.schedules, 6);
    }

    #[test]
    fn finds_the_lost_update_in_a_naive_counter() {
        // The classic read-modify-write race: exhaustive exploration
        // must visit at least one schedule where an increment is lost.
        let mut lost = false;
        let report = Explorer::new(1000).explore(|sched| {
            let c = AtomicU64::new(0);
            sched.run(vec![
                Box::new(|| {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                }),
            ]);
            if c.load(Ordering::SeqCst) == 1 {
                lost = true;
            }
        });
        assert!(report.complete);
        assert!(lost, "exhaustive search must surface the lost update");
    }

    #[test]
    fn budget_truncates_and_reports_incomplete() {
        let report = Explorer::new(3).explore(|sched| {
            let a = AtomicU64::new(0);
            sched.run(vec![
                Box::new(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        });
        assert!(!report.complete);
        assert_eq!(report.schedules, 3);
    }

    #[test]
    fn seeds_permute_exploration_order_not_outcome() {
        for seed in [0u64, 1, 42] {
            let report = Explorer::new(1000).seed(seed).explore(|sched| {
                let a = AtomicU64::new(0);
                sched.run(vec![
                    Box::new(|| a.store(1, Ordering::SeqCst)),
                    Box::new(|| {
                        a.load(Ordering::SeqCst);
                        a.store(2, Ordering::SeqCst);
                    }),
                ]);
            });
            assert!(report.complete, "seed {seed}");
            assert_eq!(report.schedules, 3, "seed {seed}");
        }
    }

    #[test]
    fn three_threads_explode_combinatorially() {
        // 3 threads x 2 ops: 6!/(2!2!2!) = 90 interleavings.
        let report = Explorer::new(10_000).explore(|sched| {
            let a = AtomicU64::new(0);
            sched.run(vec![
                Box::new(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
            assert_eq!(a.load(Ordering::SeqCst), 6);
        });
        assert!(report.complete);
        assert_eq!(report.schedules, 90);
    }
}
