//! Structured diagnostics with stable `RBYxxx` codes.
//!
//! Every analyzer finding carries a [`DiagCode`] that is stable across
//! releases (tools may match on the code string), a [`Severity`], and a
//! human-readable message. Errors mark mappings the cost model would
//! reject or whose internal bookkeeping is inconsistent; warnings flag
//! legal-but-suspicious structure (idle fanout, dead buffers) and never
//! affect [`Analysis::has_errors`].

use serde::Value;

/// Stable diagnostic codes. The numeric band encodes severity: `RBY0xx`
/// are errors, `RBY1xx` are warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `RBY001`: a tensor tile (or the sum of stored tiles for a shared
    /// buffer) exceeds a level's capacity.
    CapacityExceeded,
    /// `RBY002`: the spatial extent mapped below a level exceeds its
    /// fanout.
    FanoutOverflow,
    /// `RBY003`: the tile chains do not factor the workload — wrong
    /// chain length for the hierarchy, a non-monotone chain, an inner
    /// boundary that is not 1, or an outer boundary that misses the
    /// dimension bound.
    IncompleteFactorization,
    /// `RBY004`: the architecture's bypass/storage declarations
    /// contradict themselves — an operand stored nowhere, or a level
    /// that declares storage for an operand without allocating any
    /// per-operand buffer words.
    BypassConflict,
    /// `RBY005`: the mapping's imperfect-factorization bookkeeping is
    /// inconsistent — an independent recomputation of the sequential
    /// step count (full tiles plus exact residuals, paper eq. 5)
    /// disagrees with the mapping's own accounting.
    ImperfectRemainderMismatch,
    /// `RBY101` (warning): a level's spatial fanout is only partially
    /// used; the mapping leaves compute units idle.
    FanoutUnderutilized,
}

/// Diagnostic severity. Only [`Severity::Error`] marks a mapping
/// invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The mapping is rejected by the cost model or internally
    /// inconsistent.
    Error,
    /// Legal but suspicious; evaluation proceeds.
    Warning,
}

impl Severity {
    /// Lower-case name, as rendered in text and JSON output.
    pub const fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl DiagCode {
    /// The stable code string, e.g. `"RBY001"`.
    pub const fn code(self) -> &'static str {
        match self {
            DiagCode::CapacityExceeded => "RBY001",
            DiagCode::FanoutOverflow => "RBY002",
            DiagCode::IncompleteFactorization => "RBY003",
            DiagCode::BypassConflict => "RBY004",
            DiagCode::ImperfectRemainderMismatch => "RBY005",
            DiagCode::FanoutUnderutilized => "RBY101",
        }
    }

    /// The short CamelCase name, e.g. `"CapacityExceeded"`.
    pub const fn name(self) -> &'static str {
        match self {
            DiagCode::CapacityExceeded => "CapacityExceeded",
            DiagCode::FanoutOverflow => "FanoutOverflow",
            DiagCode::IncompleteFactorization => "IncompleteFactorization",
            DiagCode::BypassConflict => "BypassConflict",
            DiagCode::ImperfectRemainderMismatch => "ImperfectRemainderMismatch",
            DiagCode::FanoutUnderutilized => "FanoutUnderutilized",
        }
    }

    /// The severity implied by the code band.
    pub const fn severity(self) -> Severity {
        match self {
            DiagCode::CapacityExceeded
            | DiagCode::FanoutOverflow
            | DiagCode::IncompleteFactorization
            | DiagCode::BypassConflict
            | DiagCode::ImperfectRemainderMismatch => Severity::Error,
            DiagCode::FanoutUnderutilized => Severity::Warning,
        }
    }
}

/// One analyzer finding: a coded, located, human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    code: DiagCode,
    message: String,
    /// Architecture level index the finding anchors to, if any
    /// (0 = outermost).
    level: Option<usize>,
    /// Operand name the finding anchors to, if any.
    operand: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with no location anchors.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            level: None,
            operand: None,
        }
    }

    /// Anchors the diagnostic to an architecture level.
    pub fn at_level(mut self, level: usize) -> Self {
        self.level = Some(level);
        self
    }

    /// Anchors the diagnostic to an operand.
    pub fn for_operand(mut self, operand: impl Into<String>) -> Self {
        self.operand = Some(operand.into());
        self
    }

    /// The stable diagnostic code.
    pub fn code(&self) -> DiagCode {
        self.code
    }

    /// The severity (derived from the code band).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The human-readable message body.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The anchored architecture level, if any.
    pub fn level(&self) -> Option<usize> {
        self.level
    }

    /// The anchored operand name, if any.
    pub fn operand(&self) -> Option<&str> {
        self.operand.as_deref()
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity().as_str(),
            self.code.code(),
            self.message
        )
    }
}

impl serde::Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("code".to_string(), Value::Str(self.code.code().to_string())),
            ("name".to_string(), Value::Str(self.code.name().to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity().as_str().to_string()),
            ),
            ("message".to_string(), Value::Str(self.message.clone())),
        ];
        if let Some(level) = self.level {
            fields.push(("level".to_string(), Value::U64(level as u64)));
        }
        if let Some(op) = &self.operand {
            fields.push(("operand".to_string(), Value::Str(op.clone())));
        }
        Value::Obj(fields)
    }
}

/// The full result of analyzing one mapping: every finding, in the
/// analyzer's fixed deterministic order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    pub(crate) fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// All findings, errors first then warnings within the analyzer's
    /// pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether any error-severity finding is present. This is `true`
    /// exactly when the cost model rejects the mapping (the differential
    /// contract with `EvalContext::precheck`) or its bookkeeping is
    /// inconsistent.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Multi-line human-readable rendering: one `severity[CODE]: message`
    /// line per finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if errors == 0 && warnings == 0 {
            out.push_str("mapping is valid: no findings\n");
        } else {
            out.push_str(&format!(
                "{errors} error{}, {warnings} warning{}: mapping is {}\n",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
                if errors == 0 { "valid" } else { "invalid" },
            ));
        }
        out
    }
}

impl serde::Serialize for Analysis {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("valid".to_string(), Value::Bool(!self.has_errors())),
            (
                "error_count".to_string(),
                Value::U64(self.errors().count() as u64),
            ),
            (
                "warning_count".to_string(),
                Value::U64(self.warnings().count() as u64),
            ),
            (
                "diagnostics".to_string(),
                Value::Arr(self.diagnostics.iter().map(|d| d.to_value()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn codes_are_stable_and_banded() {
        assert_eq!(DiagCode::CapacityExceeded.code(), "RBY001");
        assert_eq!(DiagCode::FanoutOverflow.code(), "RBY002");
        assert_eq!(DiagCode::IncompleteFactorization.code(), "RBY003");
        assert_eq!(DiagCode::BypassConflict.code(), "RBY004");
        assert_eq!(DiagCode::ImperfectRemainderMismatch.code(), "RBY005");
        assert_eq!(DiagCode::FanoutUnderutilized.code(), "RBY101");
        assert_eq!(DiagCode::FanoutUnderutilized.severity(), Severity::Warning);
        assert_eq!(DiagCode::CapacityExceeded.severity(), Severity::Error);
    }

    #[test]
    fn analysis_partitions_by_severity() {
        let mut a = Analysis::default();
        a.push(Diagnostic::new(DiagCode::FanoutUnderutilized, "idle PEs").at_level(1));
        assert!(!a.has_errors());
        a.push(
            Diagnostic::new(DiagCode::CapacityExceeded, "too big")
                .at_level(2)
                .for_operand("Weight"),
        );
        assert!(a.has_errors());
        assert_eq!(a.errors().count(), 1);
        assert_eq!(a.warnings().count(), 1);
        assert!(a.render().contains("error[RBY001]: too big"));
        assert!(a
            .render()
            .contains("1 error, 1 warning: mapping is invalid"));
    }

    #[test]
    fn json_rendering_carries_code_and_anchors() {
        let d = Diagnostic::new(DiagCode::FanoutOverflow, "15x1 over 14x12")
            .at_level(1)
            .for_operand("Input");
        let v = d.to_value();
        assert_eq!(v.get("code"), Some(&Value::Str("RBY002".to_string())));
        assert_eq!(v.get("level"), Some(&Value::U64(1)));
        assert_eq!(v.get("operand"), Some(&Value::Str("Input".to_string())));
    }
}
