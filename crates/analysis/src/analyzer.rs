//! The semantic mapping verifier.
//!
//! [`MappingAnalyzer`] walks a [`Mapping`] against an [`Architecture`]
//! and [`ProblemShape`] and reports every finding as a coded
//! [`Diagnostic`] (see [`crate::diag`] for the code table). Unlike the
//! cost model's fail-fast screens it never panics and never stops at the
//! first problem, so it can explain *all* the ways a hand-written or
//! deserialized mapping is broken.
//!
//! # The differential contract
//!
//! For structurally well-formed mappings of the right hierarchy depth,
//! `analyze(m).has_errors()` is `true` exactly when
//! `ruby_model::EvalContext::precheck(m)` rejects `m`. The capacity and
//! fanout findings (`RBY001`/`RBY002`) are built from
//! [`EvalContext::violations`] — the model's own validity predicates run
//! to exhaustion — so the two sides cannot drift apart; the remaining
//! error codes catch states the model's fast path *assumes away*
//! (malformed chains, contradictory bypass masks, broken remainder
//! bookkeeping) and cannot fire on builder- or sampler-produced
//! mappings.

use std::collections::BTreeMap;

use ruby_arch::{Architecture, Capacity};
use ruby_mapping::{Mapping, SlotId};
use ruby_model::{EvalContext, InvalidMapping, ModelOptions};
use ruby_workload::{Dim, Operand, ProblemShape};

use crate::diag::{Analysis, DiagCode, Diagnostic};

/// Semantic verifier for mappings against one `(architecture, workload)`
/// pair. Build once, analyze many mappings.
///
/// # Examples
///
/// ```
/// use ruby_analysis::MappingAnalyzer;
/// use ruby_arch::presets;
/// use ruby_mapping::{Mapping, SlotKind};
/// use ruby_workload::{Dim, ProblemShape};
///
/// let arch = presets::toy_linear(4, 1024);
/// let shape = ProblemShape::rank1("d", 100);
/// let analyzer = MappingAnalyzer::new(&arch, &shape);
///
/// // 8-wide spatial spread over a 4-PE array: RBY002 FanoutOverflow.
/// let mut b = Mapping::builder(2);
/// b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
/// let m = b.build_for_bounds(shape.bounds()).unwrap();
/// let analysis = analyzer.analyze(&m);
/// assert!(analysis.has_errors());
/// assert!(analysis.render().contains("RBY002"));
/// ```
pub struct MappingAnalyzer<'a> {
    arch: &'a Architecture,
    shape: &'a ProblemShape,
    ctx: EvalContext<'a>,
}

impl<'a> MappingAnalyzer<'a> {
    /// Prepares an analyzer for the given architecture and workload.
    pub fn new(arch: &'a Architecture, shape: &'a ProblemShape) -> Self {
        MappingAnalyzer {
            arch,
            shape,
            ctx: EvalContext::new(arch, shape, ModelOptions::default()),
        }
    }

    /// Analyzes one mapping, returning every finding in a fixed
    /// deterministic order: structural errors (RBY003), architecture
    /// bypass conflicts (RBY004), model validity errors (RBY001/RBY002,
    /// by ascending level), remainder bookkeeping errors (RBY005, by
    /// dimension), then warnings.
    pub fn analyze(&self, mapping: &Mapping) -> Analysis {
        let mut out = Analysis::default();

        self.check_bypass(&mut out);
        if !self.check_structure(mapping, &mut out) {
            // Chains are unusable (wrong depth or length); every later
            // pass would index out of bounds, so stop at the structural
            // report.
            return out;
        }
        self.check_model_validity(mapping, &mut out);
        self.check_remainders(mapping, &mut out);
        self.check_utilization(mapping, &mut out);
        out
    }

    /// RBY003: chain lengths, monotonicity, and boundary anchoring.
    /// Returns whether the chains are shaped well enough for the
    /// remaining passes to index safely.
    fn check_structure(&self, mapping: &Mapping, out: &mut Analysis) -> bool {
        let arch_levels = self.arch.num_levels();
        let map_levels = mapping.layout().num_levels();
        if arch_levels != map_levels {
            out.push(Diagnostic::new(
                DiagCode::IncompleteFactorization,
                format!(
                    "mapping was built for {map_levels} storage levels, \
                     architecture has {arch_levels}"
                ),
            ));
            return false;
        }
        let expected = mapping.layout().num_slots() + 1;
        let mut usable = true;
        for dim in Dim::ALL {
            let chain = mapping.tile_chain(dim);
            if chain.len() != expected {
                out.push(Diagnostic::new(
                    DiagCode::IncompleteFactorization,
                    format!(
                        "tile chain for {dim} has {} entries, expected {expected}",
                        chain.len()
                    ),
                ));
                usable = false;
                continue;
            }
            if chain[0] != 1 {
                out.push(Diagnostic::new(
                    DiagCode::IncompleteFactorization,
                    format!(
                        "tile chain for {dim} starts at {}, the innermost tile must be 1",
                        chain[0]
                    ),
                ));
            }
            if chain.windows(2).any(|w| w[0] > w[1]) {
                out.push(Diagnostic::new(
                    DiagCode::IncompleteFactorization,
                    format!("tile chain for {dim} decreases going outward"),
                ));
            }
            let bound = self.shape.bounds()[dim];
            let outer = chain[expected - 1];
            if outer != bound {
                out.push(Diagnostic::new(
                    DiagCode::IncompleteFactorization,
                    format!(
                        "outermost tile for {dim} is {outer}, \
                         the factorization must cover the dimension bound {bound}"
                    ),
                ));
            }
        }
        usable
    }

    /// RBY004: contradictory storage declarations in the architecture.
    /// Reachable only through hand-written or deserialized specs —
    /// [`Architecture::new`] validates these invariants — but a JSON
    /// round trip bypasses the constructor.
    fn check_bypass(&self, out: &mut Analysis) {
        for op in Operand::ALL {
            if self.arch.storage_chain(op).is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::BypassConflict,
                        format!("{op} is bypassed at every level: it has no backing store"),
                    )
                    .for_operand(op.to_string()),
                );
            }
        }
        for (i, level) in self.arch.levels().iter().enumerate() {
            if let Capacity::PerOperand(per) = level.capacity() {
                for op in Operand::ALL {
                    if level.stores(op) && per[op.index()].is_none() {
                        out.push(
                            Diagnostic::new(
                                DiagCode::BypassConflict,
                                format!(
                                    "level {i} ({}) declares storage for {op} \
                                     but allocates it no buffer words",
                                    level.name()
                                ),
                            )
                            .at_level(i)
                            .for_operand(op.to_string()),
                        );
                    }
                }
            }
        }
    }

    /// RBY001/RBY002: the model's own validity predicates, run to
    /// exhaustion via [`EvalContext::violations`].
    fn check_model_validity(&self, mapping: &Mapping, out: &mut Analysis) {
        for v in self.ctx.violations(mapping) {
            match v {
                InvalidMapping::CapacityExceeded {
                    level,
                    operand,
                    needed,
                    available,
                } => {
                    let name = self.arch.level(level).name();
                    let mut d = Diagnostic::new(
                        DiagCode::CapacityExceeded,
                        match operand {
                            Some(op) => format!(
                                "level {level} ({name}): {op} tile needs {needed} words, \
                                 buffer holds {available}"
                            ),
                            None => format!(
                                "level {level} ({name}): stored tiles need {needed} words, \
                                 shared buffer holds {available}"
                            ),
                        },
                    )
                    .at_level(level);
                    if let Some(op) = operand {
                        d = d.for_operand(op.to_string());
                    }
                    out.push(d);
                }
                InvalidMapping::FanoutExceeded {
                    level,
                    requested,
                    available,
                } => {
                    let name = self.arch.level(level).name();
                    out.push(
                        Diagnostic::new(
                            DiagCode::FanoutOverflow,
                            format!(
                                "level {level} ({name}): spatial extent {}x{} \
                                 exceeds fanout {}x{}",
                                requested.0, requested.1, available.0, available.1
                            ),
                        )
                        .at_level(level),
                    );
                }
            }
        }
    }

    /// RBY005: cross-checks the mapping's sequential-step accounting
    /// against an independent recursive recomputation of eq. 5's
    /// full-plus-residual tile arithmetic (see [`recount_steps`]).
    fn check_remainders(&self, mapping: &Mapping, out: &mut Analysis) {
        for dim in Dim::ALL {
            let claimed = mapping.sequential_steps(dim);
            let recomputed = recount_steps(mapping, dim);
            if claimed != recomputed {
                out.push(Diagnostic::new(
                    DiagCode::ImperfectRemainderMismatch,
                    format!(
                        "sequential steps along {dim}: mapping accounts {claimed}, \
                         residual-exact recount gives {recomputed}"
                    ),
                ));
            }
        }
    }

    /// RBY101: spatial fanout left idle.
    fn check_utilization(&self, mapping: &Mapping, out: &mut Analysis) {
        for (i, level) in self.arch.levels().iter().enumerate() {
            let fan = level.fanout();
            let total = fan.x().saturating_mul(fan.y());
            if total <= 1 {
                continue;
            }
            let (x, y) = mapping.spatial_extent(i);
            let used = x.saturating_mul(y);
            if used < total && x <= fan.x() && y <= fan.y() {
                let pct = 100.0 * used as f64 / total as f64;
                out.push(
                    Diagnostic::new(
                        DiagCode::FanoutUnderutilized,
                        format!(
                            "level {i} ({}): spatial extent {x}x{y} uses {used} of \
                             {}x{} = {total} units ({pct:.1}%)",
                            level.name(),
                            fan.x(),
                            fan.y(),
                        ),
                    )
                    .at_level(i),
                );
            }
        }
    }
}

/// Independent recount of one dimension's sequential steps.
///
/// Where `ruby_mapping::profile` propagates tile-size *multisets* from
/// the outermost boundary inward, this walks top-down recursively: a
/// tile of `size` at chain boundary `b` splits at a temporal slot into
/// `size / g` full children plus one exact residual of `size % g`
/// (paper eq. 5), and clamps at a spatial slot to its largest lockstep
/// chunk. Memoized on `(boundary, size)` — residual sizes stay few — so
/// the recount is linear in practice while sharing no code with the
/// profile machinery it cross-checks.
fn recount_steps(mapping: &Mapping, dim: Dim) -> u64 {
    fn go(
        chain: &[u64],
        mapping: &Mapping,
        memo: &mut BTreeMap<(usize, u64), u64>,
        b: usize,
        size: u64,
    ) -> u64 {
        if b == 0 {
            // A tile that reached the innermost boundary is one step
            // unit; degenerate zero-sized tiles (malformed chains,
            // already reported as RBY003) contribute nothing.
            return u64::from(size > 0);
        }
        if let Some(&steps) = memo.get(&(b, size)) {
            return steps;
        }
        let g = chain[b - 1].max(1);
        let kind = mapping.layout().kind_of(SlotId::new(b - 1));
        let steps = if kind.is_spatial() {
            // Lockstep: one dispatch, paced by the largest chunk.
            go(chain, mapping, memo, b - 1, size.min(g))
        } else {
            let full = size / g;
            let rem = size % g;
            let mut steps = full.saturating_mul(go(chain, mapping, memo, b - 1, g));
            if rem > 0 {
                steps = steps.saturating_add(go(chain, mapping, memo, b - 1, rem));
            }
            steps
        };
        memo.insert((b, size), steps);
        steps
    }
    let chain = mapping.tile_chain(dim);
    let slots = chain.len() - 1;
    let mut memo = BTreeMap::new();
    go(chain, mapping, &mut memo, slots, chain[slots])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapping::SlotKind;
    use ruby_model::evaluate_with;
    use ruby_workload::DimMap;

    fn bounds_m(d: u64) -> DimMap<u64> {
        let mut b = DimMap::splat(1u64);
        b[Dim::M] = d;
        b
    }

    #[test]
    fn valid_mapping_has_no_errors() {
        let arch = presets::toy_linear(9, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 9);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(!analysis.has_errors(), "{}", analysis.render());
    }

    #[test]
    fn fanout_overflow_reported_as_rby002() {
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(analysis.has_errors());
        assert!(analysis
            .errors()
            .any(|d| d.code() == DiagCode::FanoutOverflow));
    }

    #[test]
    fn capacity_overflow_reported_as_rby001_with_anchors() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 32, 1, 8, 8, 3, 3, (1, 1));
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut b = Mapping::builder(3);
        b.set_tile(Dim::M, 2, SlotKind::Temporal, 32);
        b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
        b.set_tile(Dim::S, 2, SlotKind::Temporal, 3);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let analysis = analyzer.analyze(&m);
        let cap: Vec<_> = analysis
            .errors()
            .filter(|d| d.code() == DiagCode::CapacityExceeded)
            .collect();
        assert!(!cap.is_empty());
        assert_eq!(cap[0].level(), Some(2));
        assert_eq!(cap[0].operand(), Some("W"));
    }

    #[test]
    fn all_violations_reported_not_just_first() {
        // Violates fanout at level 0 AND shared capacity at level 1; the
        // model's fail-fast screen reports only the fanout, the analyzer
        // reports both.
        let arch = presets::toy_linear(4, 64);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut b = Mapping::builder(2);
        // Chain [1,1,1,16,16,100,100]: spatial count ceil(100/16) = 7
        // over 4 PEs, and a 16-element PE tile needing 16+16+1 = 33 of
        // 32 shared words.
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 8);
        b.set_tile(Dim::M, 1, SlotKind::Temporal, 16);
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(analysis
            .errors()
            .any(|d| d.code() == DiagCode::FanoutOverflow));
        assert!(analysis
            .errors()
            .any(|d| d.code() == DiagCode::CapacityExceeded));
    }

    #[test]
    fn wrong_depth_reported_as_rby003_without_panicking() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        // Built for 2 levels; the architecture has 3.
        let m = Mapping::builder(2)
            .build_for_bounds(shape.bounds())
            .unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(analysis
            .errors()
            .any(|d| d.code() == DiagCode::IncompleteFactorization));
    }

    #[test]
    fn malformed_chain_reported_as_rby003() {
        // Hand-build a mapping whose outer tile misses the bound, as a
        // JSON round trip could produce; `evaluate` would silently cost
        // the truncated problem, the analyzer flags it.
        let arch = presets::toy_linear(4, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut tiling = DimMap::from_fn(|_| vec![1u64; 7]);
        tiling[Dim::M] = vec![1, 1, 1, 1, 1, 1, 64]; // bound is 100
        let m = Mapping::from_tile_chains(2, tiling, vec![ruby_mapping::DEFAULT_PERM; 2]).unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(analysis
            .errors()
            .any(|d| d.code() == DiagCode::IncompleteFactorization
                && d.message().contains("dimension bound 100")));
    }

    #[test]
    fn underutilized_fanout_is_warning_only() {
        let arch = presets::toy_linear(16, 1024);
        let shape = ProblemShape::rank1("d", 100);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let mut b = Mapping::builder(2);
        b.set_tile(Dim::M, 0, SlotKind::SpatialX, 4); // 4 of 16 PEs
        let m = b.build_for_bounds(shape.bounds()).unwrap();
        let analysis = analyzer.analyze(&m);
        assert!(!analysis.has_errors());
        assert!(analysis
            .warnings()
            .any(|d| d.code() == DiagCode::FanoutUnderutilized));
    }

    #[test]
    fn recount_matches_profile_machinery_on_imperfect_chains() {
        for (sx, t) in [(1u64, 7u64), (6, 1), (6, 2), (3, 7), (16, 16)] {
            let mut b = Mapping::builder(2);
            b.set_tile(Dim::M, 0, SlotKind::SpatialX, sx);
            b.set_tile(Dim::M, 1, SlotKind::Temporal, t);
            let m = b.build_for_bounds(&bounds_m(100)).unwrap();
            assert_eq!(
                recount_steps(&m, Dim::M),
                m.sequential_steps(Dim::M),
                "sx={sx} t={t}"
            );
        }
    }

    #[test]
    fn agrees_with_evaluate_on_rejection() {
        let arch = presets::eyeriss_like(14, 12);
        let shape = ProblemShape::conv("l", 1, 16, 4, 8, 8, 3, 3, (1, 1));
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let mut b = Mapping::builder(3);
        for sx in [1u64, 7, 14, 15] {
            for t in [1u64, 9, 32, 96] {
                b.reset();
                b.set_tile(Dim::Q, 1, SlotKind::SpatialX, sx);
                b.set_tile(Dim::M, 2, SlotKind::Temporal, t);
                b.set_tile(Dim::R, 2, SlotKind::Temporal, 3);
                let m = b.build_for_bounds(shape.bounds()).unwrap();
                let rejected = evaluate_with(&ctx, &m).is_err();
                let analysis = analyzer.analyze(&m);
                assert_eq!(rejected, analysis.has_errors(), "sx={sx} t={t}");
            }
        }
    }
}
