//! The differential contract, at scale: for structurally well-formed
//! mappings the analyzer reports at least one error exactly when the
//! cost model's `precheck` rejects the mapping. Exercised over >10k
//! sampled *and* enumerated mappings across the Eyeriss-like and
//! Simba-like presets, plus proptest determinism and agreement checks.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ruby_analysis::MappingAnalyzer;
use ruby_arch::{presets, Architecture};
use ruby_mapspace::{EnumLimits, EnumTables, Mapspace, MapspaceKind, SubspaceIterator};
use ruby_model::{EvalContext, ModelOptions};
use ruby_workload::ProblemShape;

/// The two presets the acceptance criteria name, each with a workload
/// cramped enough that sampling produces a healthy mix of valid and
/// invalid mappings.
fn preset_pairs() -> Vec<(&'static str, Architecture, ProblemShape)> {
    vec![
        (
            "eyeriss_like",
            presets::eyeriss_like(14, 12),
            ProblemShape::conv("diff_conv", 1, 32, 16, 14, 14, 3, 3, (1, 1)),
        ),
        (
            "simba_like",
            presets::simba_like(15, 4, 4),
            ProblemShape::gemm("diff_gemm", 64, 48, 96),
        ),
    ]
}

/// Checks one mapping; returns whether the analyzer found errors, after
/// asserting both sides agree.
fn check_agreement(
    label: &str,
    ctx: &EvalContext<'_>,
    analyzer: &MappingAnalyzer<'_>,
    mapping: &ruby_mapping::Mapping,
) -> bool {
    let rejected = ctx.precheck(mapping).is_err();
    let analysis = analyzer.analyze(mapping);
    assert_eq!(
        rejected,
        analysis.has_errors(),
        "{label}: precheck {} but analyzer said {}\nmapping: {mapping:?}\nfindings:\n{}",
        if rejected { "rejected" } else { "accepted" },
        if analysis.has_errors() {
            "invalid"
        } else {
            "valid"
        },
        analysis.render(),
    );
    analysis.has_errors()
}

#[test]
fn sampled_and_enumerated_mappings_never_disagree_with_precheck() {
    const SAMPLED_PER_PRESET: usize = 3_000;
    const ENUMERATED_PER_PRESET: usize = 3_000;
    let mut total = 0usize;
    let mut invalid = 0usize;
    for (name, arch, shape) in preset_pairs() {
        let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);

        // Random draws: the mix the search loop actually sees.
        let mut rng = SmallRng::seed_from_u64(0x5eed_0001);
        let mut sampler = space.sampler();
        let mut mapping = space.sample(&mut rng);
        for i in 0..SAMPLED_PER_PRESET {
            sampler.sample_into(&mut mapping, &mut rng);
            let label = format!("{name} sampled #{i}");
            invalid += usize::from(check_agreement(&label, &ctx, &analyzer, &mapping));
            total += 1;
        }

        // Deterministic enumeration: walks regions the sampler rarely
        // hits (extreme fanout signatures, deep temporal chains).
        let tables = EnumTables::build(&space, &EnumLimits::default())
            .expect("preset spaces fit the default enumeration limits");
        let mut enumerated = 0usize;
        'regions: for region in tables.regions() {
            let end = region.leaves.min((ENUMERATED_PER_PRESET / 4) as u64);
            let mut it = SubspaceIterator::new(&tables, region, 0, end);
            while it.next_into(&mut mapping).is_some() {
                let label = format!("{name} enumerated #{enumerated}");
                invalid += usize::from(check_agreement(&label, &ctx, &analyzer, &mapping));
                enumerated += 1;
                total += 1;
                if enumerated >= ENUMERATED_PER_PRESET {
                    break 'regions;
                }
            }
        }
        assert!(
            enumerated >= ENUMERATED_PER_PRESET / 2,
            "{name}: only {enumerated} enumerated mappings"
        );
    }
    assert!(total >= 10_000, "only {total} mappings checked");
    // The differential is only meaningful if both verdicts occur.
    assert!(invalid > 0, "no invalid mapping in {total}");
    assert!(invalid < total, "no valid mapping in {total}");
}

fn preset(ix: usize) -> (&'static str, Architecture, ProblemShape) {
    let mut pairs = preset_pairs();
    pairs.swap_remove(ix % 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// 1k sampled mappings per preset agree with `precheck` (each case
    /// draws one mapping per preset from an arbitrary seed).
    #[test]
    fn analyzer_agrees_with_precheck_on_sampled_mappings(seed in 0u64..=u64::MAX) {
        for (name, arch, shape) in preset_pairs() {
            let ctx = EvalContext::new(&arch, &shape, ModelOptions::default());
            let analyzer = MappingAnalyzer::new(&arch, &shape);
            let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mapping = space.sample(&mut rng);
            check_agreement(name, &ctx, &analyzer, &mapping);
        }
    }

    /// Analysis is a pure function of the mapping: re-running it yields
    /// byte-identical renderings and JSON, regardless of preset.
    #[test]
    fn analysis_is_deterministic(seed in 0u64..=u64::MAX, ix in 0usize..2) {
        let (_, arch, shape) = preset(ix);
        let analyzer = MappingAnalyzer::new(&arch, &shape);
        let space = Mapspace::new(arch.clone(), shape.clone(), MapspaceKind::RubyS);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = space.sample(&mut rng);
        let first = analyzer.analyze(&mapping);
        let second = analyzer.analyze(&mapping);
        prop_assert_eq!(first.render(), second.render());
        let a = serde_json::to_string(&first).expect("analysis serializes");
        let b = serde_json::to_string(&second).expect("analysis serializes");
        prop_assert_eq!(a, b);
    }
}
