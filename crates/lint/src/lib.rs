//! `ruby-lint` v2: a workspace semantic model plus pluggable analysis
//! passes over it.
//!
//! The crate lexes every workspace source file with a hand-written
//! string/comment/raw-string-aware lexer ([`lexer`]), builds a semantic
//! model ([`model::Workspace`]) — item trees, cfg regions, atomic
//! sites with their orderings, lock acquisitions, schema-versioned
//! serde surfaces — and runs the [`passes`] over it:
//!
//! | band | codes | pass |
//! |------|-------|------|
//! | 20x  | legacy hygiene rules (panics, orderings, casts, markers) | `legacy-rules` |
//! | 21x  | atomic release/acquire protocol pairing | `atomic-protocol` |
//! | 22x  | lock acquisition order, guards across blocking calls | `lock-discipline` |
//! | 24x  | serde schema drift against `schema.lock` | `schema-drift` |
//! | 25x  | feature-matrix hygiene, interleave shim coverage | `feature-matrix` |
//!
//! Findings print human-readable by default, as a stable JSON document
//! (`{"schema":1,"findings":[...]}`) under `--json`, and can be
//! suppressed through a committed baseline file. Exit codes: 0 clean,
//! 1 errors, 2 warnings only.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::Value;

pub mod lexer;
pub mod model;
pub mod passes;

/// Version of the `--json` findings document.
pub const JSON_SCHEMA: u64 = 1;

/// How bad a finding is: errors fail the build (exit 1), warnings only
/// flip the exit code to 2 when nothing worse is present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Every diagnostic the linter can emit. The numeric bands group codes
/// by pass; numbers are stable across releases so baselines keep
/// working.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// RBYL200: a workspace file could not be read.
    IoError,
    /// RBYL201: panic-capable call in library code without a marker.
    PanicSite,
    /// RBYL202: atomic ordering without an `// ordering:` rationale.
    OrderingRationale,
    /// RBYL203: truncating integer cast in audited numeric code.
    TruncatingCast,
    /// RBYL204: allowlist marker without a justification.
    UnjustifiedAllow,
    /// RBYL210: Release store with no acquire-side load of the cell.
    UnpairedRelease,
    /// RBYL211: Acquire load with no release-side store of the cell.
    UnpairedAcquire,
    /// RBYL212: SeqCst and Relaxed mixed on one cell without rationale.
    MixedOrdering,
    /// RBYL220: pairwise lock acquisition order inversion.
    LockOrderInversion,
    /// RBYL221: lock guard held across a join/spawn/evaluate call.
    LockHeldAcrossBlocking,
    /// RBYL240: schema surface changed without a version bump.
    SchemaDrift,
    /// RBYL241: schema.lock missing, unreadable, or behind a bump.
    SchemaLockStale,
    /// RBYL242: schema surface not recorded in schema.lock.
    SchemaSurfaceUnlocked,
    /// RBYL243: locked schema surface no longer exists.
    SchemaSurfaceRemoved,
    /// RBYL250: feature-gated symbol referenced outside its gate.
    FeatureGateLeak,
    /// RBYL251: shim-bound atomic type never interleave-tested.
    ShimCoverageGap,
}

impl LintCode {
    /// The stable `RBYLnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::IoError => "RBYL200",
            LintCode::PanicSite => "RBYL201",
            LintCode::OrderingRationale => "RBYL202",
            LintCode::TruncatingCast => "RBYL203",
            LintCode::UnjustifiedAllow => "RBYL204",
            LintCode::UnpairedRelease => "RBYL210",
            LintCode::UnpairedAcquire => "RBYL211",
            LintCode::MixedOrdering => "RBYL212",
            LintCode::LockOrderInversion => "RBYL220",
            LintCode::LockHeldAcrossBlocking => "RBYL221",
            LintCode::SchemaDrift => "RBYL240",
            LintCode::SchemaLockStale => "RBYL241",
            LintCode::SchemaSurfaceUnlocked => "RBYL242",
            LintCode::SchemaSurfaceRemoved => "RBYL243",
            LintCode::FeatureGateLeak => "RBYL250",
            LintCode::ShimCoverageGap => "RBYL251",
        }
    }

    /// The short kebab-case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::IoError => "io-error",
            LintCode::PanicSite => "panic-site",
            LintCode::OrderingRationale => "ordering-rationale",
            LintCode::TruncatingCast => "truncating-cast",
            LintCode::UnjustifiedAllow => "unjustified-allow",
            LintCode::UnpairedRelease => "unpaired-release",
            LintCode::UnpairedAcquire => "unpaired-acquire",
            LintCode::MixedOrdering => "mixed-ordering",
            LintCode::LockOrderInversion => "lock-order-inversion",
            LintCode::LockHeldAcrossBlocking => "lock-held-across-blocking",
            LintCode::SchemaDrift => "schema-drift",
            LintCode::SchemaLockStale => "schema-lock-stale",
            LintCode::SchemaSurfaceUnlocked => "schema-surface-unlocked",
            LintCode::SchemaSurfaceRemoved => "schema-surface-removed",
            LintCode::FeatureGateLeak => "feature-gate-leak",
            LintCode::ShimCoverageGap => "shim-coverage-gap",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            // A missing interleave schedule is a coverage debt, not a
            // broken invariant; everything else fails the build.
            LintCode::ShimCoverageGap => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One diagnostic: a code anchored at a file/line with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: LintCode,
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(code: LintCode, path: PathBuf, line: usize, message: String) -> Self {
        Finding {
            code,
            path,
            line,
            message,
        }
    }

    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("code".to_owned(), Value::Str(self.code.code().to_owned())),
            ("name".to_owned(), Value::Str(self.code.name().to_owned())),
            (
                "severity".to_owned(),
                Value::Str(self.code.severity().as_str().to_owned()),
            ),
            (
                "path".to_owned(),
                Value::Str(self.path.display().to_string()),
            ),
            ("line".to_owned(), Value::U64(self.line as u64)),
            ("message".to_owned(), Value::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.path.display(),
            self.line,
            self.code.severity().as_str(),
            self.code.code(),
            self.message
        )
    }
}

/// Runs every pass over the workspace at `root` and returns the sorted
/// findings.
pub fn run(root: &Path) -> Vec<Finding> {
    let ws = model::Workspace::load(root);
    run_model(&ws)
}

/// Runs every pass over an already-built model (fixture tests build
/// mini workspaces directly).
pub fn run_model(ws: &model::Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pass in passes::all_passes() {
        pass.run(ws, &mut findings);
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.code, &a.message).cmp(&(&b.path, b.line, b.code, &b.message))
    });
    findings.dedup();
    findings
}

/// Renders findings as the stable `--json` document.
pub fn render_json(findings: &[Finding]) -> String {
    let doc = Value::Obj(vec![
        ("schema".to_owned(), Value::U64(JSON_SCHEMA)),
        (
            "findings".to_owned(),
            Value::Arr(findings.iter().map(Finding::to_json).collect()),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_owned());
    text.push('\n');
    text
}

/// A baseline: previously-accepted findings to suppress. Matching is by
/// `(code, path, message)` — line numbers drift as files are edited, so
/// they are deliberately not part of the key.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Parses a baseline file (same shape as `--json` output; only the
    /// key fields of each finding are read).
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let findings = doc
            .field("findings")
            .and_then(Value::as_arr)
            .map_err(|e| e.to_string())?;
        let mut entries = Vec::new();
        for f in findings {
            let key = |k: &str| -> Result<String, String> {
                f.field(k)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .map_err(|e| e.to_string())
            };
            entries.push((key("code")?, key("path")?, key("message")?));
        }
        Ok(Baseline { entries })
    }

    pub fn suppresses(&self, finding: &Finding) -> bool {
        let path = finding.path.display().to_string();
        self.entries
            .iter()
            .any(|(c, p, m)| c == finding.code.code() && *p == path && *m == finding.message)
    }

    /// Drops suppressed findings, returning the survivors.
    pub fn filter(&self, findings: Vec<Finding>) -> Vec<Finding> {
        findings
            .into_iter()
            .filter(|f| !self.suppresses(f))
            .collect()
    }
}

/// The process exit code for a finding set: 0 clean, 1 any error,
/// 2 warnings only.
pub fn exit_code(findings: &[Finding]) -> i32 {
    if findings
        .iter()
        .any(|f| f.code.severity() == Severity::Error)
    {
        1
    } else if findings.is_empty() {
        0
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: LintCode, path: &str, line: usize, msg: &str) -> Finding {
        Finding::new(code, PathBuf::from(path), line, msg.to_owned())
    }

    #[test]
    fn exit_codes_distinguish_errors_from_warnings() {
        assert_eq!(exit_code(&[]), 0);
        let warn = finding(LintCode::ShimCoverageGap, "a.rs", 1, "gap");
        assert_eq!(exit_code(std::slice::from_ref(&warn)), 2);
        let err = finding(LintCode::PanicSite, "a.rs", 2, "unwrap");
        assert_eq!(exit_code(&[warn, err]), 1);
    }

    #[test]
    fn json_document_round_trips_with_schema_header() {
        let findings = vec![finding(
            LintCode::SchemaDrift,
            "crates/x/src/lib.rs",
            9,
            "m",
        )];
        let text = render_json(&findings);
        let doc: Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(doc.field("schema").unwrap().as_u64().unwrap(), JSON_SCHEMA);
        let arr = doc.field("findings").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].field("code").unwrap().as_str().unwrap(), "RBYL240");
        assert_eq!(arr[0].field("severity").unwrap().as_str().unwrap(), "error");
        assert_eq!(arr[0].field("line").unwrap().as_u64().unwrap(), 9);
    }

    #[test]
    fn baseline_suppresses_by_code_path_message_not_line() {
        let accepted = vec![finding(LintCode::PanicSite, "a.rs", 10, "`unwrap` here")];
        let baseline = Baseline::parse(&render_json(&accepted)).expect("parse");
        // Same finding at a different line is still suppressed…
        let moved = finding(LintCode::PanicSite, "a.rs", 42, "`unwrap` here");
        assert!(baseline.suppresses(&moved));
        // …but a different message or path is not.
        let other = finding(LintCode::PanicSite, "a.rs", 10, "`expect` here");
        assert!(!baseline.suppresses(&other));
        let elsewhere = finding(LintCode::PanicSite, "b.rs", 10, "`unwrap` here");
        assert_eq!(baseline.filter(vec![moved, other, elsewhere]).len(), 2);
    }

    #[test]
    fn codes_and_names_are_unique() {
        let all = [
            LintCode::IoError,
            LintCode::PanicSite,
            LintCode::OrderingRationale,
            LintCode::TruncatingCast,
            LintCode::UnjustifiedAllow,
            LintCode::UnpairedRelease,
            LintCode::UnpairedAcquire,
            LintCode::MixedOrdering,
            LintCode::LockOrderInversion,
            LintCode::LockHeldAcrossBlocking,
            LintCode::SchemaDrift,
            LintCode::SchemaLockStale,
            LintCode::SchemaSurfaceUnlocked,
            LintCode::SchemaSurfaceRemoved,
            LintCode::FeatureGateLeak,
            LintCode::ShimCoverageGap,
        ];
        let codes: std::collections::BTreeSet<_> = all.iter().map(|c| c.code()).collect();
        let names: std::collections::BTreeSet<_> = all.iter().map(|c| c.name()).collect();
        assert_eq!(codes.len(), all.len());
        assert_eq!(names.len(), all.len());
    }
}
