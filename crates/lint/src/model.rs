//! The workspace semantic model: everything the passes need, computed
//! once per file from the [`lexer`](crate::lexer) token stream.
//!
//! The model is deliberately line-oriented where the legacy rules were
//! line-oriented (sanitized code text, marker coverage) and
//! token-oriented where the new analyses need structure (cfg regions by
//! real brace tracking, atomic operation sites with their orderings,
//! lock acquisitions, function spans, schema-versioned serde surfaces).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, Token, TokenKind};

/// How many lines below a marker comment's last line it still covers.
pub const ADJACENCY: usize = 4;

/// Minimum justification length (characters after the marker) for an
/// allowlist entry to count as justified.
pub const MIN_JUSTIFICATION: usize = 10;

/// The marker kinds the legacy rules key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// `// lint: allow(panics) — <why>`
    AllowPanics,
    /// `// lint: allow(cast) — <why>`
    AllowCast,
    /// `// justified: <why>` (the stricter crates/search rationale)
    Justified,
    /// `// ordering: <why>`
    Ordering,
}

/// One marker occurrence, after comment-block sliding.
#[derive(Debug, Clone)]
pub struct MarkerDef {
    pub kind: MarkerKind,
    /// Line the marker was written on (before sliding).
    pub line: usize,
    /// Whether its justification text meets [`MIN_JUSTIFICATION`].
    pub justified: bool,
}

/// Per-line marker coverage for a file, legacy-compatible: a marker
/// covers its own line and the [`ADJACENCY`] lines below the end of the
/// comment block it lives in.
#[derive(Debug, Default)]
pub struct MarkerSet {
    pub defs: Vec<MarkerDef>,
    covered: [Vec<bool>; 4],
}

impl MarkerSet {
    fn slot(kind: MarkerKind) -> usize {
        match kind {
            MarkerKind::AllowPanics => 0,
            MarkerKind::AllowCast => 1,
            MarkerKind::Justified => 2,
            MarkerKind::Ordering => 3,
        }
    }

    /// Whether `kind` covers 1-based `line`.
    pub fn covers(&self, kind: MarkerKind, line: usize) -> bool {
        self.covered[Self::slot(kind)]
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// The condition a `#[cfg(...)]` / `#[cfg_attr(...)]` gate expresses,
/// flattened: `test` if the bare `test` predicate occurs outside
/// `not(...)`, plus the positively and negatively required features.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfgGate {
    pub test: bool,
    pub features: Vec<String>,
    pub not_features: Vec<String>,
}

impl CfgGate {
    pub fn is_empty(&self) -> bool {
        !self.test && self.features.is_empty() && self.not_features.is_empty()
    }
}

/// A cfg-gated item region: the attribute line through the closing
/// brace (or the `;` of a braceless item).
#[derive(Debug, Clone)]
pub struct CfgRegion {
    pub gate: CfgGate,
    /// 1-based inclusive line span, starting at the attribute.
    pub start_line: usize,
    pub end_line: usize,
}

impl CfgRegion {
    pub fn contains(&self, line: usize) -> bool {
        line >= self.start_line && line <= self.end_line
    }
}

/// What an atomic method call does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    Load,
    Store,
    /// `swap` / `fetch_*`: reads and writes in one step.
    Rmw,
    /// `compare_exchange(_weak)` / `fetch_update`: success ordering
    /// first, failure (load-only) ordering second.
    Cas,
}

/// One atomic operation site, grouped later by `field`.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Last identifier of the receiver chain (`self.epoch.load` →
    /// `epoch`; `cells[i].store` → `cells`; `slot().load` → `slot`).
    pub field: String,
    pub op: AtomicOp,
    pub method: String,
    /// `Ordering::X` names in argument order (success first for CAS).
    pub orderings: Vec<String>,
    pub line: usize,
}

/// An `Atomic*::new(...)` construction site.
#[derive(Debug, Clone)]
pub struct AtomicInit {
    pub type_name: String,
    pub line: usize,
}

/// One `.lock()` acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Last identifier of the receiver chain.
    pub name: String,
    pub line: usize,
    /// Index of the `lock` identifier into [`SourceFile::tokens`].
    pub token: usize,
}

/// A `fn` item with its brace-tracked body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    pub end_line: usize,
    /// Token index range of the body, `{` and `}` inclusive; empty for
    /// bodyless trait methods.
    pub body: std::ops::Range<usize>,
}

/// How a schema-versioned serde surface was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceKind {
    /// `impl_serde_struct!(Name { … })` with a `schema` field.
    Struct,
    /// A manual `impl serde::Serialize` emitting a `"schema"` key.
    Manual,
    /// A JSON template string literal with a `"schema"` key (the
    /// checkpoint header).
    Template,
}

impl SurfaceKind {
    pub const fn as_str(self) -> &'static str {
        match self {
            SurfaceKind::Struct => "struct",
            SurfaceKind::Manual => "manual",
            SurfaceKind::Template => "template",
        }
    }
}

/// One schema-versioned serialization surface: a name, its ordered
/// field/key list, and the version constant that stamps it.
#[derive(Debug, Clone)]
pub struct SchemaSurface {
    pub name: String,
    pub kind: SurfaceKind,
    pub fields: Vec<String>,
    pub line: usize,
    /// The `*SCHEMA*` const stamping this surface, when resolvable.
    pub version_const: Option<String>,
}

/// One parsed source file plus everything derived from its tokens.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (`crates/…/src/…`).
    pub path: PathBuf,
    /// Crate directory name (`search`, `telemetry`, …).
    pub crate_name: String,
    /// `main.rs` / `tests.rs` / `*_tests.rs` / under `src/bin/`: the
    /// legacy rules skip these entirely.
    pub is_test_file: bool,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Per line (0-indexed by `line - 1`): code text with comments
    /// removed and string/char literal interiors blanked.
    pub code_lines: Vec<String>,
    /// Per line: concatenated comment text (line comments, trailing
    /// comments, the slice of any block comment crossing the line).
    pub comment_lines: Vec<String>,
    /// Per line: only comments/whitespace, with at least one comment.
    pub is_comment_line: Vec<bool>,
    pub markers: MarkerSet,
    /// Per line: inside a `cfg(test)`-gated region.
    pub test_mask: Vec<bool>,
    pub cfg_regions: Vec<CfgRegion>,
    pub fns: Vec<FnSpan>,
    pub atomic_sites: Vec<AtomicSite>,
    pub atomic_inits: Vec<AtomicInit>,
    pub lock_sites: Vec<LockSite>,
    /// `Atomic*` names this file binds from the interleave shim, with
    /// the gate of the region the binding sits in and the binding line.
    pub shim_bindings: Vec<(String, CfgGate, usize)>,
    pub schema_surfaces: Vec<SchemaSurface>,
}

impl SourceFile {
    /// 1-based line count.
    pub fn line_count(&self) -> usize {
        self.code_lines.len()
    }

    /// Whether 1-based `line` is inside a `cfg(test)` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_mask
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Sanitized code text of 1-based `line` (empty when out of range).
    pub fn code_line(&self, line: usize) -> &str {
        self.code_lines
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether any enclosing cfg region at `line` requires `feature`
    /// (positively) or is a test region.
    pub fn line_gated_on(&self, feature: &str, line: usize) -> bool {
        self.cfg_regions.iter().any(|r| {
            r.contains(line) && (r.gate.features.iter().any(|f| f == feature) || r.gate.test)
        })
    }
}

/// The whole parsed workspace.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// Files that could not be read (path, error).
    pub io_errors: Vec<(PathBuf, String)>,
    /// `const *SCHEMA*: u64 = N` definitions across the workspace.
    pub schema_consts: BTreeMap<String, u64>,
}

impl Workspace {
    /// Parses every crate source under `root/crates/*/src`, skipping
    /// the lint crate itself (historical: the lint wall does not lint
    /// its own implementation) and `tests/` / `benches/` / `examples/`
    /// directories.
    pub fn load(root: &Path) -> Workspace {
        let mut files = Vec::new();
        let mut io_errors = Vec::new();
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if !path.is_dir() || path.file_name().is_some_and(|n| n == "lint") {
                    continue;
                }
                walk_sources(&path.join("src"), false, &mut paths);
            }
        }
        paths.sort();
        for (path, in_bin) in paths {
            let display = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            match std::fs::read_to_string(&path) {
                Ok(text) => files.push(SourceFile::parse(display, text, in_bin)),
                Err(err) => io_errors.push((display, err.to_string())),
            }
        }
        let mut ws = Workspace {
            root: root.to_path_buf(),
            files,
            io_errors,
            schema_consts: BTreeMap::new(),
        };
        ws.schema_consts = ws.collect_schema_consts();
        ws
    }

    fn collect_schema_consts(&self) -> BTreeMap<String, u64> {
        let mut consts = BTreeMap::new();
        for file in &self.files {
            let toks = &file.tokens;
            let code: Vec<usize> = code_indices(toks);
            for w in 0..code.len().saturating_sub(5) {
                let at = |i: usize| &toks[code[w + i]];
                if at(0).kind == TokenKind::Ident
                    && at(0).text(&file.text) == "const"
                    && at(1).kind == TokenKind::Ident
                    && at(1).text(&file.text).contains("SCHEMA")
                    && at(2).text(&file.text) == ":"
                    && at(4).text(&file.text) == "="
                    && at(5).kind == TokenKind::Number
                {
                    if let Ok(value) = at(5).text(&file.text).parse::<u64>() {
                        consts.insert(at(1).text(&file.text).to_owned(), value);
                    }
                }
            }
        }
        consts
    }

    /// Every schema surface in non-test files, outside test regions.
    pub fn schema_surfaces(&self) -> impl Iterator<Item = (&SourceFile, &SchemaSurface)> {
        self.files.iter().flat_map(|f| {
            f.schema_surfaces
                .iter()
                .filter(move |s| !f.is_test_file && !f.in_test_region(s.line))
                .map(move |s| (f, s))
        })
    }
}

fn walk_sources(dir: &Path, in_bin: bool, out: &mut Vec<(PathBuf, bool)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "tests" || name == "benches" || name == "examples" {
                continue;
            }
            walk_sources(&path, in_bin || name == "bin", out);
        } else if name.ends_with(".rs") {
            out.push((path, in_bin));
        }
    }
}

/// Indices of non-comment, non-whitespace tokens.
fn code_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_code())
        .map(|(i, _)| i)
        .collect()
}

const ATOMIC_METHODS: [(&str, AtomicOp); 14] = [
    ("load", AtomicOp::Load),
    ("store", AtomicOp::Store),
    ("swap", AtomicOp::Rmw),
    ("fetch_add", AtomicOp::Rmw),
    ("fetch_sub", AtomicOp::Rmw),
    ("fetch_and", AtomicOp::Rmw),
    ("fetch_or", AtomicOp::Rmw),
    ("fetch_xor", AtomicOp::Rmw),
    ("fetch_max", AtomicOp::Rmw),
    ("fetch_min", AtomicOp::Rmw),
    ("fetch_nand", AtomicOp::Rmw),
    ("compare_exchange", AtomicOp::Cas),
    ("compare_exchange_weak", AtomicOp::Cas),
    ("fetch_update", AtomicOp::Cas),
];

impl SourceFile {
    fn parse(path: PathBuf, text: String, in_bin: bool) -> SourceFile {
        let crate_name = path
            .components()
            .nth(1)
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .unwrap_or_default();
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let is_test_file = in_bin
            || file_name == "main.rs"
            || file_name == "tests.rs"
            || file_name.ends_with("_tests.rs");
        let tokens = tokenize(&text);
        let line_total = text.lines().count().max(1);
        let (code_lines, comment_lines, is_comment_line) = line_views(&text, &tokens, line_total);
        let markers = compute_markers(&comment_lines, &is_comment_line);
        let cfg_regions = compute_cfg_regions(&text, &tokens, line_total);
        let mut test_mask = vec![false; line_total];
        for region in cfg_regions.iter().filter(|r| r.gate.test) {
            for line in region.start_line..=region.end_line.min(line_total) {
                test_mask[line - 1] = true;
            }
        }
        let mut file = SourceFile {
            path,
            crate_name,
            is_test_file,
            text,
            tokens,
            code_lines,
            comment_lines,
            is_comment_line,
            markers,
            test_mask,
            cfg_regions,
            fns: Vec::new(),
            atomic_sites: Vec::new(),
            atomic_inits: Vec::new(),
            lock_sites: Vec::new(),
            shim_bindings: Vec::new(),
            schema_surfaces: Vec::new(),
        };
        file.fns = file.compute_fns();
        file.compute_call_sites();
        file.compute_shim_bindings();
        file.compute_schema_surfaces();
        file
    }

    fn tok_text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    fn compute_fns(&self) -> Vec<FnSpan> {
        let code = code_indices(&self.tokens);
        let mut fns = Vec::new();
        let mut w = 0;
        while w + 1 < code.len() {
            let i = code[w];
            if self.tokens[i].kind == TokenKind::Ident && self.tok_text(i) == "fn" {
                let name_i = code[w + 1];
                if self.tokens[name_i].kind == TokenKind::Ident {
                    // Find the body `{` (or a bodyless `;`) at
                    // paren/bracket depth 0.
                    let mut depth = 0i64;
                    let mut v = w + 2;
                    let mut body = 0..0;
                    let mut end_line = self.tokens[name_i].line;
                    while v < code.len() {
                        let t = self.tok_text(code[v]);
                        match t {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                let (close, _) = self.matching_brace(&code, v);
                                body =
                                    code[v]..code.get(close).map_or(self.tokens.len(), |&c| c + 1);
                                end_line = self
                                    .tokens
                                    .get(code.get(close).copied().unwrap_or(i))
                                    .map_or(end_line, |t| t.line);
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        v += 1;
                    }
                    fns.push(FnSpan {
                        name: self.tok_text(name_i).to_owned(),
                        start_line: self.tokens[i].line,
                        end_line,
                        body,
                    });
                }
            }
            w += 1;
        }
        fns
    }

    /// Given `code[open_w]` on a `{`, returns the `code` index of the
    /// matching `}` (saturating at the stream end).
    fn matching_brace(&self, code: &[usize], open_w: usize) -> (usize, i64) {
        let mut depth = 0i64;
        for (v, &ci) in code.iter().enumerate().skip(open_w) {
            match self.tok_text(ci) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return (v, depth);
                    }
                }
                _ => {}
            }
        }
        (code.len().saturating_sub(1), depth)
    }

    /// Atomic operations, `Atomic*::new` inits, and `.lock()` sites.
    fn compute_call_sites(&mut self) {
        let code = code_indices(&self.tokens);
        let mut atomic_sites = Vec::new();
        let mut atomic_inits = Vec::new();
        let mut lock_sites = Vec::new();
        for w in 0..code.len() {
            let i = code[w];
            if self.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let name = self.tok_text(i);
            // `Atomic*::new(`
            if let Some(rest) = name.strip_prefix("Atomic") {
                if !rest.is_empty()
                    && w + 3 < code.len()
                    && self.tok_text(code[w + 1]) == ":"
                    && self.tok_text(code[w + 2]) == ":"
                    && self.tok_text(code[w + 3]) == "new"
                {
                    atomic_inits.push(AtomicInit {
                        type_name: name.to_owned(),
                        line: self.tokens[i].line,
                    });
                }
            }
            // `.method(` receivers
            let is_method_call = w >= 1
                && self.tok_text(code[w - 1]) == "."
                && w + 1 < code.len()
                && self.tok_text(code[w + 1]) == "(";
            if !is_method_call {
                continue;
            }
            let receiver = self.receiver_name(&code, w - 1);
            if name == "lock" {
                if let Some(recv) = receiver.clone() {
                    lock_sites.push(LockSite {
                        name: recv,
                        line: self.tokens[i].line,
                        token: i,
                    });
                }
                continue;
            }
            if let Some((_, op)) = ATOMIC_METHODS.iter().find(|(m, _)| *m == name) {
                let Some(field) = receiver else { continue };
                let orderings = self.call_orderings(&code, w + 1);
                // Only treat it as an atomic op when an explicit
                // `Ordering::` argument is present — `Vec::swap`,
                // `HashMap::fetch_update`-alikes etc. stay invisible.
                if orderings.is_empty() {
                    continue;
                }
                atomic_sites.push(AtomicSite {
                    field,
                    op: *op,
                    method: name.to_owned(),
                    orderings,
                    line: self.tokens[i].line,
                });
            }
        }
        self.atomic_sites = atomic_sites;
        self.atomic_inits = atomic_inits;
        self.lock_sites = lock_sites;
    }

    /// Last identifier of the receiver chain ending at `code[dot_w]`
    /// (a `.`): `a.b.load` → `b`; `cells[i].load` → `cells`;
    /// `slot().load` → `slot`.
    fn receiver_name(&self, code: &[usize], dot_w: usize) -> Option<String> {
        let mut v = dot_w.checked_sub(1)?;
        loop {
            let t = self.tok_text(code[v]);
            match t {
                "]" | ")" => {
                    // Walk back over the bracketed group.
                    let (open, close) = if t == "]" { ("[", "]") } else { ("(", ")") };
                    let mut depth = 0i64;
                    loop {
                        let s = self.tok_text(code[v]);
                        if s == close {
                            depth += 1;
                        } else if s == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        v = v.checked_sub(1)?;
                    }
                    v = v.checked_sub(1)?;
                }
                _ => {
                    if self.tokens[code[v]].kind == TokenKind::Ident {
                        return Some(t.to_owned());
                    }
                    return None;
                }
            }
        }
    }

    /// `Ordering::X` names between the `(` at `code[open_w]` and its
    /// matching `)`.
    fn call_orderings(&self, code: &[usize], open_w: usize) -> Vec<String> {
        let mut depth = 0i64;
        let mut out = Vec::new();
        let mut v = open_w;
        while v < code.len() {
            match self.tok_text(code[v]) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "Ordering"
                    if v + 3 < code.len()
                        && self.tok_text(code[v + 1]) == ":"
                        && self.tok_text(code[v + 2]) == ":"
                        && self.tokens[code[v + 3]].kind == TokenKind::Ident =>
                {
                    out.push(self.tok_text(code[v + 3]).to_owned());
                }
                _ => {}
            }
            v += 1;
        }
        out
    }

    /// `use …::shim::{…}` bindings of `Atomic*` types, with the cfg
    /// gate of the innermost region containing the binding.
    fn compute_shim_bindings(&mut self) {
        let code = code_indices(&self.tokens);
        let mut bindings = Vec::new();
        for w in 0..code.len() {
            if self.tok_text(code[w]) != "shim" {
                continue;
            }
            if w + 2 >= code.len()
                || self.tok_text(code[w + 1]) != ":"
                || self.tok_text(code[w + 2]) != ":"
            {
                continue;
            }
            let line = self.tokens[code[w]].line;
            let gate = self.innermost_gate(line);
            let mut v = w + 3;
            if v < code.len() && self.tok_text(code[v]) == "{" {
                v += 1;
                while v < code.len() && self.tok_text(code[v]) != "}" {
                    let t = self.tok_text(code[v]);
                    if self.tokens[code[v]].kind == TokenKind::Ident && t.starts_with("Atomic") {
                        bindings.push((t.to_owned(), gate.clone(), line));
                    }
                    v += 1;
                }
            } else if v < code.len() && self.tok_text(code[v]).starts_with("Atomic") {
                bindings.push((self.tok_text(code[v]).to_owned(), gate.clone(), line));
            }
        }
        self.shim_bindings = bindings;
    }

    /// Gate of the innermost cfg region containing `line` (empty gate
    /// when ungated).
    pub fn innermost_gate(&self, line: usize) -> CfgGate {
        self.cfg_regions
            .iter()
            .filter(|r| r.contains(line))
            .min_by_key(|r| r.end_line - r.start_line)
            .map(|r| r.gate.clone())
            .unwrap_or_default()
    }

    fn compute_schema_surfaces(&mut self) {
        let code = code_indices(&self.tokens);
        let mut surfaces = Vec::new();
        for w in 0..code.len() {
            let i = code[w];
            let t = self.tok_text(i);
            match self.tokens[i].kind {
                TokenKind::Ident if t == "impl_serde_struct" => {
                    if let Some(s) = self.struct_surface(&code, w) {
                        surfaces.push(s);
                    }
                }
                TokenKind::Ident if t == "impl" => {
                    if let Some(s) = self.manual_surface(&code, w) {
                        surfaces.push(s);
                    }
                }
                TokenKind::Str | TokenKind::RawStr => {
                    if let Some(s) = self.template_surface(i) {
                        surfaces.push(s);
                    }
                }
                _ => {}
            }
        }
        for s in &mut surfaces {
            s.version_const = self.resolve_version_const(s.line);
        }
        self.schema_surfaces = surfaces;
    }

    /// `impl_serde_struct!(Name { f1, f2, … })` with a `schema` field.
    fn struct_surface(&self, code: &[usize], w: usize) -> Option<SchemaSurface> {
        if self.tok_text(*code.get(w + 1)?) != "!" || self.tok_text(*code.get(w + 2)?) != "(" {
            return None;
        }
        let name_i = *code.get(w + 3)?;
        if self.tokens[name_i].kind != TokenKind::Ident || self.tok_text(*code.get(w + 4)?) != "{" {
            return None;
        }
        let mut fields = Vec::new();
        let mut v = w + 5;
        while v < code.len() && self.tok_text(code[v]) != "}" {
            if self.tokens[code[v]].kind == TokenKind::Ident {
                fields.push(self.tok_text(code[v]).to_owned());
            }
            v += 1;
        }
        if !fields.iter().any(|f| f == "schema") {
            return None;
        }
        Some(SchemaSurface {
            name: self.tok_text(name_i).to_owned(),
            kind: SurfaceKind::Struct,
            fields,
            line: self.tokens[name_i].line,
            version_const: None,
        })
    }

    /// `impl [serde::]Serialize for X { … }` whose body emits a
    /// `"schema"` key via the `("key".to_owned(), …)` tuple idiom.
    fn manual_surface(&self, code: &[usize], w: usize) -> Option<SchemaSurface> {
        let mut v = w + 1;
        if self.tok_text(*code.get(v)?) == "serde" {
            if self.tok_text(*code.get(v + 1)?) != ":" || self.tok_text(*code.get(v + 2)?) != ":" {
                return None;
            }
            v += 3;
        }
        if self.tok_text(*code.get(v)?) != "Serialize" || self.tok_text(*code.get(v + 1)?) != "for"
        {
            return None;
        }
        let name_i = *code.get(v + 2)?;
        if self.tokens[name_i].kind != TokenKind::Ident {
            return None;
        }
        // Find the impl body and collect its string keys in order.
        let mut open = v + 3;
        while open < code.len() && self.tok_text(code[open]) != "{" {
            open += 1;
        }
        if open >= code.len() {
            return None;
        }
        let (close, _) = self.matching_brace(code, open);
        let mut fields = Vec::new();
        for u in open..close {
            let i = code[u];
            if self.tokens[i].kind != TokenKind::Str {
                continue;
            }
            let key = self.tok_text(i).trim_matches('"');
            if key.is_empty() || !key.bytes().all(|b| b == b'_' || b.is_ascii_alphanumeric()) {
                continue;
            }
            // `"key".to_owned(),` / `"key".to_string(),`
            let tail: Vec<&str> = (1..=5)
                .filter_map(|d| code.get(u + d).map(|&ci| self.tok_text(ci)))
                .collect();
            if tail.len() == 5
                && tail[0] == "."
                && (tail[1] == "to_owned" || tail[1] == "to_string")
                && tail[2] == "("
                && tail[3] == ")"
                && tail[4] == ","
            {
                fields.push(key.to_owned());
            }
        }
        if !fields.iter().any(|f| f == "schema") {
            return None;
        }
        Some(SchemaSurface {
            name: self.tok_text(name_i).to_owned(),
            kind: SurfaceKind::Manual,
            fields,
            line: self.tokens[name_i].line,
            version_const: None,
        })
    }

    /// A string literal that is itself a JSON template with a `schema`
    /// key, e.g. the checkpoint header format string.
    fn template_surface(&self, i: usize) -> Option<SchemaSurface> {
        let raw = self.tokens[i].text(&self.text);
        let keys = template_keys(raw);
        if keys.is_empty() || !keys.iter().any(|k| k == "schema") {
            return None;
        }
        let line = self.tokens[i].line;
        let stem = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let enclosing = self
            .fns
            .iter()
            .filter(|f| line >= f.start_line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "top".to_owned());
        Some(SchemaSurface {
            name: format!("{stem}::{enclosing}"),
            kind: SurfaceKind::Template,
            fields: keys,
            line,
            version_const: None,
        })
    }

    /// The `*SCHEMA*` const referenced nearest after `line` in this
    /// file's code (else the first reference anywhere in the file).
    fn resolve_version_const(&self, line: usize) -> Option<String> {
        let mut first: Option<&str> = None;
        let mut after: Option<&str> = None;
        for tok in &self.tokens {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let t = tok.text(&self.text);
            if !t.contains("SCHEMA") || t == "impl_serde_struct" {
                continue;
            }
            if first.is_none() {
                first = Some(t);
            }
            if after.is_none() && tok.line >= line {
                after = Some(t);
            }
        }
        after.or(first).map(str::to_owned)
    }
}

/// Quoted JSON keys of a template literal: `\"key\":` inside a normal
/// string, `"key":` inside a raw string.
fn template_keys(raw: &str) -> Vec<String> {
    let (open, close) = if raw.starts_with('r') || raw.starts_with("br") {
        ("\"".to_owned(), "\":".to_owned())
    } else {
        ("\\\"".to_owned(), "\\\":".to_owned())
    };
    let mut keys = Vec::new();
    let mut rest = raw;
    while let Some(at) = rest.find(open.as_str()) {
        rest = &rest[at + open.len()..];
        let Some(end) = rest.find(close.as_str()) else {
            continue;
        };
        let key = &rest[..end];
        if !key.is_empty() && key.bytes().all(|b| b == b'_' || b.is_ascii_alphanumeric()) {
            keys.push(key.to_owned());
        }
    }
    keys
}

/// Builds per-line sanitized code text, per-line comment text, and the
/// comment-only-line flags.
fn line_views(
    text: &str,
    tokens: &[Token],
    line_total: usize,
) -> (Vec<String>, Vec<String>, Vec<bool>) {
    let mut sanitized = text.as_bytes().to_vec();
    for tok in tokens {
        match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                for b in &mut sanitized[tok.start..tok.end] {
                    if *b != b'\n' {
                        *b = b' ';
                    }
                }
            }
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char => {
                for b in &mut sanitized[tok.start..tok.end] {
                    if *b != b'\n' {
                        *b = b' ';
                    }
                }
                // Keep the delimiters so "a string literal sits here"
                // remains visible to line heuristics.
                sanitized[tok.start] = text.as_bytes()[tok.start];
                if tok.end > tok.start + 1 {
                    sanitized[tok.end - 1] = text.as_bytes()[tok.end - 1];
                }
            }
            _ => {}
        }
    }
    let sanitized = String::from_utf8_lossy(&sanitized).into_owned();
    let mut code_lines: Vec<String> = sanitized.lines().map(str::to_owned).collect();
    code_lines.resize(line_total, String::new());

    let mut comment_lines = vec![String::new(); line_total];
    for tok in tokens.iter().filter(|t| t.kind.is_comment()) {
        for (j, part) in tok.text(text).split('\n').enumerate() {
            if let Some(slot) = comment_lines.get_mut(tok.line - 1 + j) {
                slot.push_str(part);
            }
        }
    }

    let mut is_comment_line = vec![false; line_total];
    for line in 0..line_total {
        is_comment_line[line] =
            code_lines[line].trim().is_empty() && !comment_lines[line].trim().is_empty();
    }
    (code_lines, comment_lines, is_comment_line)
}

/// Legacy-compatible marker scan: detect markers in each line's comment
/// text, slide a marker that ended on the previous line down through a
/// contiguous comment block, and mark the [`ADJACENCY`] coverage window.
fn compute_markers(comment_lines: &[String], is_comment_line: &[bool]) -> MarkerSet {
    let n = comment_lines.len();
    let mut set = MarkerSet {
        defs: Vec::new(),
        covered: [
            vec![false; n],
            vec![false; n],
            vec![false; n],
            vec![false; n],
        ],
    };
    let mut last: [Option<usize>; 4] = [None; 4];
    for idx in 0..n {
        let line_no = idx + 1;
        let comment = &comment_lines[idx];
        let mut had_marker = false;
        for (needle, kind) in [
            ("// lint: allow(panics)", MarkerKind::AllowPanics),
            ("// lint: allow(cast)", MarkerKind::AllowCast),
        ] {
            if let Some(at) = comment.find(needle) {
                had_marker = true;
                let justification = comment[at + needle.len()..]
                    .trim_start_matches([' ', '—', '-', ':'])
                    .trim();
                let justified = justification.chars().count() >= MIN_JUSTIFICATION;
                set.defs.push(MarkerDef {
                    kind,
                    line: line_no,
                    justified,
                });
                last[MarkerSet::slot(kind)] = Some(line_no);
            }
        }
        if let Some(at) = comment.find("// justified:") {
            had_marker = true;
            let rationale = comment[at + "// justified:".len()..].trim();
            set.defs.push(MarkerDef {
                kind: MarkerKind::Justified,
                line: line_no,
                justified: rationale.chars().count() >= MIN_JUSTIFICATION,
            });
            last[MarkerSet::slot(MarkerKind::Justified)] = Some(line_no);
        }
        if comment.contains("// ordering:") {
            had_marker = true;
            set.defs.push(MarkerDef {
                kind: MarkerKind::Ordering,
                line: line_no,
                justified: true,
            });
            last[MarkerSet::slot(MarkerKind::Ordering)] = Some(line_no);
        }
        // A continuation line of a comment block slides any marker that
        // ended on the previous line down with the block.
        if is_comment_line[idx] && !had_marker && idx > 0 && is_comment_line[idx - 1] {
            for slot in &mut last {
                if *slot == Some(line_no - 1) {
                    *slot = Some(line_no);
                }
            }
        }
        for (slot, covered) in last.iter().zip(set.covered.iter_mut()) {
            if slot.is_some_and(|m| line_no >= m && line_no - m <= ADJACENCY) {
                covered[idx] = true;
            }
        }
    }
    set
}

/// Finds every cfg-gated region by real (token-level) brace tracking.
fn compute_cfg_regions(text: &str, tokens: &[Token], line_total: usize) -> Vec<CfgRegion> {
    let code = code_indices(tokens);
    let txt = |w: usize| tokens[code[w]].text(text);
    let mut regions = Vec::new();
    let mut w = 0;
    while w < code.len() {
        if txt(w) != "#" {
            w += 1;
            continue;
        }
        let mut v = w + 1;
        if v < code.len() && txt(v) == "!" {
            v += 1; // inner attribute `#![…]` — parsed, span is the file
        }
        if v >= code.len() || txt(v) != "[" {
            w += 1;
            continue;
        }
        let inner = v == w + 2;
        let attr_line = tokens[code[w]].line;
        // Collect the attribute's tokens up to the matching `]`.
        let mut depth = 0i64;
        let mut attr = Vec::new();
        let mut end = v;
        for u in v..code.len() {
            match txt(u) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = u;
                        break;
                    }
                }
                _ => {}
            }
            if u > v {
                attr.push(u);
            }
            end = u;
        }
        let gate = parse_gate(text, tokens, &code, &attr);
        w = end + 1;
        if gate.is_empty() {
            continue;
        }
        if inner {
            regions.push(CfgRegion {
                gate,
                start_line: 1,
                end_line: line_total,
            });
            continue;
        }
        // The gated item: skip further attributes, then span to the
        // matching `}` of its first block, or to a braceless `;`.
        let mut u = w;
        let mut end_line = tokens[code[end.min(code.len() - 1)]].line;
        while u < code.len() {
            if txt(u) == "#" {
                // Another attribute: skip it (its own region, if any,
                // is produced by the outer loop — a second cfg on the
                // same item is rare and over-approximates to the item).
                let mut d = 0i64;
                let mut uu = u + 1;
                if uu < code.len() && txt(uu) == "!" {
                    uu += 1;
                }
                while uu < code.len() {
                    match txt(uu) {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    uu += 1;
                }
                u = uu + 1;
                continue;
            }
            break;
        }
        let mut brace_depth = 0i64;
        let mut found = false;
        while u < code.len() {
            match txt(u) {
                "{" => {
                    brace_depth += 1;
                    found = true;
                }
                "}" => {
                    brace_depth -= 1;
                    if found && brace_depth <= 0 {
                        end_line = tokens[code[u]].line;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = tokens[code[u]].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[code[u]].line;
            u += 1;
        }
        regions.push(CfgRegion {
            gate,
            start_line: attr_line,
            end_line,
        });
    }
    regions
}

/// Flattens a cfg attribute token list into a [`CfgGate`].
fn parse_gate(text: &str, tokens: &[Token], code: &[usize], attr: &[usize]) -> CfgGate {
    let txt = |w: usize| tokens[code[w]].text(text);
    if attr.is_empty() {
        return CfgGate::default();
    }
    let head = txt(attr[0]);
    if head != "cfg" && head != "cfg_attr" {
        return CfgGate::default();
    }
    let mut gate = CfgGate::default();
    let mut not_depth = 0usize;
    let mut paren_stack: Vec<bool> = Vec::new(); // true = this paren is a not(...)
    let mut k = 1;
    while k < attr.len() {
        let t = txt(attr[k]);
        match t {
            "(" => {
                let is_not = k >= 1 && txt(attr[k - 1]) == "not";
                paren_stack.push(is_not);
                if is_not {
                    not_depth += 1;
                }
            }
            ")" if paren_stack.pop() == Some(true) => {
                not_depth = not_depth.saturating_sub(1);
            }
            "test" if not_depth == 0 => gate.test = true,
            "feature"
                if k + 2 < attr.len()
                    && txt(attr[k + 1]) == "="
                    && tokens[code[attr[k + 2]]].kind == TokenKind::Str =>
            {
                let name = txt(attr[k + 2]).trim_matches('"').to_owned();
                if not_depth == 0 {
                    gate.features.push(name);
                } else {
                    gate.not_features.push(name);
                }
            }
            _ => {}
        }
        k += 1;
    }
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("crates/demo/src/lib.rs"),
            src.to_owned(),
            false,
        )
    }

    #[test]
    fn markers_slide_through_comment_blocks() {
        let src = "\
// ordering: Relaxed is fine here because
// the counter is advisory only.
x.fetch_add(1, Ordering::Relaxed);
";
        let f = file(src);
        assert!(f.markers.covers(MarkerKind::Ordering, 3));
        assert!(!f.markers.covers(MarkerKind::Ordering, 8));
    }

    #[test]
    fn markers_inside_strings_do_not_count() {
        let src = "let s = \"// ordering: fake\";\nx.load(Ordering::Relaxed);\n";
        let f = file(src);
        assert!(!f.markers.covers(MarkerKind::Ordering, 2));
    }

    #[test]
    fn cfg_test_mask_tracks_real_braces() {
        let src = "\
fn a() { let s = \"}\"; }
#[cfg(test)]
mod tests {
    fn b() { panic!(\"x\"); }
}
fn c() {}
";
        let f = file(src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_feature_regions_and_not() {
        let src = "\
#[cfg(feature = \"telemetry\")]
pub fn emit() {}
#[cfg(not(feature = \"telemetry\"))]
pub fn emit() {}
#[cfg(any(test, feature = \"shuttle\"))]
mod sync { pub use shim::{AtomicBool, AtomicU64}; }
";
        let f = file(src);
        let feats: Vec<_> = f
            .cfg_regions
            .iter()
            .map(|r| {
                (
                    r.gate.test,
                    r.gate.features.clone(),
                    r.gate.not_features.clone(),
                )
            })
            .collect();
        assert_eq!(feats[0], (false, vec!["telemetry".to_owned()], vec![]));
        assert_eq!(feats[1], (false, vec![], vec!["telemetry".to_owned()]));
        assert_eq!(feats[2], (true, vec!["shuttle".to_owned()], vec![]));
        assert_eq!(f.shim_bindings.len(), 2);
        assert!(f
            .shim_bindings
            .iter()
            .any(|(n, g, _)| n == "AtomicBool" && g.test));
    }

    #[test]
    fn atomic_sites_group_by_receiver_tail() {
        let src = "\
fn f(s: &S) {
    let k = s.slots[i].key.load(Ordering::Acquire);
    s.epoch.store(k + 1, Ordering::Release);
    let _ = cell().compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
    v.swap(0, 1); // Vec::swap: no Ordering, not atomic
}
";
        let f = file(src);
        let names: Vec<_> = f.atomic_sites.iter().map(|s| s.field.as_str()).collect();
        assert_eq!(names, ["key", "epoch", "cell"]);
        assert_eq!(f.atomic_sites[2].orderings, ["AcqRel", "Acquire"]);
        assert_eq!(f.atomic_sites[2].op, AtomicOp::Cas);
    }

    #[test]
    fn lock_sites_and_fn_spans() {
        let src = "\
fn outer(s: &S) -> u64 {
    let g = s.record.lock().unwrap();
    inner();
    g.best
}
fn inner() {}
";
        let f = file(src);
        assert_eq!(f.lock_sites.len(), 1);
        assert_eq!(f.lock_sites[0].name, "record");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "outer");
        assert_eq!(f.fns[0].start_line, 1);
        assert_eq!(f.fns[0].end_line, 5);
    }

    #[test]
    fn schema_surfaces_struct_manual_and_template() {
        let src = r#"
impl_serde_struct!(Report { schema, runs, best });
impl_serde_struct!(NoVersion { a, b });
impl serde::Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(SCHEMA_VERSION)),
            ("evals".to_owned(), serde::Value::U64(self.evals)),
        ])
    }
}
fn save() {
    let h = format!("{{\"schema\":{},\"crc\":{}}}", CHECKPOINT_SCHEMA, 9);
}
const SCHEMA_VERSION: u64 = 3;
const CHECKPOINT_SCHEMA: u64 = 1;
"#;
        let f = file(src);
        let names: Vec<_> = f.schema_surfaces.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["Report", "Outcome", "lib::save"]);
        assert_eq!(f.schema_surfaces[0].fields, ["schema", "runs", "best"]);
        assert_eq!(f.schema_surfaces[1].fields, ["schema", "evals"]);
        assert_eq!(f.schema_surfaces[2].fields, ["schema", "crc"]);
        assert_eq!(
            f.schema_surfaces[2].version_const.as_deref(),
            Some("CHECKPOINT_SCHEMA")
        );
    }
}
