//! A small hand-written Rust lexer, just accurate enough for lints.
//!
//! The old line scanner treated source text as flat strings, so a `//`
//! inside a string literal truncated the line and a quote inside a
//! comment could open a phantom string. This lexer tracks the real
//! token structure — line comments, (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes, identifiers,
//! numbers, and punctuation — with byte spans, and guarantees the
//! round-trip property: the concatenation of all token texts is the
//! input, byte for byte. Everything downstream (the semantic model and
//! every pass) consumes these tokens instead of raw lines.

/// What a token is. The lexer never fails: unexpected bytes become
/// one-byte [`TokenKind::Punct`] tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `impl`, `load`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`42`, `0x1f`, `1.5e3`, `2u64`).
    Number,
    /// String or byte-string literal, quotes included (`"…"`, `b"…"`).
    Str,
    /// Raw (byte-)string literal, hashes included (`r#"…"#`).
    RawStr,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A `//` comment, up to but excluding the newline.
    LineComment,
    /// A `/* … */` comment, nesting tracked.
    BlockComment,
    /// A single punctuation byte (`{`, `.`, `:`, …).
    Punct,
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
}

impl TokenKind {
    /// Whether the token is a comment.
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token carries code the passes should look at
    /// (neither comment nor whitespace).
    pub fn is_code(self) -> bool {
        !self.is_comment() && self != TokenKind::Whitespace
    }
}

/// One token: kind plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

/// Tokenizes `source` completely. Total: the spans tile `0..len` in
/// order, so `tokens.iter().map(|t| t.text(src)).collect::<String>()`
/// reproduces the input exactly.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, source: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        debug_assert_eq!(
            self.out.iter().map(|t| t.end - t.start).sum::<usize>(),
            source.len()
        );
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        // Multi-byte UTF-8 continuation bytes never equal b'\n', so
        // counting newline *bytes* counts newline characters.
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        b
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        self.bump();
                        self.bump();
                        depth += 1;
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        self.bump();
                        self.bump();
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' if self.raw_or_byte_prefix() => self.prefixed_literal(),
            _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                {
                    self.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                // Good enough for spans: digits, `_`, hex/float letters,
                // `.` only when followed by a digit (so `0..n` and
                // method calls on literals stay punctuation).
                while let Some(c) = self.peek(0) {
                    let continues = c == b'_'
                        || c.is_ascii_alphanumeric()
                        || (c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                        || ((c == b'+' || c == b'-')
                            && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E')));
                    if !continues {
                        break;
                    }
                    self.bump();
                }
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Whether the byte at `pos` starts a raw/byte literal prefix
    /// (`r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`, `rb…` is not Rust).
    fn raw_or_byte_prefix(&self) -> bool {
        match self.src[self.pos] {
            b'r' => match self.peek(1) {
                Some(b'"') => true,
                Some(b'#') => {
                    // `r#ident` is a raw identifier, `r#"…"#` a raw
                    // string: look past the hashes for a quote.
                    let mut i = 1;
                    while self.peek(i) == Some(b'#') {
                        i += 1;
                    }
                    self.peek(i) == Some(b'"')
                }
                _ => false,
            },
            b'b' => match self.peek(1) {
                Some(b'"') | Some(b'\'') => true,
                Some(b'r') => {
                    let mut i = 2;
                    while self.peek(i) == Some(b'#') {
                        i += 1;
                    }
                    self.peek(i) == Some(b'"')
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Lexes a literal starting with `r`/`b` prefixes, cursor on the
    /// prefix (which [`Self::raw_or_byte_prefix`] validated).
    fn prefixed_literal(&mut self) -> TokenKind {
        let mut raw = false;
        while matches!(self.peek(0), Some(b'r' | b'b')) {
            raw |= self.peek(0) == Some(b'r');
            self.bump();
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
            loop {
                match self.peek(0) {
                    None => break,
                    Some(b'"') => {
                        self.bump();
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(0) == Some(b'#') {
                            seen += 1;
                            self.bump();
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                    Some(_) => {
                        self.bump();
                    }
                }
            }
            TokenKind::RawStr
        } else if self.peek(0) == Some(b'\'') {
            self.char_or_lifetime()
        } else {
            self.string()
        }
    }

    /// Lexes a `"…"` body with escapes, cursor on the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        TokenKind::Str
    }

    /// Disambiguates `'a'` / `'\n'` (char) from `'a` / `'static`
    /// (lifetime), cursor on the `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // A lifetime is `'` + ident-start + ident-continue* with no
        // closing quote right after the first character.
        let first = self.peek(1);
        let lifetime_like = first.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        self.bump(); // the quote
        if lifetime_like {
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.bump();
            }
            return TokenKind::Lifetime;
        }
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                // Escapes like `\u{1f600}` run to the closing quote.
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.bump();
                }
            }
            Some(_) => {
                // Possibly multi-byte UTF-8: consume to the quote.
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.bump();
                }
            }
            None => {}
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        TokenKind::Char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn round_trip(src: &str) {
        let rebuilt: String = tokenize(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let src = r#"let url = "https://example.com"; x.unwrap();"#;
        round_trip(src);
        let toks = kinds(src);
        assert!(toks.iter().all(|(k, _)| !k.is_comment()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("https://")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn comment_openers_inside_strings_stay_strings() {
        let src = r#"let s = "a // b /* c"; y.load(Ordering::Relaxed); // tail"#;
        round_trip(src);
        let toks = kinds(src);
        let comments: Vec<_> = toks.iter().filter(|(k, _)| k.is_comment()).collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].1, "// tail");
    }

    #[test]
    fn quotes_inside_comments_do_not_open_strings() {
        let src = "// it's \"quoted\"\nlet x = 1;";
        round_trip(src);
        let toks = kinds(src);
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
    }

    #[test]
    fn raw_strings_with_hashes_and_inner_quotes() {
        let src = r###"let re = r#"he said "hi" // not a comment"#; done();"###;
        round_trip(src);
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
        assert!(toks.iter().all(|(k, _)| !k.is_comment()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "done"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still */ code()";
        round_trip(src);
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "/* outer /* inner */ still */");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "code"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        round_trip(src);
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "'b'"));
    }

    #[test]
    fn char_escapes_do_not_leak() {
        for src in [
            "let q = '\\''; f();",
            "let n = '\\n'; f();",
            "let u = '\\u{1F600}'; f();",
        ] {
            round_trip(src);
            let toks = kinds(src);
            assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char), "{src}");
            assert!(
                toks.iter()
                    .any(|(k, t)| *k == TokenKind::Ident && *t == "f"),
                "{src}"
            );
        }
    }

    #[test]
    fn byte_literals_and_byte_strings() {
        let src = "let a = b'x'; let s = b\"//\"; let r = br#\"q\"\"#;";
        round_trip(src);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "b'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && *t == "b\"//\""));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 1; r#match();";
        round_trip(src);
        let toks = kinds(src);
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nbb\n  ccc";
        let toks: Vec<_> = tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_forms_still_round_trip() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b\"", "let x = 'a"] {
            round_trip(src);
        }
    }
}
