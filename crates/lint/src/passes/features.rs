//! Feature-matrix hygiene.
//!
//! **Gate leaks** ([`LintCode::FeatureGateLeak`]): a symbol defined
//! *only* under `#[cfg(feature = "F")]` — with no ungated or
//! `#[cfg(not(feature = "F"))]` stub twin — that is referenced outside
//! an `F`-gated region compiles in the feature build and breaks every
//! other point of the feature matrix. Features are matched by name
//! across crates, mirroring how `ruby-search`'s `telemetry` /
//! `failpoints` features forward to the same-named downstream features.
//!
//! **Shim coverage** ([`LintCode::ShimCoverageGap`]): a crate whose
//! `sync` module can bind the interleave shim outside plain
//! `cfg(test)` (search's `shuttle` feature) promises that its lock-free
//! protocols are model-checked; every shim-bound `Atomic*` type must
//! therefore appear in one of the crate's `*interleave_tests.rs`
//! schedules. An atomic type the explorer never schedules is an
//! unchecked protocol.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::model::{SourceFile, Workspace};
use crate::{Finding, LintCode};

pub struct FeatureMatrixPass;

const DEF_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "mod", "trait", "const", "static", "type",
];

impl super::Pass for FeatureMatrixPass {
    fn name(&self) -> &'static str {
        "feature-matrix"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        gate_leaks(ws, out);
        shim_coverage(ws, out);
    }
}

fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_code())
        .map(|(i, _)| i)
        .collect()
}

/// Identifier defined right after a def keyword at `code[w]`, if any.
fn def_at<'a>(file: &'a SourceFile, code: &[usize], w: usize) -> Option<&'a str> {
    let t = file.tokens[code[w]].text(&file.text);
    if file.tokens[code[w]].kind != TokenKind::Ident || !DEF_KEYWORDS.contains(&t) {
        return None;
    }
    let next = *code.get(w + 1)?;
    if file.tokens[next].kind != TokenKind::Ident {
        return None;
    }
    Some(file.tokens[next].text(&file.text))
}

fn gate_leaks(ws: &Workspace, out: &mut Vec<Finding>) {
    let per_file_code: Vec<Vec<usize>> = ws.files.iter().map(code_indices).collect();

    // Definitions, bucketed by how they are gated.
    let mut gated: BTreeMap<String, BTreeMap<String, (usize, usize)>> = BTreeMap::new();
    let mut ungated: BTreeSet<&str> = BTreeSet::new();
    let mut stubs: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.is_test_file {
            continue;
        }
        let code = &per_file_code[fi];
        for w in 0..code.len() {
            let Some(name) = def_at(file, code, w) else {
                continue;
            };
            let line = file.tokens[code[w]].line;
            let gate = file.innermost_gate(line);
            if gate.test {
                continue;
            }
            if gate.features.is_empty() {
                ungated.insert(name);
                for nf in &gate.not_features {
                    stubs.entry(nf.clone()).or_default().insert(name);
                }
            } else {
                for f in &gate.features {
                    gated
                        .entry(f.clone())
                        .or_default()
                        .entry(name.to_owned())
                        .or_insert((fi, line));
                }
            }
        }
    }

    // A symbol with an ungated or not(F)-stub twin is fine under any
    // feature setting; drop it.
    for (feature, symbols) in &mut gated {
        let stub_set = stubs.get(feature);
        symbols.retain(|name, _| {
            !ungated.contains(name.as_str()) && !stub_set.is_some_and(|s| s.contains(name.as_str()))
        });
    }
    gated.retain(|_, symbols| !symbols.is_empty());
    if gated.is_empty() {
        return;
    }

    // All identifier occurrences of the gated names, indexed once.
    let wanted: BTreeSet<&str> = gated
        .values()
        .flat_map(|m| m.keys().map(String::as_str))
        .collect();
    let mut occurrences: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.is_test_file {
            continue;
        }
        for (w, &i) in per_file_code[fi].iter().enumerate() {
            if file.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let t = file.tokens[i].text(&file.text);
            if wanted.contains(t) {
                occurrences.entry(t.to_owned()).or_default().push((fi, w));
            }
        }
    }

    for (feature, symbols) in &gated {
        for (name, (def_fi, def_line)) in symbols {
            for &(fi, w) in occurrences.get(name).map_or(&[][..], Vec::as_slice) {
                let file = &ws.files[fi];
                let code = &per_file_code[fi];
                let line = file.tokens[code[w]].line;
                // Definitions (this one or a same-named re-definition)
                // are not uses.
                if w > 0 && def_at(file, code, w - 1).is_some() {
                    continue;
                }
                if fi == *def_fi && line == *def_line {
                    continue;
                }
                // Only count identifier *uses*: called, pathed, or
                // macro-invoked.
                let tok = |v: usize| code.get(v).map(|&ci| file.tokens[ci].text(&file.text));
                let next = tok(w + 1);
                let prev = w.checked_sub(1).and_then(tok);
                let pathed_fwd = matches!(next, Some(":")) && matches!(tok(w + 2), Some(":"));
                let pathed_back = matches!(prev, Some(":"));
                let is_use = matches!(next, Some("(") | Some("!")) || pathed_fwd || pathed_back;
                if !is_use {
                    continue;
                }
                if file.line_gated_on(feature, line) || file.in_test_region(line) {
                    continue;
                }
                out.push(Finding::new(
                    LintCode::FeatureGateLeak,
                    file.path.clone(),
                    line,
                    format!(
                        "`{name}` is only defined under `feature = \"{feature}\"` \
                         ({}:{}) but is referenced here outside that gate",
                        ws.files[*def_fi].path.display(),
                        def_line
                    ),
                ));
            }
        }
    }
}

fn shim_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    // crate → shim-bound Atomic types reachable outside plain cfg(test).
    let mut bound: BTreeMap<String, BTreeMap<String, (usize, usize)>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ty, gate, line) in &file.shim_bindings {
            // A binding visible *only* to cfg(test) is the test build's
            // own plumbing; a feature-reachable binding (search's
            // `shuttle`) makes the shim part of the crate's contract.
            if gate.test && gate.features.is_empty() {
                continue;
            }
            bound
                .entry(file.crate_name.clone())
                .or_default()
                .entry(ty.clone())
                .or_insert((fi, *line));
        }
    }
    for (krate, types) in &bound {
        let mentioned: BTreeSet<String> = ws
            .files
            .iter()
            .filter(|f| {
                f.crate_name == *krate
                    && f.path
                        .file_name()
                        .is_some_and(|n| n.to_string_lossy().ends_with("interleave_tests.rs"))
            })
            .flat_map(|f| {
                f.tokens
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text(&f.text).to_owned())
                    .collect::<Vec<_>>()
            })
            .collect();
        for (ty, (fi, line)) in types {
            if !mentioned.contains(ty) {
                out.push(Finding::new(
                    LintCode::ShimCoverageGap,
                    ws.files[*fi].path.clone(),
                    *line,
                    format!(
                        "`{ty}` is bound from the interleave shim in crate `{krate}` but never \
                         appears in an interleave_tests.rs schedule — the protocol is not \
                         model-checked"
                    ),
                ));
            }
        }
    }
}
