//! The pluggable pass framework: each analysis consumes the
//! [`Workspace`] model and appends [`Finding`]s. Passes are pure
//! (model in, findings out), so fixture tests can run any subset
//! against a mini workspace tree.

use crate::model::Workspace;
use crate::Finding;

mod atomic_protocol;
mod features;
mod legacy;
mod locks;
pub mod schema_drift;

pub use atomic_protocol::AtomicProtocolPass;
pub use features::FeatureMatrixPass;
pub use legacy::LegacyRulesPass;
pub use locks::LockDisciplinePass;
pub use schema_drift::SchemaDriftPass;

/// One lint analysis over the workspace model.
pub trait Pass {
    /// Stable pass name (shown in `--json` output and docs).
    fn name(&self) -> &'static str;
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every pass, in the canonical execution order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(LegacyRulesPass),
        Box::new(AtomicProtocolPass),
        Box::new(LockDisciplinePass),
        Box::new(SchemaDriftPass),
        Box::new(FeatureMatrixPass),
    ]
}
