//! Atomic-protocol pairing: group atomic operations by the cell they
//! touch and check the release/acquire handshake is whole.
//!
//! Within each (crate, field) group:
//! - a `Release`-side write (store, RMW, or CAS success ordering of
//!   `Release`/`AcqRel`) with no `Acquire`-side read anywhere in the
//!   group publishes to nobody — the acquire half is missing
//!   ([`LintCode::UnpairedRelease`]);
//! - an `Acquire`-side read with no `Release`-side write observes no
//!   publication — the release half is missing
//!   ([`LintCode::UnpairedAcquire`]);
//! - `SeqCst` sites satisfy both sides;
//! - mixing `SeqCst` and `Relaxed` on the same cell is legal but almost
//!   always means one of the two is wrong; each `Relaxed` site in such
//!   a group needs an `// ordering:` escalation rationale
//!   ([`LintCode::MixedOrdering`]).
//!
//! The pass runs over the concurrency-bearing crates — `search`,
//! `telemetry`, `failpoints` — plus `analysis`'s interleave module
//! (the mini-loom shim itself).

use std::collections::BTreeMap;

use crate::model::{AtomicOp, AtomicSite, MarkerKind, SourceFile, Workspace};
use crate::{Finding, LintCode};

pub struct AtomicProtocolPass;

fn in_scope(file: &SourceFile) -> bool {
    match file.crate_name.as_str() {
        "search" | "telemetry" | "failpoints" => true,
        "analysis" => file.path.file_name().is_some_and(|f| f == "interleave.rs"),
        _ => false,
    }
}

/// The store-side ordering of a site, if it writes.
fn write_ordering(site: &AtomicSite) -> Option<&str> {
    match site.op {
        AtomicOp::Load => None,
        AtomicOp::Store | AtomicOp::Rmw | AtomicOp::Cas => {
            site.orderings.first().map(String::as_str)
        }
    }
}

/// The load-side orderings of a site, if it reads (CAS contributes
/// both its success and failure orderings).
fn read_orderings(site: &AtomicSite) -> Vec<&str> {
    match site.op {
        AtomicOp::Store => Vec::new(),
        AtomicOp::Load | AtomicOp::Rmw => {
            site.orderings.iter().map(String::as_str).take(1).collect()
        }
        AtomicOp::Cas => site.orderings.iter().map(String::as_str).collect(),
    }
}

fn is_release(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel")
}

fn is_acquire(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel")
}

impl super::Pass for AtomicProtocolPass {
    fn name(&self) -> &'static str {
        "atomic-protocol"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // (crate, field) → sites across the crate's files.
        let mut groups: BTreeMap<(String, String), Vec<(&SourceFile, &AtomicSite)>> =
            BTreeMap::new();
        for file in ws.files.iter().filter(|f| in_scope(f) && !f.is_test_file) {
            for site in &file.atomic_sites {
                if file.in_test_region(site.line) {
                    continue;
                }
                groups
                    .entry((file.crate_name.clone(), site.field.clone()))
                    .or_default()
                    .push((file, site));
            }
        }

        for ((_, field), sites) in &groups {
            let has_acquire_side = sites.iter().any(|(_, s)| {
                read_orderings(s)
                    .iter()
                    .any(|o| is_acquire(o) || *o == "SeqCst")
            });
            let has_release_side = sites
                .iter()
                .any(|(_, s)| write_ordering(s).is_some_and(|o| is_release(o) || o == "SeqCst"));
            let has_seqcst = sites
                .iter()
                .any(|(_, s)| s.orderings.iter().any(|o| o == "SeqCst"));
            let has_relaxed = sites
                .iter()
                .any(|(_, s)| s.orderings.iter().any(|o| o == "Relaxed"));

            for (file, site) in sites {
                if let Some(ord) = write_ordering(site) {
                    if is_release(ord) && !has_acquire_side {
                        out.push(Finding::new(
                            LintCode::UnpairedRelease,
                            file.path.clone(),
                            site.line,
                            format!(
                                "`{field}.{}({ord})` publishes with Release but no \
                                 Acquire/AcqRel/SeqCst load of `{field}` exists in this crate",
                                site.method
                            ),
                        ));
                    }
                }
                if read_orderings(site).iter().any(|o| is_acquire(o)) && !has_release_side {
                    out.push(Finding::new(
                        LintCode::UnpairedAcquire,
                        file.path.clone(),
                        site.line,
                        format!(
                            "`{field}.{}` acquires but no Release/AcqRel/SeqCst store of \
                             `{field}` exists in this crate",
                            site.method
                        ),
                    ));
                }
                if has_seqcst
                    && has_relaxed
                    && site.orderings.iter().any(|o| o == "Relaxed")
                    && !file.markers.covers(MarkerKind::Ordering, site.line)
                {
                    out.push(Finding::new(
                        LintCode::MixedOrdering,
                        file.path.clone(),
                        site.line,
                        format!(
                            "`{field}` mixes SeqCst and Relaxed orderings; this Relaxed site \
                             needs an `// ordering:` escalation rationale"
                        ),
                    ));
                }
            }
        }
    }
}
