//! Schema drift: fingerprint every schema-versioned serde surface into
//! `crates/lint/schema.lock` and fail when the wire format moves
//! without a version bump.
//!
//! A *surface* is any struct serialized with a `schema` field
//! (`impl_serde_struct!` with a `schema` member, a manual
//! `impl serde::Serialize` that emits a `"schema"` key, or a JSON
//! template literal with a `"schema"` key — the checkpoint header).
//! The committed lock records, per surface, the version constant's
//! value and the ordered field list. On every run the pass recomputes
//! the fingerprints and compares:
//!
//! - fields changed, version unchanged → [`LintCode::SchemaDrift`]
//!   (the wire format moved silently — bump the version);
//! - version changed (fields may or may not have) →
//!   [`LintCode::SchemaLockStale`] (legitimate bump; refresh the lock
//!   with `ruby-lint --update-schema-lock`);
//! - surface absent from the lock → [`LintCode::SchemaSurfaceUnlocked`];
//! - locked surface gone from the tree → [`LintCode::SchemaSurfaceRemoved`].

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::model::Workspace;
use crate::{Finding, LintCode};

pub struct SchemaDriftPass;

/// Where the lock lives, relative to the workspace root.
pub const LOCK_PATH: &str = "crates/lint/schema.lock";

/// One locked surface entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEntry {
    pub version: u64,
    pub via: String,
    pub fields: Vec<String>,
}

/// Computes the current fingerprints: surface name → entry.
pub fn current_surfaces(ws: &Workspace) -> BTreeMap<String, LockEntry> {
    let mut map = BTreeMap::new();
    for (file, surface) in ws.schema_surfaces() {
        let via = surface
            .version_const
            .clone()
            .unwrap_or_else(|| "?".to_owned());
        let version = ws.schema_consts.get(&via).copied().unwrap_or(0);
        let mut name = surface.name.clone();
        if map.contains_key(&name) {
            name = format!("{}@{}", name, file.crate_name);
        }
        map.insert(
            name,
            LockEntry {
                version,
                via,
                fields: surface.fields.clone(),
            },
        );
    }
    map
}

/// Renders the lock file deterministically.
pub fn render_lock(surfaces: &BTreeMap<String, LockEntry>) -> String {
    let mut out = String::from(
        "# ruby-lint schema.lock — fingerprints of every schema-versioned serde surface.\n\
         # Regenerate with `cargo run -p ruby-lint -- --update-schema-lock` after a\n\
         # deliberate format change WITH a version bump; the schema-drift pass fails\n\
         # when fields move without one.\n",
    );
    for (name, entry) in surfaces {
        out.push_str(&format!(
            "{name} version={} via={} fields={}\n",
            entry.version,
            entry.via,
            entry.fields.join(",")
        ));
    }
    out
}

/// Parses a lock file produced by [`render_lock`].
pub fn parse_lock(text: &str) -> Result<BTreeMap<String, LockEntry>, String> {
    let mut map = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(version), Some(via), Some(fields)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected 4 fields", no + 1));
        };
        let version = version
            .strip_prefix("version=")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("line {}: bad version", no + 1))?;
        let via = via
            .strip_prefix("via=")
            .ok_or_else(|| format!("line {}: bad via", no + 1))?;
        let fields = fields
            .strip_prefix("fields=")
            .ok_or_else(|| format!("line {}: bad fields", no + 1))?;
        map.insert(
            name.to_owned(),
            LockEntry {
                version,
                via: via.to_owned(),
                fields: fields.split(',').map(str::to_owned).collect(),
            },
        );
    }
    Ok(map)
}

impl super::Pass for SchemaDriftPass {
    fn name(&self) -> &'static str {
        "schema-drift"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let current = current_surfaces(ws);
        let lock_path = ws.root.join(LOCK_PATH);
        let lock_display = PathBuf::from(LOCK_PATH);
        let locked = match std::fs::read_to_string(&lock_path) {
            Ok(text) => match parse_lock(&text) {
                Ok(map) => map,
                Err(err) => {
                    out.push(Finding::new(
                        LintCode::SchemaLockStale,
                        lock_display,
                        0,
                        format!("schema.lock is unreadable ({err}); regenerate with --update-schema-lock"),
                    ));
                    return;
                }
            },
            Err(_) => {
                out.push(Finding::new(
                    LintCode::SchemaLockStale,
                    lock_display,
                    0,
                    "schema.lock is missing; generate it with `ruby-lint --update-schema-lock` \
                     and commit it"
                        .to_owned(),
                ));
                return;
            }
        };

        // Anchor findings at the surface declaration when we have one.
        let site = |name: &str| -> (PathBuf, usize) {
            for (file, s) in ws.schema_surfaces() {
                if s.name == name || format!("{}@{}", s.name, file.crate_name) == name {
                    return (file.path.clone(), s.line);
                }
            }
            (PathBuf::from(LOCK_PATH), 0)
        };

        for (name, cur) in &current {
            match locked.get(name) {
                None => {
                    let (path, line) = site(name);
                    out.push(Finding::new(
                        LintCode::SchemaSurfaceUnlocked,
                        path,
                        line,
                        format!(
                            "schema surface `{name}` is not in schema.lock; run \
                             `ruby-lint --update-schema-lock` and commit the result"
                        ),
                    ));
                }
                Some(old) if old.version == cur.version && old.fields != cur.fields => {
                    let (path, line) = site(name);
                    let added: Vec<_> = cur
                        .fields
                        .iter()
                        .filter(|f| !old.fields.contains(f))
                        .cloned()
                        .collect();
                    let removed: Vec<_> = old
                        .fields
                        .iter()
                        .filter(|f| !cur.fields.contains(f))
                        .cloned()
                        .collect();
                    let mut delta = Vec::new();
                    if !added.is_empty() {
                        delta.push(format!("added [{}]", added.join(", ")));
                    }
                    if !removed.is_empty() {
                        delta.push(format!("removed [{}]", removed.join(", ")));
                    }
                    if delta.is_empty() {
                        delta.push("reordered".to_owned());
                    }
                    out.push(Finding::new(
                        LintCode::SchemaDrift,
                        path,
                        line,
                        format!(
                            "schema surface `{name}` changed ({}) without a `{}` bump \
                             (still {}); bump the version, then refresh schema.lock",
                            delta.join(", "),
                            cur.via,
                            cur.version
                        ),
                    ));
                }
                Some(old) if old.version != cur.version || old.via != cur.via => {
                    let (path, line) = site(name);
                    out.push(Finding::new(
                        LintCode::SchemaLockStale,
                        path,
                        line,
                        format!(
                            "schema surface `{name}` is versioned {} but schema.lock records \
                             {}; refresh with `ruby-lint --update-schema-lock`",
                            cur.version, old.version
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
        for name in locked.keys() {
            if !current.contains_key(name) {
                out.push(Finding::new(
                    LintCode::SchemaSurfaceRemoved,
                    PathBuf::from(LOCK_PATH),
                    0,
                    format!(
                        "schema surface `{name}` is locked but no longer exists in the tree; \
                         refresh schema.lock with `ruby-lint --update-schema-lock`"
                    ),
                ));
            }
        }
    }
}
