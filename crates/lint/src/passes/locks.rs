//! Lock discipline: workspace-wide pairwise acquisition order, and
//! guards held across blocking calls.
//!
//! Within every function body the pass replays acquisitions: a
//! `let`-bound `.lock()` guard is held from its binding until its
//! enclosing block closes (or an explicit `drop(guard)`); a
//! non-`let` acquisition is a transient that dies at the end of its
//! statement. Acquiring lock `B` while `A` is held records the edge
//! `A → B`; if the workspace also contains `B → A` (within the same
//! crate — lock identity is `(crate, field name)`), the two sites
//! can deadlock under concurrency and both are reported
//! ([`LintCode::LockOrderInversion`]). Holding any guard across a
//! `join()` / `spawn(...)` / `evaluate*` call serializes or deadlocks
//! the very work the lock-free layers exist to overlap
//! ([`LintCode::LockHeldAcrossBlocking`]).

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::lexer::TokenKind;
use crate::model::{SourceFile, Workspace};
use crate::{Finding, LintCode};

pub struct LockDisciplinePass;

#[derive(Debug)]
struct Guard {
    lock: String,
    var: Option<String>,
    depth: i64,
    line: usize,
}

impl super::Pass for LockDisciplinePass {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // (crate, from, to) → first acquisition site of `to` with
        // `from` held.
        let mut edges: BTreeMap<(String, String, String), (PathBuf, usize)> = BTreeMap::new();
        for file in ws.files.iter().filter(|f| !f.is_test_file) {
            for fun in &file.fns {
                if fun.body.is_empty() || file.in_test_region(fun.start_line) {
                    continue;
                }
                walk_fn(file, fun.body.clone(), &mut edges, out);
            }
        }
        for ((krate, a, b), (path, line)) in &edges {
            if a < b {
                if let Some((other_path, other_line)) =
                    edges.get(&(krate.clone(), b.clone(), a.clone()))
                {
                    out.push(Finding::new(
                        LintCode::LockOrderInversion,
                        path.clone(),
                        *line,
                        format!(
                            "lock order inversion in crate `{krate}`: `{b}` acquired here while \
                             `{a}` is held, but {}:{} acquires `{a}` while `{b}` is held",
                            other_path.display(),
                            other_line
                        ),
                    ));
                }
            }
        }
    }
}

fn walk_fn(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    edges: &mut BTreeMap<(String, String, String), (PathBuf, usize)>,
    out: &mut Vec<Finding>,
) {
    let code: Vec<usize> = (body.start..body.end.min(file.tokens.len()))
        .filter(|&i| file.tokens[i].kind.is_code())
        .collect();
    let txt = |w: usize| file.tokens[code[w]].text(&file.text);
    let mut depth = 0i64;
    let mut held: Vec<Guard> = Vec::new();
    let mut stmt_let_var: Option<String> = None;
    let mut stmt_is_let = false;

    let mut w = 0;
    while w < code.len() {
        let t = txt(w);
        match t {
            "{" => {
                depth += 1;
                stmt_is_let = false;
                stmt_let_var = None;
            }
            "}" => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
                stmt_is_let = false;
                stmt_let_var = None;
            }
            ";" => {
                stmt_is_let = false;
                stmt_let_var = None;
            }
            "let" if file.tokens[code[w]].kind == TokenKind::Ident => {
                stmt_is_let = true;
                // `let [mut] name = …`: capture the binding name so an
                // explicit `drop(name)` can release the guard.
                let mut v = w + 1;
                if v < code.len() && txt(v) == "mut" {
                    v += 1;
                }
                stmt_let_var = (v < code.len() && file.tokens[code[v]].kind == TokenKind::Ident)
                    .then(|| txt(v).to_owned());
            }
            "drop" if file.tokens[code[w]].kind == TokenKind::Ident => {
                if w + 2 < code.len() && txt(w + 1) == "(" {
                    let victim = txt(w + 2).to_owned();
                    held.retain(|g| g.var.as_deref() != Some(victim.as_str()));
                }
            }
            "lock"
                if file.tokens[code[w]].kind == TokenKind::Ident
                    && w >= 1
                    && txt(w - 1) == "."
                    && w + 1 < code.len()
                    && txt(w + 1) == "(" =>
            {
                let line = file.tokens[code[w]].line;
                let site = file.lock_sites.iter().find(|s| s.token == code[w]);
                if let Some(site) = site {
                    if !file.in_test_region(line) {
                        for g in &held {
                            if g.lock != site.name {
                                edges
                                    .entry((
                                        file.crate_name.clone(),
                                        g.lock.clone(),
                                        site.name.clone(),
                                    ))
                                    .or_insert_with(|| (file.path.clone(), line));
                            }
                        }
                        let bound = stmt_is_let && stmt_let_var.as_deref() != Some("_");
                        if bound {
                            held.push(Guard {
                                lock: site.name.clone(),
                                var: stmt_let_var.clone(),
                                depth,
                                line,
                            });
                        }
                    }
                }
            }
            _ => {
                if file.tokens[code[w]].kind == TokenKind::Ident
                    && !held.is_empty()
                    && !file.in_test_region(file.tokens[code[w]].line)
                {
                    let blocking = blocking_call(&code, w, &txt, t);
                    if let Some(kind) = blocking {
                        for g in &held {
                            out.push(Finding::new(
                                LintCode::LockHeldAcrossBlocking,
                                file.path.clone(),
                                file.tokens[code[w]].line,
                                format!(
                                    "`{}` guard (acquired line {}) is held across `{kind}` — \
                                     release it before blocking or spawning",
                                    g.lock, g.line
                                ),
                            ));
                        }
                    }
                }
            }
        }
        w += 1;
    }
}

/// Whether the identifier at `code[w]` is a blocking/forking call the
/// pass polices: a zero-argument `.join()`, any `spawn(`, or an
/// eval-loop entry (`evaluate*(`).
fn blocking_call<'a>(
    code: &[usize],
    w: usize,
    txt: &dyn Fn(usize) -> &'a str,
    t: &str,
) -> Option<&'static str> {
    let next_is = |d: usize, s: &str| w + d < code.len() && txt(w + d) == s;
    match t {
        // `handle.join()`: zero args distinguishes thread joins from
        // `slice::join(sep)` / `Path::join(seg)`.
        "join" if next_is(1, "(") && next_is(2, ")") => Some("join()"),
        "spawn" if next_is(1, "(") => Some("spawn(..)"),
        _ if t.starts_with("evaluate") && next_is(1, "(") => Some("an evaluation call"),
        _ => None,
    }
}
