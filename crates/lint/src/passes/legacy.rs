//! The five original `ruby-lint` rules, re-expressed against the
//! semantic model. The rule semantics are unchanged (same markers,
//! same adjacency window, same crate scoping); what changed is the
//! substrate: sanitized per-line code text from the lexer, so string
//! and raw-string literals can no longer confuse comment stripping,
//! and `cfg(test)` masking follows real token-level brace tracking.

use crate::model::{MarkerKind, SourceFile, Workspace};
use crate::{Finding, LintCode};
use std::path::Path;

pub struct LegacyRulesPass;

const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

impl super::Pass for LegacyRulesPass {
    fn name(&self) -> &'static str {
        "legacy-rules"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (path, err) in &ws.io_errors {
            out.push(Finding::new(
                LintCode::IoError,
                path.clone(),
                0,
                format!("could not read file: {err}"),
            ));
        }
        for file in ws.files.iter().filter(|f| !f.is_test_file) {
            scan_file(file, out);
        }
    }
}

fn in_crate(path: &Path, name: &str) -> bool {
    path.components().any(|c| c.as_os_str() == name)
}

fn scan_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let in_model = in_crate(&file.path, "model");
    // The permutation cipher is bijective only while every word stays
    // u64 end to end, so it joins the cast-audited set.
    let in_permute = file.path.file_name().is_some_and(|f| f == "permute.rs");
    let in_search = in_crate(&file.path, "search");
    let in_telemetry = in_crate(&file.path, "telemetry");

    // Unjustified allowlist entries are findings themselves, wherever
    // they appear.
    for def in &file.markers.defs {
        if def.justified {
            continue;
        }
        let (code, message) = match def.kind {
            MarkerKind::AllowPanics => (
                LintCode::UnjustifiedAllow,
                "allowlist entry without a justification: `// lint: allow(panics)`".to_owned(),
            ),
            MarkerKind::AllowCast => (
                LintCode::UnjustifiedAllow,
                "allowlist entry without a justification: `// lint: allow(cast)`".to_owned(),
            ),
            MarkerKind::Justified => (
                LintCode::UnjustifiedAllow,
                "`// justified:` without a rationale".to_owned(),
            ),
            MarkerKind::Ordering => continue,
        };
        out.push(Finding::new(code, file.path.clone(), def.line, message));
    }

    for line_no in 1..=file.line_count() {
        if file.in_test_region(line_no) {
            continue;
        }
        let code = file.code_line(line_no);
        if code.trim().is_empty() {
            continue;
        }

        for pattern in PANIC_PATTERNS {
            let covered = if in_search {
                // crates/search must not abort mid-run: the stricter
                // `// justified:` rationale is the only accepted marker.
                file.markers.covers(MarkerKind::Justified, line_no)
            } else {
                file.markers.covers(MarkerKind::AllowPanics, line_no)
                    || file.markers.covers(MarkerKind::Justified, line_no)
            };
            if code.contains(pattern) && !covered {
                let marker = if in_search {
                    "`// justified: <rationale>`"
                } else {
                    "`// lint: allow(panics) — <justification>`"
                };
                out.push(Finding::new(
                    LintCode::PanicSite,
                    file.path.clone(),
                    line_no,
                    format!("`{pattern}` in library code without an adjacent {marker}"),
                ));
            }
        }

        if in_search
            && has_bare_assert(code)
            && !file.markers.covers(MarkerKind::Justified, line_no)
        {
            out.push(Finding::new(
                LintCode::PanicSite,
                file.path.clone(),
                line_no,
                "bare assert in crates/search without an adjacent \
                 `// justified: <rationale>` (prefer debug_assert or a Result)"
                    .to_owned(),
            ));
        }

        for ordering in ["Ordering::Relaxed", "Ordering::AcqRel"] {
            if code.contains(ordering) && !file.markers.covers(MarkerKind::Ordering, line_no) {
                out.push(Finding::new(
                    LintCode::OrderingRationale,
                    file.path.clone(),
                    line_no,
                    format!("`{ordering}` without an adjacent `// ordering: <rationale>` comment"),
                ));
            }
        }

        if in_telemetry && !file.markers.covers(MarkerKind::Ordering, line_no) {
            // The Relaxed/AcqRel loop above already reported those; this
            // covers the orderings it deliberately leaves alone
            // (SeqCst, Acquire, Release) plus atomic construction.
            let other_ordering = code.contains("Ordering::")
                && !code.contains("Ordering::Relaxed")
                && !code.contains("Ordering::AcqRel");
            if other_ordering || atomic_init(code) {
                out.push(Finding::new(
                    LintCode::OrderingRationale,
                    file.path.clone(),
                    line_no,
                    "atomic use in crates/telemetry without an adjacent \
                     `// ordering: <rationale>` comment"
                        .to_owned(),
                ));
            }
        }

        if in_model || in_permute {
            if let Some(target) = int_cast_target(code) {
                if !file.markers.covers(MarkerKind::AllowCast, line_no) {
                    let place = if in_model {
                        "the cost model"
                    } else {
                        "the permutation cipher"
                    };
                    out.push(Finding::new(
                        LintCode::TruncatingCast,
                        file.path.clone(),
                        line_no,
                        format!(
                            "`as {target}` in {place} without an adjacent \
                             `// lint: allow(cast) — <justification>`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether the line uses a bare `assert!` / `assert_eq!` / `assert_ne!`
/// (the `debug_assert` family is fine: compiled out of release runs).
fn has_bare_assert(code: &str) -> bool {
    for pattern in ["assert!(", "assert_eq!(", "assert_ne!("] {
        let mut rest = code;
        while let Some(at) = rest.find(pattern) {
            let preceded_by_debug = at >= 6 && rest[..at].ends_with("debug_");
            let mid_identifier = at > 0
                && rest[..at]
                    .bytes()
                    .next_back()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
            if !preceded_by_debug && !mid_identifier {
                return true;
            }
            rest = &rest[at + pattern.len()..];
        }
    }
    false
}

/// Whether the line constructs an atomic (`AtomicU64::new(`, …) — the
/// declaration sites the telemetry rule wants a rationale on.
fn atomic_init(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("Atomic") {
        let after = &rest[at + "Atomic".len()..];
        let ty_len = after.bytes().take_while(u8::is_ascii_alphanumeric).count();
        if after[ty_len..].starts_with("::new(") {
            return true;
        }
        rest = after;
    }
    false
}

/// The integer type named by the first ` as <int>` cast on the line, if
/// any. Casts to floats are not truncating in the sense this rule
/// polices (the model's arithmetic is deliberately f64).
fn int_cast_target(code: &str) -> Option<&'static str> {
    const TARGETS: [&str; 10] = [
        "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
    ];
    let mut rest = code;
    while let Some(at) = rest.find(" as ") {
        let after = &rest[at + 4..];
        for target in TARGETS {
            if after.starts_with(target) {
                let tail = after.as_bytes().get(target.len());
                let boundary = tail.is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
                if boundary {
                    return Some(target);
                }
            }
        }
        rest = &rest[at + 4..];
    }
    None
}
